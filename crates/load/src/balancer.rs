//! The balancer: installs measurement, places virtual nodes, and runs
//! relief rounds against a live [`HypermNetwork`].

use crate::{LoadConfig, LoadSnapshot};
use hyperm_core::{HypermNetwork, SummaryCache};
use hyperm_sim::{LoadLedger, NodeId, OpStats};
use hyperm_telemetry::{counters, names, SpanId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// What one [`LoadBalancer::relieve`] round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliefReport {
    /// Virtual zones migrated off overloaded hosts.
    pub migrations: u64,
    /// Hot zones split (one half granted to a cold host).
    pub splits: u64,
    /// Fragments merged back by the flat-load quiescence pass.
    pub merges: u64,
    /// Control-message cost of all of the above.
    pub stats: OpStats,
}

impl ReliefReport {
    /// Whether the round changed any overlay structure.
    pub fn acted(&self) -> bool {
        self.migrations + self.splits + self.merges > 0
    }
}

/// Measures per-peer load and applies the configured relief mechanisms.
/// See the crate docs for the mechanism catalogue.
#[derive(Debug)]
pub struct LoadBalancer {
    cfg: LoadConfig,
    ledger: Arc<LoadLedger>,
    cache: Option<Arc<SummaryCache>>,
    placement: OpStats,
    rng: StdRng,
    /// Per-peer event totals at the end of the previous relieve round:
    /// decisions act on the load *since then*, not on all history — a
    /// peer that just absorbed a hot fragment must not keep looking
    /// cold (and keep receiving) because of its quiet past.
    last_events: Vec<u64>,
    /// Per-level, per-peer flood-heat totals at the previous round.
    last_heat: Vec<Vec<u64>>,
}

impl LoadBalancer {
    /// Wire a fresh ledger (and, per `cfg`, the summary cache and virtual
    /// nodes) into `net`. Measurement alone — `LoadConfig::default()` —
    /// changes no result and no telemetry byte; the ledger rides the
    /// overlay hot paths on relaxed atomics.
    pub fn install(net: &mut HypermNetwork, cfg: LoadConfig) -> Self {
        let ledger = Arc::new(LoadLedger::new(net.len(), net.levels()));
        net.set_load_ledger(Some(ledger.clone()));
        let cache = if cfg.cache {
            let c = Arc::new(SummaryCache::new(
                cfg.cache_ttl_rounds,
                cfg.cache_max_entries,
            ));
            net.set_summary_cache(Some(c.clone()));
            Some(c)
        } else {
            None
        };
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x10AD_BA1A));
        let last_events = vec![0; net.len()];
        let last_heat = vec![vec![0; net.len()]; net.levels()];
        let mut balancer = LoadBalancer {
            cfg,
            ledger,
            cache,
            placement: OpStats::zero(),
            rng,
            last_events,
            last_heat,
        };
        if balancer.cfg.virtual_nodes > 0 {
            balancer.place_virtual_nodes(net);
        }
        balancer
    }

    /// Detach all load machinery from `net`: the ledger stops charging,
    /// the cache is removed. (The balancer keeps its handles for final
    /// reporting.)
    pub fn uninstall(net: &mut HypermNetwork) {
        net.set_load_ledger(None);
        net.set_summary_cache(None);
    }

    /// The active configuration.
    pub fn config(&self) -> &LoadConfig {
        &self.cfg
    }

    /// The shared per-peer ledger.
    pub fn ledger(&self) -> &Arc<LoadLedger> {
        &self.ledger
    }

    /// The shared summary cache, when `cfg.cache` enabled it.
    pub fn cache(&self) -> Option<&Arc<SummaryCache>> {
        self.cache.as_ref()
    }

    /// Control-message cost of the join-time virtual-node placement.
    pub fn placement_cost(&self) -> OpStats {
        self.placement
    }

    /// Current load distribution over `net`'s alive peers.
    pub fn snapshot(&self, net: &HypermNetwork) -> LoadSnapshot {
        LoadSnapshot::compute(&self.ledger, |p| net.is_alive(p))
    }

    /// Join-time placement: carve `cfg.virtual_nodes` extra zones per
    /// level at seeded random points, granted round-robin to alive peers.
    /// Each placement reuses the split/adopt handoff, so
    /// `check_invariants` holds after every single step.
    fn place_virtual_nodes(&mut self, net: &mut HypermNetwork) {
        let alive: Vec<usize> = (0..net.len()).filter(|&p| net.is_alive(p)).collect();
        if alive.len() < 2 {
            return;
        }
        let mut grantee = 0usize;
        for l in 0..net.levels() {
            let dim = net.overlay(l).dim();
            let mut placed = 0;
            // A placement attempt fails when the drawn point lands in the
            // grantee's own zone (or in a sliver too thin to halve); the
            // budget bounds the retry loop deterministically.
            let mut attempts = 0;
            while placed < self.cfg.virtual_nodes && attempts < self.cfg.virtual_nodes * 16 {
                attempts += 1;
                let point: Vec<f64> = (0..dim).map(|_| self.rng.gen()).collect();
                let to = alive[grantee % alive.len()];
                grantee += 1;
                if let Some(stats) = net.split_zone(l, &point, to) {
                    self.placement += stats;
                    placed += 1;
                }
            }
        }
    }

    /// One relief round, triggered on the snapshot's events-based
    /// `max_median_ratio` (the same headline metric the merge-back gate
    /// and the benches read — per-level flood heat is far too sparse to
    /// threshold on, its median is routinely zero). When the ratio
    /// exceeds `cfg.split_ratio`, each level's hottest alive host (by
    /// flood heat) sheds load towards its coldest: migrate a virtual
    /// zone off it (`cfg.rebalance`) or split its primary
    /// (`cfg.splits`). When the ratio has dropped inside the merge
    /// hysteresis and no virtual nodes are in play, fold split
    /// fragments back through the dyadic sibling merge. Overlay
    /// invariants hold after every step (asserted in this crate's tests
    /// after each action).
    pub fn relieve(&mut self, net: &mut HypermNetwork) -> ReliefReport {
        let mut report = ReliefReport::default();
        let alive: Vec<usize> = (0..net.len()).filter(|&p| net.is_alive(p)).collect();
        if alive.len() < 2 {
            return report;
        }
        // Decisions act on the load *window* since the previous relieve
        // round, not on all history: cumulative totals would keep
        // charging relief at peers that were hot long ago and keep
        // granting zones to a receiver whose quiet past masks the hot
        // fragments it just absorbed.
        let cur_events: Vec<u64> = self.ledger.per_peer().iter().map(|p| p.events()).collect();
        let delta_events: Vec<u64> = cur_events
            .iter()
            .enumerate()
            .map(|(p, &c)| c.saturating_sub(self.last_events.get(p).copied().unwrap_or(0)))
            .collect();
        let cur_heat: Vec<Vec<u64>> = (0..net.levels()).map(|l| self.ledger.heat_of(l)).collect();
        let delta_heat: Vec<Vec<u64>> = cur_heat
            .iter()
            .enumerate()
            .map(|(l, heat)| {
                heat.iter()
                    .enumerate()
                    .map(|(p, &h)| {
                        h.saturating_sub(
                            self.last_heat
                                .get(l)
                                .and_then(|row| row.get(p))
                                .copied()
                                .unwrap_or(0),
                        )
                    })
                    .collect()
            })
            .collect();
        self.last_events = cur_events;
        self.last_heat = cur_heat;

        let mut window: Vec<u64> = alive.iter().map(|&p| delta_events[p]).collect();
        window.sort_unstable();
        let total: u64 = window.iter().sum();
        if total == 0 {
            return report;
        }
        // (`alive.len() >= 2` was checked above, so the window is
        // non-empty and the expect cannot fire.)
        let win_max = *window.last().expect("non-empty window");
        let win_median = window[window.len() / 2].max(1);
        let ratio = win_max as f64 / win_median as f64;
        if ratio >= self.cfg.split_ratio {
            // Act on the peers that actually drive the max/median ratio:
            // everyone whose window load clears the trigger, hottest
            // first (capped per round). Each sheds load at its own
            // hottest level, to a receiver chosen by window events —
            // and a receiver is used at most once per round, so one
            // quiet peer cannot absorb the hot side of every action.
            let mut over: Vec<(u64, usize)> = alive
                .iter()
                .map(|&p| (delta_events.get(p).copied().unwrap_or(0), p))
                .filter(|&(e, _)| e as f64 / win_median as f64 >= self.cfg.split_ratio)
                .collect();
            over.sort_unstable_by_key(|&(e, p)| (std::cmp::Reverse(e), p));
            // Larger fleets spread the same skew over more hot peers;
            // the per-round action budget scales with the fleet.
            over.truncate(net.levels().max(4).max(alive.len() / 16));
            let mut used: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for &(_, hot) in &over {
                let cold = alive
                    .iter()
                    .copied()
                    .filter(|&p| p != hot && !used.contains(&p))
                    .min_by_key(|&p| (delta_events.get(p).copied().unwrap_or(0), p));
                let Some(cold) = cold else { continue };
                // The hot peer's levels, hottest flood heat first; the
                // first level where an action lands wins.
                let mut levels: Vec<(u64, usize)> = delta_heat
                    .iter()
                    .enumerate()
                    .map(|(l, heat)| (heat.get(hot).copied().unwrap_or(0), l))
                    .collect();
                levels.sort_unstable_by_key(|&(h, l)| (std::cmp::Reverse(h), l));
                for &(heat, l) in &levels {
                    if heat == 0 {
                        break;
                    }
                    // Migrating a whole fragment sheds its entire flood
                    // footprint; splitting only stops charging the hot
                    // host for the half it gives away. Prefer the
                    // migration whenever the hot host has one to give.
                    if self.cfg.rebalance {
                        if let Some(stats) = net.migrate_zone(l, hot, cold) {
                            report.migrations += 1;
                            report.stats += stats;
                            used.insert(cold);
                            if let Some(m) = net.recorder().metrics() {
                                m.add(counters::VNODE_MIGRATIONS, 1);
                            }
                            break;
                        }
                    }
                    if self.cfg.splits {
                        // Halve the hot host's primary towards the cold one.
                        let point = net
                            .overlay(l)
                            .as_can()
                            .map(|c| c.node(NodeId(hot)).zone.centre());
                        if let Some(point) = point {
                            if let Some(stats) = net.split_zone(l, &point, cold) {
                                report.splits += 1;
                                report.stats += stats;
                                used.insert(cold);
                                break;
                            }
                        }
                    }
                }
            }
            return report;
        }
        // Flat-load merge-back: once imbalance has subsided, let the
        // background dyadic sibling merge reclaim the split fragments.
        // Gated off while virtual nodes are placed — the quiescence pass
        // would fold those too. Hysteresis: merge only once the
        // imbalance has dropped half-way below the split trigger, so
        // split/merge cannot oscillate while the ratio hovers around
        // the trigger.
        let merge_below = 1.0 + (self.cfg.split_ratio - 1.0) * 0.5;
        if self.cfg.splits && self.cfg.virtual_nodes == 0 && ratio < merge_below {
            let frags = net.fragment_count();
            if frags > 0 {
                report.stats += net.repair_overlays(8);
                report.merges = frags.saturating_sub(net.fragment_count()) as u64;
                let tel = net.recorder();
                if report.merges > 0 && tel.is_enabled() {
                    tel.event(
                        SpanId::NONE,
                        names::ZONE_MERGE,
                        vec![("merged", report.merges.into())],
                    );
                }
            }
        }
        report
    }
}
