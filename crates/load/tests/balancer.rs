//! End-to-end balancer behaviour against real Hyper-M networks: virtual
//! nodes, load-triggered splits/merges and migration all preserve the
//! overlay invariants and the no-false-dismissal guarantee.

use hyperm_baseline::FlatIndex;
use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork};
use hyperm_datagen::ZipfWorkload;
use hyperm_load::{LoadBalancer, LoadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(n_peers: usize, seed: u64) -> (HypermNetwork, Vec<Dataset>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let peers: Vec<Dataset> = (0..n_peers)
        .map(|_| {
            let centre: f64 = rng.gen();
            let mut ds = Dataset::new(16);
            let mut row = [0.0f64; 16];
            for _ in 0..30 {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect();
    let cfg = HypermConfig::new(16)
        .with_levels(4)
        .with_clusters_per_peer(5)
        .with_seed(seed);
    let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    (net, peers)
}

/// A Zipf workload whose centres are rows of the dataset (popular queries
/// hit real data).
fn zipf_over(peers: &[Dataset], s: f64, seed: u64) -> ZipfWorkload {
    let pool: Vec<Vec<f64>> = peers
        .iter()
        .flat_map(|ds| (0..ds.len().min(4)).map(|i| ds.row(i).to_vec()))
        .collect();
    ZipfWorkload::from_pool(pool, s, seed)
}

#[test]
fn measurement_charges_queries_and_fetches() {
    let (mut net, peers) = build(10, 1);
    let balancer = LoadBalancer::install(&mut net, LoadConfig::default());
    let mut w = zipf_over(&peers, 1.2, 7);
    for _ in 0..20 {
        let q = w.next_center();
        net.range_query(0, &q, 0.3, None);
    }
    let snap = balancer.snapshot(&net);
    assert!(snap.total_events > 0, "queries must charge the ledger");
    assert!(snap.max >= snap.median);
    assert!(snap.max_median_ratio >= 1.0);
    // Per-level heat was recorded wherever floods visited nodes.
    assert!(snap.heat_total_per_level.iter().any(|&h| h > 0));
}

#[test]
fn identical_queries_double_the_ledger_exactly() {
    // Exactly-once attribution: replaying the same workload doubles every
    // peer's counters precisely — nothing is double- or under-counted.
    let (mut net, peers) = build(10, 2);
    let balancer = LoadBalancer::install(&mut net, LoadConfig::default());
    let queries: Vec<Vec<f64>> = {
        let mut w = zipf_over(&peers, 1.2, 9);
        (0..15).map(|_| w.next_center()).collect()
    };
    for q in &queries {
        net.range_query(0, q, 0.3, None);
    }
    let first: Vec<_> = balancer.ledger().per_peer();
    for q in &queries {
        net.range_query(0, q, 0.3, None);
    }
    let second: Vec<_> = balancer.ledger().per_peer();
    for (p, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(b.queries_served, 2 * a.queries_served, "peer {p} queries");
        assert_eq!(b.floods_relayed, 2 * a.floods_relayed, "peer {p} floods");
        assert_eq!(
            b.fetches_answered,
            2 * a.fetches_answered,
            "peer {p} fetches"
        );
        assert_eq!(b.bytes, 2 * a.bytes, "peer {p} bytes");
        assert_eq!(b.retries, 2 * a.retries, "peer {p} retries");
    }
}

#[test]
fn virtual_nodes_place_fragments_and_keep_invariants() {
    let (mut net, peers) = build(12, 3);
    let baseline: Vec<_> = {
        let (net2, _) = build(12, 3);
        let q = peers[0].row(0).to_vec();
        net2.range_query(0, &q, 0.3, None).items
    };
    let _balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default().with_virtual_nodes(3).with_seed(5),
    );
    assert!(
        net.fragment_count() > 0,
        "placement must carve virtual zones"
    );
    for l in 0..net.levels() {
        net.overlay(l).check_invariants();
    }
    // Results are unchanged: replicas were copied, never dropped.
    let q = peers[0].row(0).to_vec();
    let mut got = net.range_query(0, &q, 0.3, None).items;
    let mut want = baseline.clone();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "virtual-node placement altered query results");
}

#[test]
fn relieve_acts_on_skew_and_preserves_recall() {
    let (mut net, peers) = build(12, 4);
    let flat = FlatIndex::from_peers(&peers);
    // Virtual-node placement already spreads the Zipf head well (the
    // steady-state max/median events ratio sits near 1.3), so the
    // trigger is set below that to exercise the relief machinery.
    let mut balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default()
            .with_virtual_nodes(3)
            .with_splits(true)
            .with_split_ratio(1.25)
            .with_seed(11),
    );
    let mut w = zipf_over(&peers, 1.2, 13);
    let mut acted = false;
    for round in 0..6 {
        for _ in 0..25 {
            let q = w.next_center();
            net.range_query(round % net.len(), &q, 0.25, None);
        }
        let report = balancer.relieve(&mut net);
        acted |= report.acted();
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
        }
    }
    assert!(acted, "heavy skew must trigger at least one relief action");
    // Recall stays 1.0 against the flat scan after all that surgery.
    let mut w2 = zipf_over(&peers, 1.2, 13);
    for _ in 0..10 {
        let q = w2.next_center();
        let truth = flat.range(&q, 0.25);
        let got = net.range_query(0, &q, 0.25, None);
        let got_set: std::collections::HashSet<_> = got.items.iter().copied().collect();
        for t in &truth {
            assert!(
                got_set.contains(t),
                "relief caused a false dismissal: {t:?}"
            );
        }
        assert_eq!(got_set.len(), truth.len());
    }
}

#[test]
fn splits_then_merge_back_when_load_flattens() {
    let (mut net, peers) = build(10, 5);
    let mut balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default()
            .with_splits(true)
            .with_split_ratio(1.5),
    );
    // Hammer one popular centre to force splits.
    let hot_q = peers[0].row(0).to_vec();
    let mut splits = 0;
    for _ in 0..5 {
        for _ in 0..30 {
            net.range_query(1, &hot_q, 0.25, None);
        }
        splits += balancer.relieve(&mut net).splits;
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
        }
    }
    assert!(splits > 0, "hot spot must trigger splits");
    assert!(net.fragment_count() > 0);
    // The hot spot subsides (an operator would also raise the trigger once
    // the incident is over): under an even workload the ratio sits well
    // inside the new trigger's merge hysteresis, so relief zones fold back.
    let mut balancer = LoadBalancer::install(
        &mut net,
        LoadConfig::default()
            .with_splits(true)
            .with_split_ratio(6.0),
    );
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..60 {
        let q: Vec<f64> = {
            let p = rng.gen_range(0..peers.len());
            let i = rng.gen_range(0..peers[p].len());
            peers[p].row(i).to_vec()
        };
        let entry = rng.gen_range(0..net.len());
        net.range_query(entry, &q, 0.2, None);
    }
    let mut merged = 0;
    for _ in 0..4 {
        merged += balancer.relieve(&mut net).merges;
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
        }
    }
    assert!(merged > 0, "flat load must fold fragments back");
}

#[test]
fn uninstall_stops_charging() {
    let (mut net, peers) = build(8, 6);
    let balancer = LoadBalancer::install(&mut net, LoadConfig::default());
    let q = peers[0].row(0).to_vec();
    net.range_query(0, &q, 0.3, None);
    let before = balancer.ledger().total_events();
    assert!(before > 0);
    LoadBalancer::uninstall(&mut net);
    net.range_query(0, &q, 0.3, None);
    assert_eq!(balancer.ledger().total_events(), before);
}
