//! The virtual binary index tree: kd-partition, managers, up/down routing.

use hyperm_can::Zone;
use hyperm_sim::{NodeId, OpStats};

/// Overlay construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VbiConfig {
    /// Key-space dimensionality.
    pub dim: usize,
    /// Seed (reserved for future randomised builds; the kd split is
    /// deterministic).
    pub seed: u64,
    /// Safety cap on routing steps.
    pub max_route_hops: u64,
}

impl VbiConfig {
    /// Defaults for a `dim`-dimensional key space.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            seed: 0,
            max_route_hops: 4096,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a tree node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VbiNodeKind {
    /// A virtual routing node with two children (tree indices).
    Internal {
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// A data node owned by one peer.
    Leaf {
        /// The owning peer.
        peer: NodeId,
    },
}

/// One node of the virtual tree.
#[derive(Debug, Clone)]
pub struct VbiNode {
    /// Parent tree index (`None` for the root).
    pub parent: Option<usize>,
    /// The region this node covers.
    pub region: Zone,
    /// Leaf or internal.
    pub kind: VbiNodeKind,
    /// The peer managing this node (for internal nodes: the peer of the
    /// leftmost descendant leaf, as in VBI's adjacency-based assignment).
    pub manager: NodeId,
}

/// A complete VBI overlay.
#[derive(Debug, Clone)]
pub struct VbiOverlay {
    config: VbiConfig,
    tree: Vec<VbiNode>,
    leaf_of_peer: Vec<usize>,
    pub(crate) stores: Vec<Vec<hyperm_can::StoredObject>>,
    bootstrap_stats: OpStats,
    pub(crate) next_object_id: u64,
}

impl VbiOverlay {
    /// Build an overlay of `n` peers over `[0,1)^dim`.
    pub fn bootstrap(config: VbiConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one peer");
        assert!(config.dim > 0, "dimension must be positive");
        let mut tree: Vec<VbiNode> = Vec::with_capacity(2 * n - 1);
        let mut leaf_of_peer = vec![usize::MAX; n];
        let root_region = Zone::whole(config.dim);
        let mut next_peer = 0usize;
        build_subtree(
            root_region,
            n,
            None,
            0,
            &mut tree,
            &mut leaf_of_peer,
            &mut next_peer,
        );
        assert_eq!(next_peer, n, "all peers placed");

        let mut overlay = VbiOverlay {
            config,
            tree,
            leaf_of_peer,
            stores: vec![Vec::new(); n],
            bootstrap_stats: OpStats::zero(),
            next_object_id: 0,
        };
        // Simulated join accounting on the final topology: each peer after
        // the first routes a join request to its leaf's region centre.
        let mut joins = OpStats::zero();
        for p in 1..n {
            let centre = overlay.tree[overlay.leaf_of_peer[p]].region.centre();
            let (_, stats) = overlay.route_point(NodeId(p % p.max(1)), &centre, 64);
            joins += stats;
        }
        overlay.bootstrap_stats = joins;
        overlay
    }

    /// Number of peers (= leaves).
    pub fn len(&self) -> usize {
        self.leaf_of_peer.len()
    }

    /// Whether the overlay has no peers (never true post-bootstrap).
    pub fn is_empty(&self) -> bool {
        self.leaf_of_peer.is_empty()
    }

    /// Key-space dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Simulated construction cost.
    pub fn bootstrap_stats(&self) -> OpStats {
        self.bootstrap_stats
    }

    /// Borrow a tree node.
    pub fn node(&self, idx: usize) -> &VbiNode {
        &self.tree[idx]
    }

    /// Number of tree nodes (`2·peers − 1`).
    pub fn tree_len(&self) -> usize {
        self.tree.len()
    }

    /// Tree index of a peer's leaf.
    pub fn leaf_of(&self, peer: NodeId) -> usize {
        self.leaf_of_peer[peer.0]
    }

    /// Ground-truth owner of a point (region scan; tests only).
    pub fn owner_of(&self, point: &[f64]) -> NodeId {
        self.tree
            .iter()
            .find_map(|nd| match nd.kind {
                VbiNodeKind::Leaf { peer } if nd.region.contains(point) => Some(peer),
                _ => None,
            })
            .expect("leaf regions tile the space")
    }

    /// Route from `from`'s leaf to the leaf containing `point`, upside-down:
    /// ascend to the lowest ancestor covering the point, then descend.
    ///
    /// A hop is charged whenever consecutive tree nodes have different
    /// managers (edges within one peer's managed path are free).
    pub fn route_point(&self, from: NodeId, point: &[f64], msg_bytes: u64) -> (NodeId, OpStats) {
        assert_eq!(point.len(), self.config.dim, "point dimension mismatch");
        let mut stats = OpStats::zero();
        let mut idx = self.leaf_of_peer[from.0];
        let mut steps = 0u64;
        // Ascend.
        while !self.tree[idx].region.contains(point) {
            let parent = self.tree[idx].parent.expect("root covers everything");
            self.charge_edge(idx, parent, msg_bytes, &mut stats);
            idx = parent;
            steps += 1;
            assert!(
                steps <= self.config.max_route_hops,
                "routing ascent too long"
            );
        }
        // Descend.
        loop {
            match self.tree[idx].kind {
                VbiNodeKind::Leaf { peer } => return (peer, stats),
                VbiNodeKind::Internal { left, right } => {
                    let next = if self.tree[left].region.contains(point) {
                        left
                    } else {
                        right
                    };
                    debug_assert!(self.tree[next].region.contains(point));
                    self.charge_edge(idx, next, msg_bytes, &mut stats);
                    idx = next;
                    steps += 1;
                    assert!(
                        steps <= self.config.max_route_hops,
                        "routing descent too long"
                    );
                }
            }
        }
    }

    /// Charge one tree-edge traversal (free if both ends share a manager).
    pub(crate) fn charge_edge(&self, a: usize, b: usize, msg_bytes: u64, stats: &mut OpStats) {
        if self.tree[a].manager != self.tree[b].manager {
            *stats += OpStats::one_hop(msg_bytes);
        }
    }

    /// Tree indices of every leaf whose region intersects the ball, found
    /// by root descent; also returns the message cost of the traversal.
    pub(crate) fn leaves_intersecting(
        &self,
        start_leaf: usize,
        centre: &[f64],
        radius: f64,
        msg_bytes: u64,
    ) -> (Vec<usize>, OpStats) {
        let mut stats = OpStats::zero();
        // Ascend from the start leaf to the lowest ancestor whose region
        // contains the ball's clipped bounding box.
        let lo: Vec<f64> = centre.iter().map(|c| (c - radius).max(0.0)).collect();
        let hi: Vec<f64> = centre.iter().map(|c| (c + radius).min(1.0)).collect();
        let mut idx = start_leaf;
        while !region_contains_box(&self.tree[idx].region, &lo, &hi) {
            let Some(parent) = self.tree[idx].parent else {
                break;
            };
            self.charge_edge(idx, parent, msg_bytes, &mut stats);
            idx = parent;
        }
        // Descend into intersecting subtrees.
        let mut leaves = Vec::new();
        let mut stack = vec![idx];
        while let Some(cur) = stack.pop() {
            match self.tree[cur].kind {
                VbiNodeKind::Leaf { .. } => leaves.push(cur),
                VbiNodeKind::Internal { left, right } => {
                    for child in [left, right] {
                        if self.tree[child].region.intersects_sphere(centre, radius) {
                            self.charge_edge(cur, child, msg_bytes, &mut stats);
                            stack.push(child);
                        }
                    }
                }
            }
        }
        (leaves, stats)
    }

    /// Stored objects per peer.
    pub fn store_sizes(&self) -> Vec<usize> {
        self.stores.iter().map(Vec::len).collect()
    }

    /// Summarised item mass per peer.
    pub fn stored_items_per_node(&self) -> Vec<u64> {
        self.stores
            .iter()
            .map(|s| s.iter().map(|o| o.payload.items as u64).sum())
            .collect()
    }

    /// Structural invariants: leaf regions tile the space, parents cover
    /// children, managers follow the leftmost-leaf rule.
    pub fn check_invariants(&self) {
        let total: f64 = self
            .tree
            .iter()
            .filter(|nd| matches!(nd.kind, VbiNodeKind::Leaf { .. }))
            .map(|nd| nd.region.volume())
            .sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "leaf regions do not tile: {total}"
        );
        for (i, nd) in self.tree.iter().enumerate() {
            if let VbiNodeKind::Internal { left, right } = nd.kind {
                assert_eq!(self.tree[left].parent, Some(i));
                assert_eq!(self.tree[right].parent, Some(i));
                // Parent region = union of children (volumes add up).
                let v = self.tree[left].region.volume() + self.tree[right].region.volume();
                assert!(
                    (v - nd.region.volume()).abs() < 1e-12,
                    "child volumes mismatch"
                );
                // Manager = left child's manager (leftmost-leaf rule).
                assert_eq!(
                    nd.manager, self.tree[left].manager,
                    "manager rule broken at {i}"
                );
            }
        }
        // Unique ownership of sample points.
        for i in 0..16 {
            let point: Vec<f64> = (0..self.config.dim)
                .map(|d| ((i * 7 + d * 3) % 16) as f64 / 16.0 + 0.01)
                .collect();
            let owners = self
                .tree
                .iter()
                .filter(|nd| {
                    matches!(nd.kind, VbiNodeKind::Leaf { .. }) && nd.region.contains(&point)
                })
                .count();
            assert_eq!(owners, 1, "point {point:?} owned by {owners} leaves");
        }
    }
}

/// Whether `region` contains the whole box `[lo, hi]`.
fn region_contains_box(region: &Zone, lo: &[f64], hi: &[f64]) -> bool {
    region
        .lo()
        .iter()
        .zip(region.hi())
        .zip(lo.iter().zip(hi))
        .all(|((rl, rh), (&bl, &bh))| *rl <= bl + 1e-12 && *rh >= bh - 1e-12)
}

/// Recursively split `region` into `n` leaf regions; returns the subtree's
/// root index. Peers are assigned to leaves in in-order sequence.
fn build_subtree(
    region: Zone,
    n: usize,
    parent: Option<usize>,
    _depth: usize,
    tree: &mut Vec<VbiNode>,
    leaf_of_peer: &mut [usize],
    next_peer: &mut usize,
) -> usize {
    let idx = tree.len();
    if n == 1 {
        let peer = NodeId(*next_peer);
        *next_peer += 1;
        leaf_of_peer[peer.0] = idx;
        tree.push(VbiNode {
            parent,
            region,
            kind: VbiNodeKind::Leaf { peer },
            manager: peer,
        });
        return idx;
    }
    // Split the widest dimension so each side's volume is proportional to
    // its leaf count (keeps per-peer regions equal-sized).
    let n_left = n.div_ceil(2);
    let dim = region.longest_dim();
    let (lo, hi) = (region.lo()[dim], region.hi()[dim]);
    let split = lo + (hi - lo) * n_left as f64 / n as f64;
    let mut left_hi = region.hi().to_vec();
    left_hi[dim] = split;
    let mut right_lo = region.lo().to_vec();
    right_lo[dim] = split;
    let left_region = Zone::from_bounds(region.lo().to_vec(), left_hi);
    let right_region = Zone::from_bounds(right_lo, region.hi().to_vec());

    // Placeholder; children fill in below, then we patch.
    tree.push(VbiNode {
        parent,
        region,
        kind: VbiNodeKind::Internal { left: 0, right: 0 },
        manager: NodeId(usize::MAX),
    });
    let left = build_subtree(
        left_region,
        n_left,
        Some(idx),
        _depth + 1,
        tree,
        leaf_of_peer,
        next_peer,
    );
    let right = build_subtree(
        right_region,
        n - n_left,
        Some(idx),
        _depth + 1,
        tree,
        leaf_of_peer,
        next_peer,
    );
    tree[idx].kind = VbiNodeKind::Internal { left, right };
    tree[idx].manager = tree[left].manager;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bootstrap_invariants_many_sizes() {
        for n in [1usize, 2, 3, 5, 8, 17, 64, 100] {
            for dim in [1usize, 2, 4] {
                let overlay = VbiOverlay::bootstrap(VbiConfig::new(dim), n);
                overlay.check_invariants();
                assert_eq!(overlay.len(), n);
                assert_eq!(overlay.tree_len(), 2 * n - 1);
            }
        }
    }

    #[test]
    fn routing_reaches_owner() {
        let overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 40);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let point = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let from = NodeId(rng.gen_range(0..40));
            let (owner, stats) = overlay.route_point(from, &point, 1);
            assert_eq!(owner, overlay.owner_of(&point));
            assert!(stats.hops <= 40);
        }
    }

    #[test]
    fn routing_is_logarithmic() {
        let avg_hops = |n: usize| {
            let overlay = VbiOverlay::bootstrap(VbiConfig::new(2), n);
            let mut rng = StdRng::seed_from_u64(2);
            let trials = 300;
            let total: u64 = (0..trials)
                .map(|_| {
                    let point = vec![rng.gen::<f64>(), rng.gen::<f64>()];
                    overlay
                        .route_point(NodeId(rng.gen_range(0..n)), &point, 1)
                        .1
                        .hops
                })
                .sum();
            total as f64 / trials as f64
        };
        let small = avg_hops(32);
        let large = avg_hops(512);
        assert!(large < small * 4.0, "small {small}, large {large}");
        assert!(
            large < 2.5 * (512f64).log2(),
            "large {large} not logarithmic"
        );
    }

    #[test]
    fn manager_paths_make_many_edges_free() {
        // Total hops of a route must be well below the tree-path length
        // because each peer manages a whole root-ward chain.
        let overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 64);
        let (_, stats) = overlay.route_point(NodeId(0), &[0.99, 0.99], 1);
        // Tree depth is ~6; full up+down would be ~12 edges, but manager
        // sharing must save several.
        assert!(stats.hops < 12, "hops {}", stats.hops);
    }

    #[test]
    fn leaves_intersecting_matches_geometry() {
        let overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 32);
        let centre = [0.4, 0.6];
        let radius = 0.15;
        let (leaves, _) =
            overlay.leaves_intersecting(overlay.leaf_of(NodeId(5)), &centre, radius, 1);
        for (i, nd) in overlay.tree.iter().enumerate() {
            if let VbiNodeKind::Leaf { .. } = nd.kind {
                assert_eq!(
                    nd.region.intersects_sphere(&centre, radius),
                    leaves.contains(&i),
                    "leaf {i} mismatch"
                );
            }
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let overlay = VbiOverlay::bootstrap(VbiConfig::new(3), 1);
        let (owner, stats) = overlay.route_point(NodeId(0), &[0.5, 0.5, 0.5], 1);
        assert_eq!(owner, NodeId(0));
        assert_eq!(stats.hops, 0);
    }
}
