//! Object operations over the VBI-tree: replicated sphere insertion, point
//! lookups and tree-descent range queries.
//!
//! Spheres live in the leaf regions they intersect (same replication
//! contract as the CAN and BATON substrates); queries descend from the
//! lowest covering virtual node into exactly the intersecting subtrees, so
//! every candidate leaf — and therefore every replica — is visited.

use crate::tree::VbiOverlay;
use hyperm_can::{InsertOutcome, ObjectRef, RangeOutcome, StoredObject};
use hyperm_sim::{NodeId, OpStats};

fn query_bytes(dim: usize) -> u64 {
    8 * (dim as u64 + 1) + 16
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl VbiOverlay {
    /// Insert a sphere object; with `replicate` it is copied into every
    /// leaf region the sphere overlaps (found by tree descent).
    pub fn insert_sphere(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
    ) -> InsertOutcome {
        assert_eq!(centre.len(), self.dim(), "centre dimension mismatch");
        assert!(radius >= 0.0, "negative radius {radius}");
        let id = self.next_object_id;
        self.next_object_id += 1;
        let obj = StoredObject {
            id,
            centre,
            radius,
            payload,
        };
        let bytes = obj.wire_bytes();

        let (owner, mut stats) = self.route_point(from, &obj.centre, bytes);
        let route_hops = stats.hops;

        let mut replicas = 0usize;
        let mut flood_depth = 0u64;
        if replicate && radius > 0.0 {
            let (leaves, walk) =
                self.leaves_intersecting(self.leaf_of(owner), &obj.centre, obj.radius, bytes);
            stats += walk;
            // The descent fans out in parallel; its critical path is the
            // tree height of the covering subtree (≤ log₂ of its leaves).
            flood_depth = (leaves.len().max(1) as f64).log2().ceil() as u64;
            for leaf in leaves {
                let crate::tree::VbiNodeKind::Leaf { peer } = self.node(leaf).kind else {
                    unreachable!("leaves_intersecting returns leaves")
                };
                self.stores[peer.0].push(obj.clone());
                replicas += 1;
            }
        } else {
            self.stores[owner.0].push(obj);
            replicas = 1;
        }
        InsertOutcome {
            owner,
            replicas,
            // Tree publishes are reliable: every intended replica lands.
            targets: replicas,
            stats,
            rounds: route_hops + flood_depth,
        }
    }

    /// Insert a zero-sized (point) object.
    pub fn insert_point(
        &mut self,
        from: NodeId,
        point: Vec<f64>,
        payload: ObjectRef,
    ) -> InsertOutcome {
        self.insert_sphere(from, point, 0.0, payload, false)
    }

    /// Remove every stored object (all replicas, all versions) published by
    /// `peer` under `tag`; one invalidation message per removed replica.
    pub fn remove_objects(&mut self, peer: usize, tag: u64) -> (usize, OpStats) {
        let mut removed = 0usize;
        for store in self.stores.iter_mut() {
            let before = store.len();
            store.retain(|o| !(o.payload.peer == peer && o.payload.tag == tag));
            removed += before - store.len();
        }
        let stats = OpStats {
            hops: removed as u64,
            messages: removed as u64,
            bytes: removed as u64 * 24,
            ..OpStats::zero()
        };
        (removed, stats)
    }

    /// Route to the owner of `point` and return the stored spheres
    /// containing it.
    pub fn point_lookup(&self, from: NodeId, point: &[f64]) -> (Vec<StoredObject>, OpStats) {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let (owner, mut stats) = self.route_point(from, point, query_bytes(self.dim()));
        let matches: Vec<StoredObject> = self.stores[owner.0]
            .iter()
            .filter(|o| euclid(&o.centre, point) <= o.radius + 1e-12)
            .cloned()
            .collect();
        let resp_bytes: u64 = matches
            .iter()
            .map(StoredObject::wire_bytes)
            .sum::<u64>()
            .max(16);
        stats += OpStats::one_hop(resp_bytes);
        (matches, stats)
    }

    /// Tree-descent range query, deduplicated by object id.
    pub fn range_query(&self, from: NodeId, centre: &[f64], radius: f64) -> RangeOutcome {
        assert_eq!(centre.len(), self.dim(), "centre dimension mismatch");
        assert!(radius >= 0.0, "negative radius {radius}");
        let qb = query_bytes(self.dim());
        let (leaves, mut stats) = self.leaves_intersecting(self.leaf_of(from), centre, radius, qb);

        let mut seen = std::collections::HashSet::new();
        let mut matches = Vec::new();
        let mut resp_bytes = 0u64;
        for leaf in &leaves {
            let crate::tree::VbiNodeKind::Leaf { peer } = self.node(*leaf).kind else {
                unreachable!()
            };
            let mut local = 0u64;
            for obj in &self.stores[peer.0] {
                if euclid(&obj.centre, centre) <= obj.radius + radius + 1e-12 && seen.insert(obj.id)
                {
                    local += obj.wire_bytes();
                    matches.push(obj.clone());
                }
            }
            resp_bytes += local.max(16);
        }
        let nv = leaves.len();
        stats += OpStats {
            hops: nv as u64,
            messages: nv as u64,
            bytes: resp_bytes,
            ..OpStats::zero()
        };
        RangeOutcome {
            matches,
            nodes_visited: nv,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::VbiConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn payload(peer: usize) -> ObjectRef {
        ObjectRef {
            peer,
            tag: 0,
            items: 1,
        }
    }

    #[test]
    fn insert_and_point_lookup() {
        let mut overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 16);
        overlay.insert_sphere(NodeId(0), vec![0.3, 0.3], 0.1, payload(1), true);
        let (hits, _) = overlay.point_lookup(NodeId(9), &[0.32, 0.3]);
        assert_eq!(hits.len(), 1);
        let (miss, _) = overlay.point_lookup(NodeId(9), &[0.9, 0.9]);
        assert!(miss.is_empty());
    }

    #[test]
    fn replication_covers_intersecting_leaves() {
        let mut overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 24);
        let out = overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.25, payload(1), true);
        assert!(out.replicas > 1);
        // Each peer's store has the object iff its leaf intersects.
        for p in 0..24 {
            let leaf = overlay.leaf_of(NodeId(p));
            let should = overlay
                .node(leaf)
                .region
                .intersects_sphere(&[0.5, 0.5], 0.25);
            let has = overlay.stores[p].iter().any(|o| o.id == 0);
            assert_eq!(should, has, "peer {p}");
        }
    }

    #[test]
    fn range_query_complete_vs_linear_scan() {
        let mut overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 20);
        let mut rng = StdRng::seed_from_u64(3);
        let mut truth: Vec<(Vec<f64>, f64)> = Vec::new();
        for i in 0..120 {
            let centre = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let r = rng.gen::<f64>() * 0.1;
            overlay.insert_sphere(NodeId(0), centre.clone(), r, payload(i), true);
            truth.push((centre, r));
        }
        for _ in 0..40 {
            let q = [rng.gen::<f64>(), rng.gen::<f64>()];
            let qr = rng.gen::<f64>() * 0.2;
            let res = overlay.range_query(NodeId(4), &q, qr);
            let expected = truth
                .iter()
                .filter(|(c, r)| euclid(c, &q) <= r + qr + 1e-12)
                .count();
            assert_eq!(res.matches.len(), expected, "q = {q:?}, qr = {qr}");
        }
    }

    #[test]
    fn no_replication_stores_once() {
        let mut overlay = VbiOverlay::bootstrap(VbiConfig::new(2), 12);
        let out = overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.3, payload(1), false);
        assert_eq!(out.replicas, 1);
        assert_eq!(overlay.store_sizes().iter().sum::<usize>(), 1);
    }

    #[test]
    fn costs_and_rounds_recorded() {
        let mut overlay = VbiOverlay::bootstrap(VbiConfig::new(3), 30);
        let out = overlay.insert_sphere(NodeId(7), vec![0.2, 0.8, 0.5], 0.1, payload(1), true);
        assert_eq!(out.stats.hops, out.stats.messages);
        assert!(out.rounds <= out.stats.hops + 8);
        let res = overlay.range_query(NodeId(2), &[0.2, 0.8, 0.5], 0.2);
        assert!(res.nodes_visited >= 1);
        assert!(!res.matches.is_empty());
    }
}
