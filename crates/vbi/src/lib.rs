//! VBI-tree — a Virtual Binary Index overlay [Jagadish, Ooi, Vu, Rong,
//! Zhou — ICDE 2006] as the third Hyper-M substrate.
//!
//! The paper lists VBI-tree alongside BATON and CAN as overlays Hyper-M
//! "could be implemented on top of". VBI maps a hierarchical spatial index
//! onto a peer-to-peer binary tree: **internal nodes are virtual** (they
//! describe routing regions and are *managed* by peers), data lives at
//! **leaf nodes** (one per peer), and queries travel "upside-down" — ascend
//! from any leaf to the lowest ancestor whose region covers the target,
//! then descend into exactly the subtrees that intersect it.
//!
//! * [`tree`] — the kd-partition of the subspace box into one leaf region
//!   per peer, the virtual internal nodes with their covering regions, the
//!   manager assignment (each internal node is managed by the peer of its
//!   leftmost descendant leaf, so every peer manages a root-ward path and
//!   many tree edges are intra-peer, i.e. free), and up/down routing;
//! * [`ops`] — the same object operations as the CAN and BATON substrates
//!   (sphere insertion replicated into every intersecting leaf region,
//!   point lookups, tree-descent range queries), sharing
//!   [`hyperm_can`]'s object/result types so the Hyper-M core swaps
//!   substrates freely.
//!
//! Simplifications vs. the full VBI paper, mirroring this workspace's
//! BATON: the tree is built directly in its balanced final shape (the
//! short-lived population is known), and BATON-style sideways routing
//! tables are omitted — tree-path routing is already O(log N) and the
//! discovery messages they save affect constants, not shapes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ops;
pub mod tree;

pub use tree::{VbiConfig, VbiNode, VbiOverlay};
