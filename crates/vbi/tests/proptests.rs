//! Property-based tests for the VBI-tree overlay invariants.

use hyperm_can::ObjectRef;
use hyperm_sim::NodeId;
use hyperm_vbi::{VbiConfig, VbiOverlay};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Structural invariants hold for any size and dimension.
    #[test]
    fn invariants_hold(n in 1usize..150, dim in 1usize..6) {
        let overlay = VbiOverlay::bootstrap(VbiConfig::new(dim), n);
        overlay.check_invariants();
    }

    /// Routing always lands at the true owner.
    #[test]
    fn routing_correct(
        n in 1usize..100,
        coords in prop::collection::vec(0.0..1.0f64, 3),
        from in any::<prop::sample::Index>(),
    ) {
        let overlay = VbiOverlay::bootstrap(VbiConfig::new(3), n);
        let start = NodeId(from.index(n));
        let (owner, stats) = overlay.route_point(start, &coords, 1);
        prop_assert_eq!(owner, overlay.owner_of(&coords));
        prop_assert!(stats.hops <= 2 * n as u64);
    }

    /// Replication + range queries are complete for any sphere pair.
    #[test]
    fn range_completeness(
        n in 2usize..48,
        cx in 0.0..1.0f64,
        cy in 0.0..1.0f64,
        r in 0.0..0.4f64,
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
        qr in 0.0..0.4f64,
        from in any::<prop::sample::Index>(),
    ) {
        let mut overlay = VbiOverlay::bootstrap(VbiConfig::new(2), n);
        overlay.insert_sphere(
            NodeId(0),
            vec![cx, cy],
            r,
            ObjectRef { peer: 0, tag: 0, items: 1 },
            true,
        );
        let res = overlay.range_query(NodeId(from.index(n)), &[qx, qy], qr);
        let d = ((cx - qx).powi(2) + (cy - qy).powi(2)).sqrt();
        let should = d <= r + qr + 1e-12;
        prop_assert_eq!(!res.matches.is_empty(), should, "d = {}, r+qr = {}", d, r + qr);
    }
}
