//! Deliberately skewed datasets (Section 5.3, Figure 9).
//!
//! "To further prove this observation, we intentionally skew our data …
//! We cluster our original data and select only a fixed number of clusters
//! (two to five in our experiments)." The effect under study is load
//! distribution: data concentrated in a handful of dense blobs lands on
//! very few CAN nodes in the original space, while the orthogonal wavelet
//! subspaces spread it out.

use crate::LabeledDataset;
use hyperm_cluster::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the skewed generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewedConfig {
    /// Number of dense blobs (the paper uses 2–5).
    pub blobs: usize,
    /// Total items, split evenly across blobs.
    pub count: usize,
    /// Dimensionality (power of two for the DWT).
    pub dim: usize,
    /// Standard deviation of the within-blob jitter, relative to the unit
    /// data range (small ⇒ highly skewed).
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkewedConfig {
    fn default() -> Self {
        Self {
            blobs: 3,
            count: 10_000,
            dim: 512,
            spread: 0.02,
            seed: 0,
        }
    }
}

impl SkewedConfig {
    /// A small configuration for tests and quick runs.
    pub fn small(blobs: usize, count: usize, dim: usize, seed: u64) -> Self {
        Self {
            blobs,
            count,
            dim,
            spread: 0.02,
            seed,
        }
    }
}

/// Generate `count` items concentrated in `blobs` dense clusters in
/// `[0,1]^dim`; labels identify the blob.
pub fn generate_skewed(config: &SkewedConfig) -> LabeledDataset {
    assert!(
        config.blobs > 0 && config.count > 0,
        "empty generation request"
    );
    assert!(config.dim > 0, "dimension must be positive");
    assert!(config.spread >= 0.0, "negative spread");
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Blob centres drawn away from the boundary so jitter stays in range.
    let centres: Vec<Vec<f64>> = (0..config.blobs)
        .map(|_| (0..config.dim).map(|_| rng.gen_range(0.2..0.8)).collect())
        .collect();
    let mut data = Dataset::with_capacity(config.dim, config.count);
    let mut labels = Vec::with_capacity(config.count);
    let mut row = vec![0.0f64; config.dim];
    for i in 0..config.count {
        let blob = i % config.blobs;
        for (x, c) in row.iter_mut().zip(&centres[blob]) {
            // Uniform jitter of width ±2·spread (cheap, bounded).
            *x = (c + rng.gen_range(-2.0..2.0) * config.spread).clamp(0.0, 1.0);
        }
        data.push_row(&row);
        labels.push(blob as u32);
    }
    LabeledDataset { data, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_labels() {
        let got = generate_skewed(&SkewedConfig::small(3, 30, 16, 1));
        assert_eq!(got.len(), 30);
        assert_eq!(got.data.dim(), 16);
        // Round-robin labels: 10 per blob.
        for b in 0..3u32 {
            assert_eq!(got.labels.iter().filter(|&&l| l == b).count(), 10);
        }
    }

    #[test]
    fn blobs_are_tight_and_separated() {
        let got = generate_skewed(&SkewedConfig::small(2, 40, 32, 2));
        // Within-blob distances much smaller than cross-blob distances.
        let d = |i: usize, j: usize| -> f64 {
            got.data
                .row(i)
                .iter()
                .zip(got.data.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let within = d(0, 2); // both blob 0
        let cross = d(0, 1); // blob 0 vs blob 1
        assert!(within * 3.0 < cross, "within {within}, cross {cross}");
    }

    #[test]
    fn values_in_unit_cube() {
        let got = generate_skewed(&SkewedConfig::small(5, 100, 8, 3));
        for row in got.data.rows() {
            assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_skewed(&SkewedConfig::small(4, 20, 8, 9));
        let b = generate_skewed(&SkewedConfig::small(4, 20, 8, 9));
        assert_eq!(a, b);
    }
}
