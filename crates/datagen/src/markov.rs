//! The paper's two-state Markov-process vector generator (Figure 7).
//!
//! Each 512-dimensional vector is a "time series" over its coordinates,
//! produced by a Markov chain with states *Increasing* and *Decreasing*:
//!
//! * `p1 ~ U(0, 0.5)` — probability of switching out of the current state
//!   from *Increasing*;
//! * `p2 = p1 + x`, `x ~ U(−0.05, 0.05)` — switching probability from
//!   *Decreasing* (the paper ties the two probabilities together so chains
//!   are roughly balanced);
//! * "The starting value, the initial state, the increase/decrease step, as
//!   well as the maximum step value were all chosen randomly."
//!
//! Values are kept in `[0, 1]` by reflecting at the boundaries (a walk that
//! hits 1 starts decreasing), which matches the bounded wavy shapes of the
//! paper's Figure 7b sample.

use hyperm_cluster::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the Markov generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovConfig {
    /// Number of vectors to generate.
    pub count: usize,
    /// Vector dimensionality (the paper uses 512).
    pub dim: usize,
    /// Upper bound for the per-vector maximum step (the paper leaves the
    /// scale unspecified; 0.05 of the value range gives Figure-7-like waves).
    pub max_step_cap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MarkovConfig {
    fn default() -> Self {
        Self {
            count: 100_000,
            dim: 512,
            max_step_cap: 0.05,
            seed: 0,
        }
    }
}

impl MarkovConfig {
    /// A small configuration for tests and quick runs.
    pub fn small(count: usize, dim: usize, seed: u64) -> Self {
        Self {
            count,
            dim,
            max_step_cap: 0.05,
            seed,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Increasing,
    Decreasing,
}

/// Generate `config.count` Markov-process vectors in `[0,1]^dim`.
pub fn generate_markov(config: &MarkovConfig) -> Dataset {
    assert!(
        config.dim > 0 && config.count > 0,
        "empty generation request"
    );
    assert!(config.max_step_cap > 0.0, "max step cap must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::with_capacity(config.dim, config.count);
    let mut row = vec![0.0f64; config.dim];
    for _ in 0..config.count {
        // Per-vector chain parameters, exactly as described in Sec. 5.1.
        let p1: f64 = rng.gen_range(0.0..0.5);
        let p2: f64 = (p1 + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
        let max_step: f64 = rng.gen_range(f64::EPSILON..config.max_step_cap);
        let mut value: f64 = rng.gen();
        let mut state = if rng.gen::<bool>() {
            State::Increasing
        } else {
            State::Decreasing
        };
        for x in row.iter_mut() {
            let step = rng.gen_range(0.0..max_step);
            value += match state {
                State::Increasing => step,
                State::Decreasing => -step,
            };
            // Reflect at the [0,1] boundaries.
            if value > 1.0 {
                value = 2.0 - value;
                state = State::Decreasing;
            } else if value < 0.0 {
                value = -value;
                state = State::Increasing;
            }
            *x = value;
            // State transition.
            let switch_p = match state {
                State::Increasing => p1,
                State::Decreasing => p2,
            };
            if rng.gen::<f64>() < switch_p {
                state = match state {
                    State::Increasing => State::Decreasing,
                    State::Decreasing => State::Increasing,
                };
            }
        }
        ds.push_row(&row);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let ds = generate_markov(&MarkovConfig::small(50, 128, 1));
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.dim(), 128);
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let ds = generate_markov(&MarkovConfig::small(100, 64, 2));
        for row in ds.rows() {
            for &x in row {
                assert!((0.0..=1.0).contains(&x), "value {x} escaped [0,1]");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_markov(&MarkovConfig::small(10, 32, 7));
        let b = generate_markov(&MarkovConfig::small(10, 32, 7));
        assert_eq!(a, b);
        let c = generate_markov(&MarkovConfig::small(10, 32, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn consecutive_coordinates_are_correlated() {
        // The walk moves by ≤ max_step per coordinate, so |x_{i+1} − x_i|
        // is small — the property that makes wavelet approximations good.
        let ds = generate_markov(&MarkovConfig::small(50, 256, 3));
        let mut max_jump = 0.0f64;
        for row in ds.rows() {
            for w in row.windows(2) {
                max_jump = max_jump.max((w[1] - w[0]).abs());
            }
        }
        assert!(max_jump <= 0.05 + 1e-12, "jump {max_jump}");
    }

    #[test]
    fn vectors_are_diverse() {
        // Different vectors should differ substantially (different chains).
        let ds = generate_markov(&MarkovConfig::small(20, 128, 4));
        let mut min_dist = f64::INFINITY;
        for i in 0..ds.len() {
            for j in i + 1..ds.len() {
                let d: f64 = ds
                    .row(i)
                    .iter()
                    .zip(ds.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                min_dist = min_dist.min(d);
            }
        }
        assert!(min_dist > 0.1, "two chains nearly identical: {min_dist}");
    }
}
