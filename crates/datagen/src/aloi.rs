//! ALOI-like synthetic color histograms (substitution for the real dataset).
//!
//! The paper's retrieval experiments use the Amsterdam Library of Object
//! Images \[13\]: 12,000 images of objects "under different angles and
//! illuminations", each represented as a histogram of colors. That corpus
//! cannot be shipped here, so this module synthesises a structurally
//! equivalent collection:
//!
//! * each **object class** has a base histogram — a mixture of 2–4 smooth
//!   circular bumps over the hue axis plus a uniform floor (real objects
//!   have a few dominant colors);
//! * each **view** of an object perturbs the base: a small circular shift
//!   (viewing angle moves specular highlights), a gamma-style illumination
//!   distortion, and per-bin multiplicative noise; the result is
//!   L1-normalised like a histogram.
//!
//! What the evaluation needs from the data — many classes of roughly equal
//! size, strong within-class similarity, smooth between-view variation and
//! meaningful L2 neighbourhoods — is preserved; see DESIGN.md,
//! substitution #1.

use crate::LabeledDataset;
use hyperm_cluster::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the ALOI substitute generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AloiConfig {
    /// Number of object classes.
    pub classes: usize,
    /// Views generated per class (ALOI has 72–111 depending on collection;
    /// 120 × 100 classes gives the paper's 12,000 items).
    pub views_per_class: usize,
    /// Histogram bins — must be a power of two for the DWT (64 default).
    pub bins: usize,
    /// Magnitude of the per-view perturbations (0 = identical views).
    pub view_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AloiConfig {
    fn default() -> Self {
        Self {
            classes: 100,
            views_per_class: 120,
            bins: 64,
            view_jitter: 0.15,
            seed: 0,
        }
    }
}

impl AloiConfig {
    /// A small configuration for tests and quick runs.
    pub fn small(classes: usize, views_per_class: usize, seed: u64) -> Self {
        Self {
            classes,
            views_per_class,
            bins: 64,
            view_jitter: 0.15,
            seed,
        }
    }
}

/// Generate the labelled histogram collection.
pub fn generate_aloi_like(config: &AloiConfig) -> LabeledDataset {
    assert!(
        config.classes > 0 && config.views_per_class > 0,
        "empty generation request"
    );
    assert!(
        config.bins.is_power_of_two() && config.bins >= 4,
        "bins must be a power of two >= 4"
    );
    assert!(
        (0.0..=1.0).contains(&config.view_jitter),
        "jitter must be in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.classes * config.views_per_class;
    let mut data = Dataset::with_capacity(config.bins, n);
    let mut labels = Vec::with_capacity(n);
    let mut view = vec![0.0f64; config.bins];

    for class in 0..config.classes {
        let base = class_base_histogram(config.bins, &mut rng);
        for _ in 0..config.views_per_class {
            render_view(&base, config.view_jitter, &mut rng, &mut view);
            data.push_row(&view);
            labels.push(class as u32);
        }
    }
    LabeledDataset { data, labels }
}

/// A base histogram: 2–4 circular Gaussian bumps + uniform floor, L1 = 1.
fn class_base_histogram(bins: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut h = vec![0.02; bins]; // uniform floor
    let bumps = rng.gen_range(2..=4);
    for _ in 0..bumps {
        let centre = rng.gen_range(0.0..bins as f64);
        // Clamp so few-bin histograms don't invert the range (the clamp
        // only binds for bins < 16, leaving larger workloads unchanged).
        let width = rng.gen_range(1.5..(bins as f64 / 8.0).max(2.0));
        let weight = rng.gen_range(0.5..2.0);
        for (b, v) in h.iter_mut().enumerate() {
            // Circular distance on the hue wheel.
            let d = (b as f64 - centre).abs();
            let d = d.min(bins as f64 - d);
            *v += weight * (-0.5 * (d / width) * (d / width)).exp();
        }
    }
    l1_normalize(&mut h);
    h
}

/// Render one view of a class: shift + illumination gamma + noise.
fn render_view(base: &[f64], jitter: f64, rng: &mut StdRng, out: &mut Vec<f64>) {
    let bins = base.len();
    out.clear();
    out.resize(bins, 0.0);
    // Fractional circular shift of up to ±2 bins scaled by jitter.
    let shift = rng.gen_range(-2.0..2.0) * jitter * 2.0;
    let gamma = 1.0 + rng.gen_range(-0.3..0.3) * jitter * 2.0;
    for (b, slot) in out.iter_mut().enumerate() {
        // Linear interpolation at the shifted position.
        let pos = b as f64 + shift;
        let i0 = pos.floor().rem_euclid(bins as f64) as usize;
        let i1 = (i0 + 1) % bins;
        let frac = pos - pos.floor();
        let v = base[i0] * (1.0 - frac) + base[i1] * frac;
        // Illumination gamma + multiplicative noise.
        let noisy = v.max(1e-9).powf(gamma) * (1.0 + rng.gen_range(-0.5..0.5) * jitter);
        *slot = noisy.max(0.0);
    }
    l1_normalize(out);
}

fn l1_normalize(h: &mut [f64]) {
    let sum: f64 = h.iter().sum();
    if sum > 0.0 {
        for v in h.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_dist(ds: &Dataset, pairs: &[(usize, usize)]) -> f64 {
        let total: f64 = pairs
            .iter()
            .map(|&(i, j)| {
                ds.row(i)
                    .iter()
                    .zip(ds.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum();
        total / pairs.len() as f64
    }

    #[test]
    fn generates_requested_shape_and_labels() {
        let got = generate_aloi_like(&AloiConfig::small(5, 7, 1));
        assert_eq!(got.len(), 35);
        assert_eq!(got.data.dim(), 64);
        assert_eq!(got.labels.len(), 35);
        assert_eq!(got.labels[0], 0);
        assert_eq!(got.labels[34], 4);
    }

    #[test]
    fn histograms_are_normalised_and_nonnegative() {
        let got = generate_aloi_like(&AloiConfig::small(4, 10, 2));
        for row in got.data.rows() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn within_class_tighter_than_between_class() {
        let got = generate_aloi_like(&AloiConfig::small(10, 20, 3));
        // Sample same-class and cross-class pairs.
        let same: Vec<(usize, usize)> = (0..10)
            .flat_map(|c| (0..10).map(move |v| (c * 20 + v, c * 20 + v + 1)))
            .collect();
        let cross: Vec<(usize, usize)> = (0..9)
            .flat_map(|c| (0..10).map(move |v| (c * 20 + v, (c + 1) * 20 + v)))
            .collect();
        let d_same = mean_dist(&got.data, &same);
        let d_cross = mean_dist(&got.data, &cross);
        assert!(
            d_same * 2.0 < d_cross,
            "classes not separable: within {d_same}, between {d_cross}"
        );
    }

    #[test]
    fn zero_jitter_gives_identical_views() {
        let cfg = AloiConfig {
            classes: 2,
            views_per_class: 3,
            bins: 32,
            view_jitter: 0.0,
            seed: 4,
        };
        let got = generate_aloi_like(&cfg);
        for v in 1..3 {
            for (a, b) in got.data.row(0).iter().zip(got.data.row(v)) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_aloi_like(&AloiConfig::small(3, 5, 9));
        let b = generate_aloi_like(&AloiConfig::small(3, 5, 9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bins_rejected() {
        generate_aloi_like(&AloiConfig {
            bins: 48,
            ..AloiConfig::small(2, 2, 0)
        });
    }
}
