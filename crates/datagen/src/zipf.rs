//! Zipf-skewed query workloads (hot-spot load experiments).
//!
//! The paper evaluates *data* skew (Section 5.3) but queries its networks
//! uniformly. Real photo-sharing traffic is anything but uniform: a few
//! popular objects draw most lookups, which concentrates phase-1 floods on
//! the overlay zones covering the popular keys — the hot-spot problem the
//! `hyperm-load` relief mechanisms attack. [`ZipfWorkload`] makes that
//! workload reproducible: a fixed pool of query centres, ranked by
//! popularity, drawn with the classic Zipf law
//!
//! ```text
//! P(rank = r) ∝ 1 / r^s ,   r = 1..R
//! ```
//!
//! `s = 0` degenerates to the uniform workload (every centre equally
//! likely), `s ≈ 0.8` is mild skew, `s ≥ 1.2` is the heavy skew of web
//! and P2P request traces. Draws use one seeded [`StdRng`] and an exact
//! inverse-CDF table — no wall clock, no rejection loops — so a given
//! `(pool, s, seed)` triple yields a byte-identical centre sequence on
//! every run and platform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic Zipf query workload over a box domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfConfig {
    /// Number of distinct query centres (the popularity ranks).
    pub ranks: usize,
    /// Zipf skew exponent `s ≥ 0` (`0` = uniform).
    pub s: f64,
    /// Dimensionality of the query centres.
    pub dim: usize,
    /// Lower bound of every coordinate.
    pub lo: f64,
    /// Upper bound of every coordinate (centres land in `[lo, hi]`).
    pub hi: f64,
    /// RNG seed (pool placement and draw order both derive from it).
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        Self {
            ranks: 64,
            s: 1.2,
            dim: 16,
            lo: 0.0,
            hi: 1.0,
            seed: 0,
        }
    }
}

/// A seeded Zipf-ranked query-centre generator. See the module docs.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// Query centres, index 0 = most popular rank.
    pool: Vec<Vec<f64>>,
    /// Cumulative rank distribution; `cdf[r]` = P(rank ≤ r), ending at 1.
    cdf: Vec<f64>,
    s: f64,
    rng: StdRng,
}

impl ZipfWorkload {
    /// A workload whose centre pool is drawn uniformly from the
    /// `cfg`-described box (ranks are assigned in draw order).
    pub fn generate(cfg: &ZipfConfig) -> Self {
        assert!(cfg.ranks > 0, "need at least one query centre");
        assert!(cfg.dim > 0, "zero-dimensional centres");
        assert!(
            cfg.hi > cfg.lo && cfg.lo.is_finite() && cfg.hi.is_finite(),
            "bad domain [{}, {}]",
            cfg.lo,
            cfg.hi
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pool = (0..cfg.ranks)
            .map(|_| {
                (0..cfg.dim)
                    .map(|_| rng.gen_range(cfg.lo..cfg.hi))
                    .collect()
            })
            .collect();
        Self::from_pool(pool, cfg.s, cfg.seed.wrapping_add(0x5EED_21FF))
    }

    /// A workload over an explicit centre pool — e.g. rows of the dataset
    /// under test, so popular queries hit real data. `pool[0]` is the most
    /// popular rank. Draws use `StdRng::seed_from_u64(seed)`.
    pub fn from_pool(pool: Vec<Vec<f64>>, s: f64, seed: u64) -> Self {
        assert!(!pool.is_empty(), "empty centre pool");
        assert!(
            s >= 0.0 && s.is_finite(),
            "skew exponent must be ≥ 0, got {s}"
        );
        let dim = pool[0].len();
        assert!(
            pool.iter().all(|c| c.len() == dim),
            "ragged centre pool (dim {dim} expected)"
        );
        // Exact inverse-CDF table: weight(r) = (r+1)^-s, normalised.
        let mut cdf: Vec<f64> = Vec::with_capacity(pool.len());
        let mut acc = 0.0;
        for r in 0..pool.len() {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Pin the tail exactly so a u ~ [0,1) draw can never fall past it.
        // (The pool is non-empty — asserted above — so the cdf has a last
        // element.)
        *cdf.last_mut().expect("non-empty cdf") = 1.0;
        ZipfWorkload {
            pool,
            cdf,
            s,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Number of popularity ranks (distinct centres).
    pub fn ranks(&self) -> usize {
        self.pool.len()
    }

    /// The centre at popularity rank `r` (0 = most popular).
    pub fn center_of_rank(&self, r: usize) -> &[f64] {
        &self.pool[r]
    }

    /// Exact probability of drawing rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - lo
    }

    /// Draw the next popularity rank (0-based).
    pub fn next_rank(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        // First rank whose cumulative mass exceeds the draw.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.pool.len() - 1)
    }

    /// Draw the next query centre (a clone of the ranked pool entry).
    pub fn next_center(&mut self) -> Vec<f64> {
        let r = self.next_rank();
        self.pool[r].clone()
    }

    /// Draw `n` ranks (test/bench convenience).
    pub fn ranks_iter(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.next_rank()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(s: f64, seed: u64) -> ZipfConfig {
        ZipfConfig {
            ranks: 50,
            s,
            dim: 8,
            lo: 0.25,
            hi: 0.75,
            seed,
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = ZipfWorkload::generate(&cfg(1.2, 7));
        let mut b = ZipfWorkload::generate(&cfg(1.2, 7));
        for _ in 0..500 {
            // Byte-equal centres: the draws come from the same seeded RNG.
            let (ca, cb) = (a.next_center(), b.next_center());
            let bits_a: Vec<u64> = ca.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u64> = cb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ZipfWorkload::generate(&cfg(1.2, 1));
        let mut b = ZipfWorkload::generate(&cfg(1.2, 2));
        let ra = a.ranks_iter(200);
        let rb = b.ranks_iter(200);
        assert_ne!(ra, rb);
    }

    #[test]
    fn centers_stay_in_domain() {
        let c = cfg(0.8, 3);
        let mut w = ZipfWorkload::generate(&c);
        for _ in 0..200 {
            let centre = w.next_center();
            assert_eq!(centre.len(), c.dim);
            assert!(centre.iter().all(|&x| (c.lo..=c.hi).contains(&x)));
        }
    }

    #[test]
    fn s_zero_is_uniform() {
        let mut w = ZipfWorkload::generate(&cfg(0.0, 4));
        let n = 50_000;
        let mut counts = vec![0u64; w.ranks()];
        for _ in 0..n {
            counts[w.next_rank()] += 1;
        }
        let expect = n as f64 / counts.len() as f64;
        for &c in &counts {
            // 4σ tolerance for a binomial count around n/R.
            let sigma = (expect * (1.0 - 1.0 / counts.len() as f64)).sqrt();
            assert!(
                (c as f64 - expect).abs() < 4.0 * sigma + 1.0,
                "rank count {c} too far from uniform {expect}"
            );
        }
    }

    #[test]
    fn empirical_rank_frequency_slope_matches_s() {
        // log f(r) ≈ -s · log r + const: least-squares slope over the head
        // of the distribution must recover s within tolerance.
        for &s in &[0.8, 1.2] {
            let mut w = ZipfWorkload::generate(&cfg(s, 5));
            let n = 200_000;
            let mut counts = vec![0u64; w.ranks()];
            for _ in 0..n {
                counts[w.next_rank()] += 1;
            }
            // Head ranks only — tail counts are noisy.
            let pts: Vec<(f64, f64)> = counts
                .iter()
                .enumerate()
                .take(20)
                .filter(|(_, &c)| c > 0)
                .map(|(r, &c)| (((r + 1) as f64).ln(), (c as f64).ln()))
                .collect();
            let m = pts.len() as f64;
            let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1));
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
            assert!((slope + s).abs() < 0.1, "slope {slope} should be ≈ -{s}");
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let w = ZipfWorkload::generate(&cfg(1.2, 6));
        let total: f64 = (0..w.ranks()).map(|r| w.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for r in 1..w.ranks() {
            assert!(
                w.pmf(r) <= w.pmf(r - 1) + 1e-15,
                "pmf must be non-increasing"
            );
        }
    }

    #[test]
    fn explicit_pool_is_used_verbatim() {
        let pool = vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]];
        let mut w = ZipfWorkload::from_pool(pool.clone(), 2.0, 9);
        assert_eq!(w.ranks(), 3);
        assert_eq!(w.center_of_rank(1), &[0.3, 0.4][..]);
        // Heavy skew: the top rank dominates.
        let draws = w.ranks_iter(1000);
        let top = draws.iter().filter(|&&r| r == 0).count();
        assert!(top > 700, "rank 0 drew {top}/1000 under s=2");
        for r in draws {
            assert!(r < 3);
        }
    }
}
