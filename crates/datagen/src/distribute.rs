//! Distribution of a global dataset onto peers (Section 5.1).
//!
//! "The data was subsequently clustered using k-means in the original vector
//! space and then each cluster was redistributed among 8 to 10 nodes. This
//! method simulates user behavior in the sense that each user commonly has
//! a limited set of interests, thus maintaining items belonging to a subset
//! of all the classes."
//!
//! The global clustering is a workload-preparation step (the paper did it
//! offline); for large corpora the mini-batch variant keeps it fast.

use hyperm_cluster::kmeans::kmeans;
use hyperm_cluster::{minibatch_kmeans, Dataset, KMeansConfig, MiniBatchConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters for peer distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributeConfig {
    /// Number of peers in the network.
    pub peers: usize,
    /// Number of interest classes to carve the corpus into.
    pub classes: usize,
    /// Each class is spread over a random number of peers in this range
    /// (inclusive); the paper uses 8–10.
    pub peers_per_class: (usize, usize),
    /// Use mini-batch k-means for the global clustering (recommended for
    /// ≥ 10k items).
    pub minibatch: bool,
    /// RNG seed (also seeds the clustering).
    pub seed: u64,
}

impl Default for DistributeConfig {
    fn default() -> Self {
        Self {
            peers: 100,
            classes: 25,
            peers_per_class: (8, 10),
            minibatch: true,
            seed: 0,
        }
    }
}

/// Cluster `data` into interest classes and deal each class's items onto a
/// small random set of peers. Returns one local dataset per peer (some may
/// be empty if `peers` is large relative to `classes × peers_per_class`).
pub fn distribute_by_clusters(data: &Dataset, config: &DistributeConfig) -> Vec<Dataset> {
    assert!(config.peers > 0, "need at least one peer");
    assert!(config.classes > 0, "need at least one class");
    let (lo, hi) = config.peers_per_class;
    assert!(
        lo >= 1 && lo <= hi,
        "invalid peers_per_class range {lo}..={hi}"
    );
    assert!(!data.is_empty(), "cannot distribute an empty dataset");

    let assignment = if config.minibatch {
        minibatch_kmeans(
            data,
            &MiniBatchConfig {
                base: KMeansConfig::new(config.classes).with_seed(config.seed),
                batch_size: 256,
                steps: 150,
            },
        )
        .assignment
    } else {
        kmeans(
            data,
            &KMeansConfig::new(config.classes).with_seed(config.seed),
        )
        .assignment
    };
    let n_classes = assignment.iter().copied().max().unwrap_or(0) as usize + 1;

    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9e37_79b9));
    let mut peers: Vec<Dataset> = (0..config.peers)
        .map(|_| Dataset::new(data.dim()))
        .collect();
    let mut peer_ids: Vec<usize> = (0..config.peers).collect();

    // For each class: choose its host peers, then deal items round-robin.
    let mut class_hosts: Vec<Vec<usize>> = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let span = rng.gen_range(lo..=hi).min(config.peers);
        peer_ids.shuffle(&mut rng);
        class_hosts.push(peer_ids[..span].to_vec());
    }
    let mut dealt = vec![0usize; n_classes];
    for (i, &class) in assignment.iter().enumerate() {
        let hosts = &class_hosts[class as usize];
        let peer = hosts[dealt[class as usize] % hosts.len()];
        dealt[class as usize] += 1;
        peers[peer].push_row(data.row(i));
    }
    peers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::{generate_markov, MarkovConfig};

    fn small_config(peers: usize, classes: usize, seed: u64) -> DistributeConfig {
        DistributeConfig {
            peers,
            classes,
            peers_per_class: (3, 4),
            minibatch: false,
            seed,
        }
    }

    #[test]
    fn every_item_lands_on_exactly_one_peer() {
        let data = generate_markov(&MarkovConfig::small(300, 32, 1));
        let peers = distribute_by_clusters(&data, &small_config(20, 5, 2));
        assert_eq!(peers.len(), 20);
        let total: usize = peers.iter().map(Dataset::len).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn classes_span_the_requested_peer_range() {
        let data = generate_markov(&MarkovConfig::small(500, 16, 3));
        let cfg = small_config(30, 4, 4);
        let peers = distribute_by_clusters(&data, &cfg);
        // With 4 classes × ≤4 peers each, at most 16 peers are non-empty.
        let nonempty = peers.iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty <= 16, "nonempty {nonempty}");
        assert!(nonempty >= 3, "nonempty {nonempty}");
    }

    #[test]
    fn deterministic_under_seed() {
        let data = generate_markov(&MarkovConfig::small(200, 16, 5));
        let a = distribute_by_clusters(&data, &small_config(10, 3, 6));
        let b = distribute_by_clusters(&data, &small_config(10, 3, 6));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn minibatch_path_works() {
        let data = generate_markov(&MarkovConfig::small(400, 16, 7));
        let cfg = DistributeConfig {
            peers: 10,
            classes: 4,
            peers_per_class: (2, 3),
            minibatch: true,
            seed: 8,
        };
        let peers = distribute_by_clusters(&data, &cfg);
        assert_eq!(peers.iter().map(Dataset::len).sum::<usize>(), 400);
    }

    #[test]
    fn single_peer_gets_everything() {
        let data = generate_markov(&MarkovConfig::small(50, 8, 9));
        let cfg = DistributeConfig {
            peers: 1,
            classes: 3,
            peers_per_class: (8, 10),
            minibatch: false,
            seed: 1,
        };
        let peers = distribute_by_clusters(&data, &cfg);
        assert_eq!(peers[0].len(), 50);
    }
}
