//! Synthetic workload generators reproducing the paper's datasets.
//!
//! Two datasets drive the evaluation of Hyper-M (ICDE 2007):
//!
//! 1. **Synthetic Markov vectors** (Section 5.1, Figure 7) — 100,000
//!    512-dimensional feature vectors produced by a two-state
//!    Increasing/Decreasing Markov process, then clustered and redistributed
//!    among peers "8 to 10 nodes" per cluster to mimic users with focused
//!    interests. Implemented verbatim in [`markov`] + [`distribute`].
//! 2. **ALOI color histograms** (Section 6) — 12,000 images of ~1000
//!    objects under varying angle/illumination, represented as color
//!    histograms. The real dataset is not redistributable here, so
//!    [`aloi`] generates a statistically equivalent substitute: object
//!    classes with smooth view-dependent variation (see DESIGN.md,
//!    substitution #1).
//!
//! [`skewed`] adds the deliberately skewed few-cluster datasets of
//! Section 5.3 (Figure 9), and [`images`] closes the photo-sharing loop:
//! synthetic raster images whose Hyper-M features come straight from the
//! 2-D wavelet pyramid (the JPEG2000 connection the paper cites).
//! [`zipf`] skews the *query* side: a seeded Zipf-ranked query-centre
//! generator for the hot-spot load experiments (`hyperm-load`).
//!
//! Every generator takes an explicit seed and is bit-for-bit reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aloi;
pub mod distribute;
pub mod images;
pub mod markov;
pub mod skewed;
pub mod zipf;

pub use aloi::{generate_aloi_like, AloiConfig};
pub use distribute::{distribute_by_clusters, DistributeConfig};
pub use images::{generate_image_features, generate_images, wavelet_features, ImageConfig};
pub use markov::{generate_markov, MarkovConfig};
pub use skewed::{generate_skewed, SkewedConfig};
pub use zipf::{ZipfConfig, ZipfWorkload};

use hyperm_cluster::Dataset;

/// A dataset with per-row class labels (which generator class produced the
/// row) — used for diagnostics; retrieval ground truth in the experiments
/// always comes from exact flat scans, as in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// The feature vectors.
    pub data: Dataset,
    /// Generator class of each row.
    pub labels: Vec<u32>,
}

impl LabeledDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}
