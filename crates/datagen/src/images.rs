//! Synthetic raster images + wavelet feature extraction.
//!
//! Closes the loop the paper sketches: devices hold *photos*, codecs
//! already wavelet-transform them, and Hyper-M indexes feature vectors
//! derived from that domain. Each image class is a parametric pattern
//! (oriented stripes, radial blobs, gradients or checkers); views jitter
//! phase, brightness and noise. [`wavelet_features`] then produces the
//! power-of-two feature vector Hyper-M ingests: the flattened coarse LL
//! band of a 2-D Haar pyramid, L1-normalised.

use crate::LabeledDataset;
use hyperm_cluster::Dataset;
use hyperm_wavelet::{dwt2_pyramid, Image, Normalization};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic photo generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageConfig {
    /// Number of picture classes (distinct "subjects").
    pub classes: usize,
    /// Photos per class.
    pub images_per_class: usize,
    /// Square image side (power of two, ≥ 8).
    pub size: usize,
    /// View jitter magnitude (0 = identical shots).
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImageConfig {
    fn default() -> Self {
        Self {
            classes: 20,
            images_per_class: 30,
            size: 32,
            jitter: 0.2,
            seed: 0,
        }
    }
}

#[derive(Clone, Copy)]
enum Pattern {
    Stripes { angle: f64, freq: f64 },
    Blob { cx: f64, cy: f64, sigma: f64 },
    Gradient { angle: f64 },
    Checker { cells: f64 },
}

/// Generate labelled photos.
pub fn generate_images(config: &ImageConfig) -> Vec<(u32, Image)> {
    assert!(
        config.size.is_power_of_two() && config.size >= 8,
        "size must be a power of two >= 8"
    );
    assert!(
        config.classes > 0 && config.images_per_class > 0,
        "empty request"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.classes * config.images_per_class);
    for class in 0..config.classes {
        let pattern = match class % 4 {
            0 => Pattern::Stripes {
                angle: rng.gen_range(0.0..std::f64::consts::PI),
                freq: rng.gen_range(2.0..8.0),
            },
            1 => Pattern::Blob {
                cx: rng.gen_range(0.25..0.75),
                cy: rng.gen_range(0.25..0.75),
                sigma: rng.gen_range(0.1..0.3),
            },
            2 => Pattern::Gradient {
                angle: rng.gen_range(0.0..std::f64::consts::TAU),
            },
            _ => Pattern::Checker {
                cells: rng.gen_range(2.0f64..6.0).round(),
            },
        };
        for _ in 0..config.images_per_class {
            out.push((
                class as u32,
                render(pattern, config.size, config.jitter, &mut rng),
            ));
        }
    }
    out
}

fn render(pattern: Pattern, size: usize, jitter: f64, rng: &mut StdRng) -> Image {
    let phase: f64 = rng.gen_range(-1.0..1.0) * jitter;
    let gain = 1.0 + rng.gen_range(-0.5..0.5) * jitter;
    let mut data = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            let u = x as f64 / size as f64;
            let v = y as f64 / size as f64;
            let base = match pattern {
                Pattern::Stripes { angle, freq } => {
                    let t = u * angle.cos() + v * angle.sin();
                    0.5 + 0.5 * (std::f64::consts::TAU * freq * (t + phase)).sin()
                }
                Pattern::Blob { cx, cy, sigma } => {
                    let dx = u - cx - phase * 0.2;
                    let dy = v - cy + phase * 0.2;
                    (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
                }
                Pattern::Gradient { angle } => {
                    (u * angle.cos() + v * angle.sin() + phase).rem_euclid(1.0)
                }
                Pattern::Checker { cells } => {
                    let cx = ((u + phase) * cells).floor() as i64;
                    let cy = (v * cells).floor() as i64;
                    if (cx + cy) % 2 == 0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            let noise = rng.gen_range(-0.5..0.5) * jitter * 0.3;
            data.push(((base * gain) + noise).clamp(0.0, 1.0));
        }
    }
    Image::from_flat(data, size, size)
}

/// Extract a power-of-two feature vector: the flattened LL band after
/// `levels` 2-D Haar steps, L1-normalised.
///
/// A `size`-pixel image with `levels` steps yields `(size/2^levels)²`
/// features — e.g. 32×32 with 2 levels → 64-d, matching the histogram
/// workloads.
pub fn wavelet_features(img: &Image, levels: usize) -> Vec<f64> {
    let (ll, _) = dwt2_pyramid(img, levels, Normalization::PaperAverage);
    let mut f: Vec<f64> = ll.as_flat().to_vec();
    let sum: f64 = f.iter().map(|x| x.abs()).sum();
    if sum > 0.0 {
        for x in f.iter_mut() {
            *x /= sum;
        }
    }
    f
}

/// Full pipeline: photos → features → labelled dataset.
pub fn generate_image_features(config: &ImageConfig, levels: usize) -> LabeledDataset {
    let photos = generate_images(config);
    let dim = (config.size >> levels).pow(2);
    assert!(dim >= 1, "too many pyramid levels for this image size");
    let mut data = Dataset::with_capacity(dim, photos.len());
    let mut labels = Vec::with_capacity(photos.len());
    for (class, img) in &photos {
        data.push_row(&wavelet_features(img, levels));
        labels.push(*class);
    }
    LabeledDataset { data, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_shape() {
        let cfg = ImageConfig {
            classes: 4,
            images_per_class: 5,
            size: 16,
            jitter: 0.2,
            seed: 1,
        };
        let photos = generate_images(&cfg);
        assert_eq!(photos.len(), 20);
        assert_eq!(photos[0].1.width(), 16);
        for (_, img) in &photos {
            assert!(img.as_flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn features_have_power_of_two_dim() {
        let cfg = ImageConfig {
            classes: 2,
            images_per_class: 3,
            size: 32,
            jitter: 0.1,
            seed: 2,
        };
        let feats = generate_image_features(&cfg, 2);
        assert_eq!(feats.data.dim(), 64);
        assert_eq!(feats.len(), 6);
        for row in feats.data.rows() {
            let sum: f64 = row.iter().map(|x| x.abs()).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn within_class_features_tighter_than_between() {
        let cfg = ImageConfig {
            classes: 8,
            images_per_class: 10,
            size: 32,
            jitter: 0.15,
            seed: 3,
        };
        let feats = generate_image_features(&cfg, 2);
        let d = |i: usize, j: usize| -> f64 {
            feats
                .data
                .row(i)
                .iter()
                .zip(feats.data.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut pairs = 0;
        for c in 0..7 {
            for v in 0..9 {
                within += d(c * 10 + v, c * 10 + v + 1);
                cross += d(c * 10 + v, (c + 1) * 10 + v);
                pairs += 1;
            }
        }
        assert!(
            within / pairs as f64 * 1.5 < cross / pairs as f64,
            "classes not separable in feature space: within {within}, cross {cross}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ImageConfig {
            classes: 2,
            images_per_class: 2,
            size: 16,
            jitter: 0.3,
            seed: 7,
        };
        assert_eq!(
            generate_image_features(&cfg, 1),
            generate_image_features(&cfg, 1)
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        generate_images(&ImageConfig {
            size: 20,
            ..Default::default()
        });
    }
}
