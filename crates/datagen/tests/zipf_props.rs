//! Property-based tests for the Zipf query workload: every drawn centre
//! stays inside the configured (clamped) key domain, the rank stream is a
//! pure function of the seed, and the pmf is a valid distribution for any
//! skew exponent.

use hyperm_datagen::{ZipfConfig, ZipfWorkload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drawn centres always land in `[lo, hi]^dim`, for any domain, skew
    /// and seed — the clamped key domain the overlays expect.
    #[test]
    fn centers_in_clamped_domain(
        ranks in 1usize..80,
        s in 0.0..2.5f64,
        dim in 1usize..12,
        lo in -2.0..1.0f64,
        width in 0.01..3.0f64,
        seed in any::<u64>(),
        draws in 1usize..64,
    ) {
        let cfg = ZipfConfig { ranks, s, dim, lo, hi: lo + width, seed };
        let mut w = ZipfWorkload::generate(&cfg);
        for _ in 0..draws {
            let c = w.next_center();
            prop_assert_eq!(c.len(), dim);
            for &x in &c {
                prop_assert!((cfg.lo..=cfg.hi).contains(&x), "{x} outside [{}, {}]", cfg.lo, cfg.hi);
            }
        }
    }

    /// The rank stream is deterministic in the seed and always in range.
    #[test]
    fn rank_stream_is_seed_deterministic(
        ranks in 1usize..60,
        s in 0.0..2.0f64,
        seed in any::<u64>(),
    ) {
        let cfg = ZipfConfig { ranks, s, dim: 4, lo: 0.0, hi: 1.0, seed };
        let mut a = ZipfWorkload::generate(&cfg);
        let mut b = ZipfWorkload::generate(&cfg);
        let ra = a.ranks_iter(128);
        let rb = b.ranks_iter(128);
        prop_assert_eq!(&ra, &rb);
        prop_assert!(ra.iter().all(|&r| r < ranks));
    }

    /// The pmf is non-negative, non-increasing in rank, and sums to 1.
    #[test]
    fn pmf_is_a_distribution(ranks in 1usize..100, s in 0.0..3.0f64) {
        let cfg = ZipfConfig { ranks, s, dim: 2, lo: 0.0, hi: 1.0, seed: 0 };
        let w = ZipfWorkload::generate(&cfg);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for r in 0..w.ranks() {
            let p = w.pmf(r);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= prev + 1e-15);
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
