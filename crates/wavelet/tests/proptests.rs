//! Property-based tests for the wavelet invariants Hyper-M relies on.

use hyperm_wavelet::{
    d4_decompose, d4_reconstruct, decompose, reconstruct, scaled_radius, Normalization, Subspace,
};
use proptest::prelude::*;

/// Strategy: a vector whose length is a power of two in [4, 128].
fn pow2_vec() -> impl Strategy<Value = Vec<f64>> {
    (2u32..=7).prop_flat_map(|log| prop::collection::vec(-100.0..100.0f64, 1usize << log))
}

proptest! {
    /// decompose ∘ reconstruct is the identity (both conventions).
    #[test]
    fn haar_roundtrip(v in pow2_vec(), ortho in any::<bool>()) {
        let norm = if ortho { Normalization::Orthonormal } else { Normalization::PaperAverage };
        let dec = decompose(&v, norm).unwrap();
        let back = reconstruct(&dec);
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// Orthonormal Haar preserves squared norm exactly.
    #[test]
    fn orthonormal_parseval(v in pow2_vec()) {
        let dec = decompose(&v, Normalization::Orthonormal).unwrap();
        let e_in: f64 = v.iter().map(|x| x * x).sum();
        let mut e_out: f64 = dec.approx().iter().map(|x| x * x).sum();
        for s in Subspace::all(v.len()).into_iter().skip(1) {
            e_out += dec.subspace(s).unwrap().iter().map(|x| x * x).sum::<f64>();
        }
        prop_assert!((e_in - e_out).abs() < 1e-7 * (1.0 + e_in), "{e_in} vs {e_out}");
    }

    /// Theorem 3.1 as a property: for any two points, their subspace
    /// distance is at most their original distance divided by the
    /// contraction factor.
    #[test]
    fn theorem_3_1_distance_contraction(
        v in pow2_vec(),
        jitter in prop::collection::vec(-1.0..1.0f64, 128),
    ) {
        let dim = v.len();
        let w: Vec<f64> = v.iter().zip(&jitter).map(|(x, j)| x + j).collect();
        let r: f64 = v.iter().zip(&w).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let dv = decompose(&v, Normalization::PaperAverage).unwrap();
        let dw = decompose(&w, Normalization::PaperAverage).unwrap();
        for s in Subspace::all(dim) {
            let a = dv.subspace(s).unwrap();
            let b = dw.subspace(s).unwrap();
            let d: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            let bound = scaled_radius(r, dim, s, Normalization::PaperAverage);
            prop_assert!(d <= bound + 1e-9, "subspace {s:?}: {d} > {bound}");
        }
    }

    /// Subspace dimensions tile the original dimension.
    #[test]
    fn subspaces_tile_dimension(log in 0u32..10) {
        let dim = 1usize << log;
        let total: usize = Subspace::all(dim).iter().map(|s| s.dim()).sum();
        prop_assert_eq!(total, dim);
    }

    /// D4 roundtrips for any power-of-two input of length >= 4.
    #[test]
    fn d4_roundtrip(v in pow2_vec()) {
        let (a, details) = d4_decompose(&v);
        let back = d4_reconstruct(&a, &details);
        for (x, y) in v.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    /// D4 is norm-preserving level by level.
    #[test]
    fn d4_parseval(v in pow2_vec()) {
        let (a, details) = d4_decompose(&v);
        let e_in: f64 = v.iter().map(|x| x * x).sum();
        let e_out: f64 = a.iter().map(|x| x * x).sum::<f64>()
            + details.iter().flatten().map(|x| x * x).sum::<f64>();
        prop_assert!((e_in - e_out).abs() < 1e-7 * (1.0 + e_in));
    }
}
