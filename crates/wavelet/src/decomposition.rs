//! Multi-resolution Haar decomposition and the subspace addressing scheme.
//!
//! A `d`-dimensional vector (`d = 2^L`) decomposes into:
//!
//! ```text
//! level:   A      D_0    D_1    D_2   …   D_{L−1}
//! dim:     1      1      2      4    …    d/2
//! ```
//!
//! matching the paper's Figure 1 and Table 1: "the dimensionality of the
//! data at each level `l` is `2^l`". The approximation `A` and the first
//! detail `D_0` both live in 1-d spaces but are *different* projections of
//! the data. "Hyper-M used four layers of network overlay" means publishing
//! the subspaces `{A, D_0, D_1, D_2}`.

use crate::haar::{haar_inverse_step, haar_step, Normalization};

/// Errors produced by the decomposition routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveletError {
    /// Input length is not a power of two (or is zero).
    NotPowerOfTwo(usize),
    /// A subspace index beyond the decomposition depth was requested.
    NoSuchSubspace {
        /// The requested subspace.
        requested: Subspace,
        /// Dimensionality of the decomposed vector.
        dim: usize,
    },
}

impl std::fmt::Display for WaveletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveletError::NotPowerOfTwo(n) => {
                write!(f, "vector length {n} is not a positive power of two")
            }
            WaveletError::NoSuchSubspace { requested, dim } => {
                write!(
                    f,
                    "subspace {requested:?} does not exist for dimension {dim}"
                )
            }
        }
    }
}

impl std::error::Error for WaveletError {}

/// Address of one wavelet subspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subspace {
    /// The final approximation `A` (dimension 1).
    Approx,
    /// The detail space `D_l` (dimension `2^l`).
    Detail(u32),
}

impl Subspace {
    /// Dimensionality of this subspace.
    pub fn dim(self) -> usize {
        match self {
            Subspace::Approx => 1,
            Subspace::Detail(l) => 1usize << l,
        }
    }

    /// The ordered list of subspaces Hyper-M publishes when configured with
    /// `levels` overlay layers: `[A]`, `[A, D_0]`, `[A, D_0, D_1]`, …
    pub fn first(levels: usize) -> Vec<Subspace> {
        assert!(levels >= 1, "at least one level required");
        let mut out = Vec::with_capacity(levels);
        out.push(Subspace::Approx);
        for l in 0..levels.saturating_sub(1) {
            out.push(Subspace::Detail(l as u32));
        }
        out
    }

    /// All subspaces of a full decomposition of a `dim`-dimensional vector,
    /// coarse to fine.
    pub fn all(dim: usize) -> Vec<Subspace> {
        let depth = dim.trailing_zeros();
        Self::first(depth as usize + 1)
    }
}

/// A full multi-resolution Haar decomposition of one vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    dim: usize,
    norm: Normalization,
    /// Final approximation, length 1.
    approx: Vec<f64>,
    /// `details[l]` is `D_l`, length `2^l`.
    details: Vec<Vec<f64>>,
}

impl Decomposition {
    /// Dimensionality of the original vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Normalisation convention used.
    pub fn normalization(&self) -> Normalization {
        self.norm
    }

    /// Number of detail levels (`log₂ dim`).
    pub fn depth(&self) -> usize {
        self.details.len()
    }

    /// Coefficients of one subspace.
    pub fn subspace(&self, s: Subspace) -> Result<&[f64], WaveletError> {
        match s {
            Subspace::Approx => Ok(&self.approx),
            Subspace::Detail(l) => self.details.get(l as usize).map(Vec::as_slice).ok_or(
                WaveletError::NoSuchSubspace {
                    requested: s,
                    dim: self.dim,
                },
            ),
        }
    }

    /// Convenience: the approximation coefficient (scalar for full depth).
    pub fn approx(&self) -> &[f64] {
        &self.approx
    }
}

/// Fully decompose `v` (power-of-two length) down to a length-1
/// approximation.
pub fn decompose(v: &[f64], norm: Normalization) -> Result<Decomposition, WaveletError> {
    let dim = v.len();
    if dim == 0 || !dim.is_power_of_two() {
        return Err(WaveletError::NotPowerOfTwo(dim));
    }
    let depth = dim.trailing_zeros() as usize;
    let mut details: Vec<Vec<f64>> = (0..depth).map(|_| Vec::new()).collect();
    let mut current = v.to_vec();
    // Each step halves `current`; the detail of the step that produces a
    // length-m approximation is D_{log2 m}.
    for level in (0..depth).rev() {
        let mut next = Vec::new();
        haar_step(&current, norm, &mut next, &mut details[level]);
        current = next;
    }
    Ok(Decomposition {
        dim,
        norm,
        approx: current,
        details,
    })
}

/// Exact inverse of [`decompose`].
pub fn reconstruct(dec: &Decomposition) -> Vec<f64> {
    let mut current = dec.approx.clone();
    for detail in &dec.details {
        current = haar_inverse_step(&current, detail, dec.norm);
    }
    current
}

/// Lossy reconstruction from only the first `levels` subspaces
/// (`A, D_0, …, D_{levels−2}`); the remaining detail coefficients are
/// treated as zero. This is the approximation a Hyper-M node could rebuild
/// from the published summaries alone.
pub fn reconstruct_partial(dec: &Decomposition, levels: usize) -> Vec<f64> {
    assert!(levels >= 1, "need at least the approximation level");
    let mut current = dec.approx.clone();
    for (l, detail) in dec.details.iter().enumerate() {
        if l + 2 <= levels {
            current = haar_inverse_step(current.as_slice(), detail, dec.norm);
        } else {
            let zeros = vec![0.0; current.len()];
            current = haar_inverse_step(current.as_slice(), &zeros, dec.norm);
        }
    }
    current
}

/// Zero-pad `v` up to the next power of two (identity if already one).
///
/// Hyper-M requires power-of-two dimensionality; the paper's datasets
/// (512-d Markov vectors, 64-bin histograms) already satisfy it, this is for
/// arbitrary user data.
pub fn pad_to_power_of_two(v: &[f64]) -> Vec<f64> {
    let n = v.len().max(1);
    let target = n.next_power_of_two();
    let mut out = Vec::with_capacity(target);
    out.extend_from_slice(v);
    out.resize(target, 0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_all(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn subspace_dims() {
        assert_eq!(Subspace::Approx.dim(), 1);
        assert_eq!(Subspace::Detail(0).dim(), 1);
        assert_eq!(Subspace::Detail(3).dim(), 8);
    }

    #[test]
    fn first_subspaces_match_paper_layers() {
        assert_eq!(Subspace::first(1), vec![Subspace::Approx]);
        assert_eq!(
            Subspace::first(4),
            vec![
                Subspace::Approx,
                Subspace::Detail(0),
                Subspace::Detail(1),
                Subspace::Detail(2)
            ]
        );
    }

    #[test]
    fn all_subspaces_cover_dimension() {
        let subs = Subspace::all(16);
        let total: usize = subs.iter().map(|s| s.dim()).sum();
        assert_eq!(total, 16);
        assert_eq!(subs.len(), 5); // A, D0..D3
    }

    #[test]
    fn known_decomposition_paper_convention() {
        // v = [9, 7, 3, 5] — classic Haar example.
        let dec = decompose(&[9.0, 7.0, 3.0, 5.0], Normalization::PaperAverage).unwrap();
        assert_eq!(dec.approx(), &[6.0]);
        assert_eq!(dec.subspace(Subspace::Detail(0)).unwrap(), &[2.0]); // (8−4)/2
        assert_eq!(dec.subspace(Subspace::Detail(1)).unwrap(), &[1.0, -1.0]);
    }

    #[test]
    fn roundtrip_both_conventions() {
        let v: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        for norm in [Normalization::PaperAverage, Normalization::Orthonormal] {
            let dec = decompose(&v, norm).unwrap();
            close_all(&reconstruct(&dec), &v, 1e-10);
        }
    }

    #[test]
    fn orthonormal_preserves_energy_across_all_levels() {
        let v: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin()).collect();
        let dec = decompose(&v, Normalization::Orthonormal).unwrap();
        let e_in: f64 = v.iter().map(|x| x * x).sum();
        let mut e_out: f64 = dec.approx().iter().map(|x| x * x).sum();
        for s in Subspace::all(32).into_iter().skip(1) {
            e_out += dec.subspace(s).unwrap().iter().map(|x| x * x).sum::<f64>();
        }
        assert!((e_in - e_out).abs() < 1e-10);
    }

    #[test]
    fn paper_convention_weighted_parseval() {
        // With a = (x₁+x₂)/2 each level scales energy by ½ per coefficient
        // pair: ‖v‖² = Σ_s 2^{steps(s)} ‖coef_s‖² where steps(s) is the
        // number of transform steps applied to reach subspace s.
        let v: Vec<f64> = (0..16).map(|i| (i as f64).sqrt() - 1.5).collect();
        let d = v.len();
        let dec = decompose(&v, Normalization::PaperAverage).unwrap();
        let e_in: f64 = v.iter().map(|x| x * x).sum();
        let mut e_out = 0.0;
        for s in Subspace::all(d) {
            let coefs = dec.subspace(s).unwrap();
            let steps = (d / s.dim()).trailing_zeros();
            e_out += 2f64.powi(steps as i32) * coefs.iter().map(|x| x * x).sum::<f64>();
        }
        assert!((e_in - e_out).abs() < 1e-10, "{e_in} vs {e_out}");
    }

    #[test]
    fn approx_of_constant_vector_is_the_constant() {
        let dec = decompose(&[3.5; 128], Normalization::PaperAverage).unwrap();
        assert!((dec.approx()[0] - 3.5).abs() < 1e-12);
        for s in Subspace::all(128).into_iter().skip(1) {
            for &c in dec.subspace(s).unwrap() {
                assert_eq!(c, 0.0);
            }
        }
    }

    #[test]
    fn partial_reconstruction_improves_with_levels() {
        let v: Vec<f64> = (0..64)
            .map(|i| ((i as f64) / 7.0).sin() * 3.0 + 0.1 * i as f64)
            .collect();
        let dec = decompose(&v, Normalization::PaperAverage).unwrap();
        let mut prev_err = f64::INFINITY;
        for levels in 1..=7 {
            let approx = reconstruct_partial(&dec, levels);
            let err: f64 = approx.iter().zip(&v).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(err <= prev_err + 1e-9, "error grew at {levels} levels");
            prev_err = err;
        }
        // Full depth (log2(64)+1 = 7 levels) is exact.
        assert!(prev_err < 1e-18);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            decompose(&[1.0, 2.0, 3.0], Normalization::PaperAverage).unwrap_err(),
            WaveletError::NotPowerOfTwo(3)
        );
        assert_eq!(
            decompose(&[], Normalization::PaperAverage).unwrap_err(),
            WaveletError::NotPowerOfTwo(0)
        );
    }

    #[test]
    fn missing_subspace_is_an_error() {
        let dec = decompose(&[1.0, 2.0], Normalization::PaperAverage).unwrap();
        assert!(dec.subspace(Subspace::Detail(5)).is_err());
    }

    #[test]
    fn padding() {
        assert_eq!(
            pad_to_power_of_two(&[1.0, 2.0, 3.0]),
            vec![1.0, 2.0, 3.0, 0.0]
        );
        assert_eq!(pad_to_power_of_two(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(pad_to_power_of_two(&[]), vec![0.0]);
    }

    #[test]
    fn decomposition_is_linear() {
        let a: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64).collect();
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x - 3.0 * y).collect();
        let da = decompose(&a, Normalization::PaperAverage).unwrap();
        let db = decompose(&b, Normalization::PaperAverage).unwrap();
        let dc = decompose(&combo, Normalization::PaperAverage).unwrap();
        for s in Subspace::all(16) {
            let ca = da.subspace(s).unwrap();
            let cb = db.subspace(s).unwrap();
            let cc = dc.subspace(s).unwrap();
            for i in 0..ca.len() {
                assert!((cc[i] - (2.0 * ca[i] - 3.0 * cb[i])).abs() < 1e-10);
            }
        }
    }
}
