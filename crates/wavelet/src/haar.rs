//! Single-level Haar transform steps.
//!
//! The paper states all of its theory (Theorem 3.1 in particular) for the
//! *average/difference* Haar: `a = (x₁+x₂)/2`, `d = (x₁−x₂)/2` — under which
//! a sphere of radius `r` contracts by `1/√2` per level. The orthonormal
//! variant (`÷√2` instead of `÷2`) is norm-preserving and is provided for
//! ablation studies; the rest of the workspace adjusts its radius math
//! through [`crate::theory::radius_contraction`].

/// Which Haar normalisation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Normalization {
    /// `a = (x₁+x₂)/2`, `d = (x₁−x₂)/2` — the paper's convention.
    /// Per-level operator norm `1/√2` (spheres shrink).
    #[default]
    PaperAverage,
    /// `a = (x₁+x₂)/√2`, `d = (x₁−x₂)/√2` — energy preserving.
    /// Per-level operator norm `1` (spheres keep their radius).
    Orthonormal,
}

impl Normalization {
    /// The divisor applied to the sum/difference of a coordinate pair.
    #[inline]
    pub fn divisor(self) -> f64 {
        match self {
            Normalization::PaperAverage => 2.0,
            Normalization::Orthonormal => std::f64::consts::SQRT_2,
        }
    }

    /// Contraction factor of one transform level: the operator norm of the
    /// pairwise map restricted to either output half.
    #[inline]
    pub fn level_contraction(self) -> f64 {
        match self {
            Normalization::PaperAverage => std::f64::consts::SQRT_2,
            Normalization::Orthonormal => 1.0,
        }
    }
}

/// One Haar analysis step: split `input` (even length) into approximation
/// and detail halves, appended to `approx`/`detail`.
///
/// Writing into caller-provided buffers keeps the multi-level decomposition
/// allocation-free beyond its output vectors.
pub fn haar_step(input: &[f64], norm: Normalization, approx: &mut Vec<f64>, detail: &mut Vec<f64>) {
    assert!(
        input.len() >= 2 && input.len().is_multiple_of(2),
        "haar_step needs even length >= 2, got {}",
        input.len()
    );
    let div = norm.divisor();
    approx.reserve(input.len() / 2);
    detail.reserve(input.len() / 2);
    for pair in input.chunks_exact(2) {
        approx.push((pair[0] + pair[1]) / div);
        detail.push((pair[0] - pair[1]) / div);
    }
}

/// One Haar synthesis step: merge approximation and detail halves back into
/// the signal they came from.
pub fn haar_inverse_step(approx: &[f64], detail: &[f64], norm: Normalization) -> Vec<f64> {
    assert_eq!(approx.len(), detail.len(), "approx/detail length mismatch");
    let mut out = Vec::with_capacity(approx.len() * 2);
    match norm {
        Normalization::PaperAverage => {
            // x₁ = a + d, x₂ = a − d.
            for (a, d) in approx.iter().zip(detail) {
                out.push(a + d);
                out.push(a - d);
            }
        }
        Normalization::Orthonormal => {
            // x₁ = (a + d)/√2, x₂ = (a − d)/√2.
            let s = std::f64::consts::SQRT_2;
            for (a, d) in approx.iter().zip(detail) {
                out.push((a + d) / s);
                out.push((a - d) / s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_average_step() {
        let mut a = Vec::new();
        let mut d = Vec::new();
        haar_step(
            &[1.0, 3.0, 10.0, 4.0],
            Normalization::PaperAverage,
            &mut a,
            &mut d,
        );
        assert_eq!(a, vec![2.0, 7.0]);
        assert_eq!(d, vec![-1.0, 3.0]);
    }

    #[test]
    fn orthonormal_step_preserves_energy() {
        let input = [1.0, 3.0, 10.0, 4.0, -2.0, 0.5, 7.0, 7.0];
        let mut a = Vec::new();
        let mut d = Vec::new();
        haar_step(&input, Normalization::Orthonormal, &mut a, &mut d);
        let e_in: f64 = input.iter().map(|x| x * x).sum();
        let e_out: f64 = a.iter().chain(&d).map(|x| x * x).sum();
        assert!((e_in - e_out).abs() < 1e-12);
    }

    #[test]
    fn steps_roundtrip() {
        let input = [0.5, -1.5, 3.25, 8.0, 2.0, 2.0, -4.0, 1.0];
        for norm in [Normalization::PaperAverage, Normalization::Orthonormal] {
            let mut a = Vec::new();
            let mut d = Vec::new();
            haar_step(&input, norm, &mut a, &mut d);
            let back = haar_inverse_step(&a, &d, norm);
            for (x, y) in input.iter().zip(&back) {
                assert!((x - y).abs() < 1e-12, "{norm:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let mut a = Vec::new();
        let mut d = Vec::new();
        haar_step(&[5.0; 8], Normalization::PaperAverage, &mut a, &mut d);
        assert_eq!(a, vec![5.0; 4]);
        assert_eq!(d, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_rejected() {
        let mut a = Vec::new();
        let mut d = Vec::new();
        haar_step(
            &[1.0, 2.0, 3.0],
            Normalization::PaperAverage,
            &mut a,
            &mut d,
        );
    }

    #[test]
    fn appends_to_existing_buffers() {
        let mut a = vec![9.0];
        let mut d = vec![-9.0];
        haar_step(&[2.0, 4.0], Normalization::PaperAverage, &mut a, &mut d);
        assert_eq!(a, vec![9.0, 3.0]);
        assert_eq!(d, vec![-9.0, -1.0]);
    }
}
