//! Daubechies-4 wavelet transform with periodic boundary handling.
//!
//! The paper proves Theorem 3.1 for Haar "due to ease of proof" and notes
//! that "similar, though more laborious proofs can be done for other
//! wavelets". D4 is the smallest Daubechies wavelet with a vanishing moment
//! beyond the mean (it annihilates linear trends), making it the natural
//! second family for the ablation benches.
//!
//! The filter is orthonormal, so the per-level sphere contraction factor is
//! exactly 1 — the same radius law as orthonormal Haar.

/// Daubechies-4 low-pass (scaling) filter coefficients.
const H: [f64; 4] = [
    0.482_962_913_144_690_2,   // (1+√3)/(4√2)
    0.836_516_303_737_469,     // (3+√3)/(4√2)
    0.224_143_868_042_013_4,   // (3−√3)/(4√2)
    -0.129_409_522_550_921_44, // (1−√3)/(4√2)
];

/// High-pass (wavelet) filter: `g_k = (−1)^k h_{3−k}`.
const G: [f64; 4] = [H[3], -H[2], H[1], -H[0]];

/// One D4 analysis step over a periodic signal of even length `n ≥ 4`:
/// returns `(approximation, detail)` of length `n/2` each.
pub fn d4_step(input: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = input.len();
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "d4_step needs even length >= 4, got {n}"
    );
    let half = n / 2;
    let mut approx = Vec::with_capacity(half);
    let mut detail = Vec::with_capacity(half);
    for i in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for k in 0..4 {
            let idx = (2 * i + k) % n;
            a += H[k] * input[idx];
            d += G[k] * input[idx];
        }
        approx.push(a);
        detail.push(d);
    }
    (approx, detail)
}

/// Inverse of [`d4_step`].
pub fn d4_inverse_step(approx: &[f64], detail: &[f64]) -> Vec<f64> {
    assert_eq!(approx.len(), detail.len(), "approx/detail length mismatch");
    let half = approx.len();
    let n = half * 2;
    assert!(n >= 4, "d4_inverse_step needs output length >= 4");
    let mut out = vec![0.0; n];
    // Transpose of the (orthogonal) analysis operator.
    for i in 0..half {
        for k in 0..4 {
            let idx = (2 * i + k) % n;
            out[idx] += H[k] * approx[i] + G[k] * detail[i];
        }
    }
    out
}

/// Multi-level D4 decomposition: repeatedly split the approximation until
/// its length drops below 4 (D4 cannot go all the way to length 1 with this
/// periodic scheme). Returns `(final_approx, details)` with `details[0]`
/// the *coarsest* detail, matching [`crate::decomposition::Decomposition`]
/// ordering.
pub fn d4_decompose(v: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert!(
        v.len().is_power_of_two() && v.len() >= 4,
        "need power-of-two length >= 4"
    );
    let mut current = v.to_vec();
    let mut details_fine_to_coarse = Vec::new();
    while current.len() >= 4 {
        let (a, d) = d4_step(&current);
        details_fine_to_coarse.push(d);
        current = a;
    }
    details_fine_to_coarse.reverse();
    (current, details_fine_to_coarse)
}

/// Inverse of [`d4_decompose`].
pub fn d4_reconstruct(approx: &[f64], details: &[Vec<f64>]) -> Vec<f64> {
    let mut current = approx.to_vec();
    for d in details {
        current = d4_inverse_step(&current, d);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_all(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?}\nvs\n{b:?}");
        }
    }

    #[test]
    fn filter_is_orthonormal() {
        let h_norm: f64 = H.iter().map(|x| x * x).sum();
        assert!((h_norm - 1.0).abs() < 1e-12);
        // Double-shift orthogonality: Σ h_k h_{k+2} = 0.
        let shift: f64 = H[0] * H[2] + H[1] * H[3];
        assert!(shift.abs() < 1e-12);
        // h ⟂ g.
        let dot: f64 = H.iter().zip(&G).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-12);
    }

    #[test]
    fn step_roundtrip() {
        let v: Vec<f64> = (0..16).map(|i| ((i * 13) % 7) as f64 - 2.0).collect();
        let (a, d) = d4_step(&v);
        close_all(&d4_inverse_step(&a, &d), &v, 1e-10);
    }

    #[test]
    fn step_preserves_energy() {
        let v: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).cos()).collect();
        let (a, d) = d4_step(&v);
        let e_in: f64 = v.iter().map(|x| x * x).sum();
        let e_out: f64 = a.iter().chain(&d).map(|x| x * x).sum();
        assert!((e_in - e_out).abs() < 1e-10);
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let (_, d) = d4_step(&[2.0; 16]);
        for x in d {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn linear_trend_has_zero_detail() {
        // D4 has two vanishing moments; a periodic signal is only linear
        // away from the wrap-around, so check interior coefficients.
        let v: Vec<f64> = (0..32).map(|i| 3.0 + 0.5 * i as f64).collect();
        let (_, d) = d4_step(&v);
        for &x in &d[..d.len() - 2] {
            assert!(x.abs() < 1e-10, "interior detail {x}");
        }
    }

    #[test]
    fn full_decomposition_roundtrip() {
        let v: Vec<f64> = (0..64).map(|i| ((i * i) % 17) as f64 * 0.25).collect();
        let (a, details) = d4_decompose(&v);
        assert_eq!(a.len(), 2); // stops below length 4
        assert_eq!(details.len(), 5); // 64→32→16→8→4→2
        close_all(&d4_reconstruct(&a, &details), &v, 1e-10);
    }

    #[test]
    #[should_panic(expected = "even length >= 4")]
    fn short_input_rejected() {
        d4_step(&[1.0, 2.0]);
    }
}
