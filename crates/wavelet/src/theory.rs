//! Theorem 3.1: sphere behaviour under the wavelet transform.
//!
//! *"All the points inside a sphere of radius `r` in the original vector
//! space will be mapped inside a sphere of radius `r/√(2^{log d − l})` in
//! the level-`l` approximation (or detail) space."*
//!
//! Equivalently: the linear map from the original `d`-space onto a subspace
//! of dimensionality `m` is a composition of `log₂(d/m)` pairwise
//! average/difference steps, each with operator norm `1/√2` in the paper's
//! convention — so the contraction divisor is `√(d/m)`. For the orthonormal
//! convention every step has operator norm 1 and radii are preserved.
//!
//! This factor is what lets a querying node translate an original-space
//! radius (`ε + r` in Theorem 4.1) into each overlay's subspace without any
//! global knowledge.

use crate::decomposition::Subspace;
use crate::haar::Normalization;

/// The divisor by which an original-space radius shrinks when projected
/// into `subspace` of a `dim`-dimensional decomposition.
///
/// `PaperAverage`: `√(dim / subspace.dim())` — Theorem 3.1.
/// `Orthonormal`: `1` (norm-preserving transform).
pub fn radius_contraction(dim: usize, subspace: Subspace, norm: Normalization) -> f64 {
    assert!(
        dim.is_power_of_two() && dim >= 1,
        "dim must be a power of two"
    );
    let m = subspace.dim();
    assert!(m <= dim, "subspace dim {m} exceeds data dim {dim}");
    match norm {
        Normalization::PaperAverage => (dim as f64 / m as f64).sqrt(),
        Normalization::Orthonormal => 1.0,
    }
}

/// Radius of the image of a radius-`r` sphere in `subspace`
/// (`r / radius_contraction`).
pub fn scaled_radius(r: f64, dim: usize, subspace: Subspace, norm: Normalization) -> f64 {
    assert!(r >= 0.0, "negative radius {r}");
    r / radius_contraction(dim, subspace, norm)
}

/// Theorem 4.1's reverse bound: a point within the per-level thresholds in
/// *every* subspace of a depth-`log₂ d` decomposition is within
/// `R·√(log₂ d + 1)` of the query in the original space.
pub fn reverse_bound(r_threshold: f64, dim: usize) -> f64 {
    assert!(
        dim.is_power_of_two() && dim >= 1,
        "dim must be a power of two"
    );
    let levels = dim.trailing_zeros() as f64;
    r_threshold * (levels + 1.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::decompose;

    #[test]
    fn contraction_factors_match_theorem() {
        // d = 512: A (dim 1) contracts by √512; D_8 (dim 256) by √2.
        let d = 512;
        assert!(
            (radius_contraction(d, Subspace::Approx, Normalization::PaperAverage)
                - (512f64).sqrt())
            .abs()
                < 1e-12
        );
        assert!(
            (radius_contraction(d, Subspace::Detail(8), Normalization::PaperAverage) - 2f64.sqrt())
                .abs()
                < 1e-12
        );
        assert!(
            (radius_contraction(d, Subspace::Detail(0), Normalization::PaperAverage)
                - (512f64).sqrt())
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn orthonormal_preserves_radius() {
        for s in [Subspace::Approx, Subspace::Detail(3)] {
            assert_eq!(radius_contraction(64, s, Normalization::Orthonormal), 1.0);
        }
    }

    #[test]
    fn scaled_radius_is_division() {
        let r = 3.0;
        let got = scaled_radius(r, 16, Subspace::Detail(1), Normalization::PaperAverage);
        assert!((got - 3.0 / (8f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn reverse_bound_matches_paper_example() {
        // The paper's worked example: d = 4 gives R√3 (log₂4 + 1 = 3).
        assert!((reverse_bound(1.0, 4) - 3f64.sqrt()).abs() < 1e-12);
        assert!((reverse_bound(2.0, 512) - 2.0 * 10f64.sqrt()).abs() < 1e-12);
    }

    /// Empirical verification of Theorem 3.1: random points inside a sphere
    /// stay inside the contracted sphere in every subspace.
    #[test]
    fn theorem_3_1_holds_empirically() {
        let dim = 64;
        let r = 2.5;
        // Deterministic pseudo-random centre and offsets (LCG, no rand dep).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
        };
        let centre: Vec<f64> = (0..dim).map(|_| next() * 10.0).collect();
        let dec_c = decompose(&centre, Normalization::PaperAverage).unwrap();
        for _ in 0..200 {
            // Random offset scaled to length ≤ r.
            let mut off: Vec<f64> = (0..dim).map(|_| next()).collect();
            let norm: f64 = off.iter().map(|x| x * x).sum::<f64>().sqrt();
            let target_len = r * 0.999 * next().abs();
            for x in off.iter_mut() {
                *x = *x / norm * target_len;
            }
            let point: Vec<f64> = centre.iter().zip(&off).map(|(c, o)| c + o).collect();
            let dec_p = decompose(&point, Normalization::PaperAverage).unwrap();
            for s in Subspace::all(dim) {
                let cs = dec_c.subspace(s).unwrap();
                let ps = dec_p.subspace(s).unwrap();
                let dist: f64 = cs
                    .iter()
                    .zip(ps)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let bound = scaled_radius(r, dim, s, Normalization::PaperAverage);
                assert!(
                    dist <= bound + 1e-9,
                    "subspace {s:?}: dist {dist} exceeds bound {bound}"
                );
            }
        }
    }

    /// The bound is *tight*: for the approximation subspace a constant
    /// offset achieves it exactly.
    #[test]
    fn theorem_3_1_bound_is_tight_for_approx() {
        let dim = 16;
        let r = 1.0;
        // Offset r/√d in every coordinate has norm exactly r and maps to an
        // approximation offset of r/√d · √(d)/d · d ... directly: the
        // approximation is the mean scaled by 1 (paper convention keeps the
        // mean), so |Δa| = r/√d = bound for dim-1 subspace.
        let centre = vec![0.0; dim];
        let point: Vec<f64> = vec![r / (dim as f64).sqrt(); dim];
        let dc = decompose(&centre, Normalization::PaperAverage).unwrap();
        let dp = decompose(&point, Normalization::PaperAverage).unwrap();
        let da = (dc.approx()[0] - dp.approx()[0]).abs();
        let bound = scaled_radius(r, dim, Subspace::Approx, Normalization::PaperAverage);
        assert!((da - bound).abs() < 1e-12, "da {da} bound {bound}");
    }
}
