//! Discrete wavelet transforms for Hyper-M (ICDE 2007).
//!
//! Hyper-M decomposes every high-dimensional feature vector with a
//! multi-resolution DWT (step *i1* of the paper's Figure 2) and then treats
//! each wavelet subspace — the final approximation `A` plus the detail
//! vectors `D_0, D_1, …` — as an independent, lower-dimensional vector space
//! that gets its own clustering and its own CAN overlay.
//!
//! * [`haar`] — the Haar transform in the paper's *average/difference*
//!   convention (`a = (x₁+x₂)/2`, the convention Theorem 3.1 is stated in)
//!   and in the orthonormal convention (`÷√2`), selectable via
//!   [`Normalization`];
//! * [`decomposition`] — full multi-resolution decomposition, the
//!   [`Subspace`] addressing scheme (`A`, `D_l`), reconstruction and partial
//!   reconstruction;
//! * [`daubechies`] — a Daubechies-4 transform with periodic boundary
//!   handling. The paper proves its results for Haar and notes "similar,
//!   though more laborious proofs can be done for other wavelets"; D4 is
//!   provided as that extension point and for ablation benches;
//! * [`cdf53`] — the biorthogonal CDF 5/3 (LeGall) lifting filter used by
//!   JPEG2000's lossless path, which the paper cites as the codec already
//!   running on the devices;
//! * [`image2d`] — separable 2-D Haar (LL/LH/HL/HH quadrants + pyramids)
//!   for deriving wavelet-domain features straight from raster images;
//! * [`theory`] — Theorem 3.1: the radius-contraction factor that maps a
//!   sphere of radius `r` in the original space into each subspace.
//!
//! Dimensions must be powers of two (the paper's datasets are 512-d and
//! 64-d); [`pad_to_power_of_two`] is provided for data that is not.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdf53;
pub mod daubechies;
pub mod decomposition;
pub mod haar;
pub mod image2d;
pub mod theory;

pub use cdf53::{cdf53_decompose, cdf53_frame_bounds, cdf53_reconstruct};
pub use daubechies::{d4_decompose, d4_reconstruct};
pub use decomposition::{
    decompose, pad_to_power_of_two, reconstruct, reconstruct_partial, Decomposition, Subspace,
    WaveletError,
};
pub use haar::{haar_inverse_step, haar_step, Normalization};
pub use image2d::{dwt2_pyramid, dwt2_pyramid_inverse, dwt2_step, Image};
pub use theory::{radius_contraction, scaled_radius};
