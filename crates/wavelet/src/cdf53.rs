//! CDF 5/3 (LeGall) biorthogonal wavelet via the lifting scheme.
//!
//! The paper motivates wavelets partly through image codecs: "for image
//! files, existing codecs already use the wavelet transform to compress
//! data \[JPEG2000\]". JPEG2000's lossless path uses exactly this filter, so
//! a Hyper-M device whose photos are already JPEG2000-coded could derive
//! its subspace coefficients straight from the codestream. The lifting
//! implementation is the standard two-step scheme with symmetric boundary
//! extension:
//!
//! ```text
//! predict:  d_i = x_{2i+1} − (x_{2i} + x_{2i+2}) / 2
//! update:   a_i = x_{2i}   + (d_{i−1} + d_i) / 4
//! ```
//!
//! Unlike Haar/D4 this filter is biorthogonal (not energy preserving), so
//! Theorem 3.1's contraction constant does not apply verbatim — the module
//! exposes [`cdf53_frame_bounds`], an empirically validated operator-norm
//! bound usable for conservative radius scaling.

/// One CDF 5/3 analysis step: `(approximation, detail)`, each half length.
///
/// `input.len()` must be even and ≥ 2; symmetric (mirror) extension handles
/// the boundaries.
pub fn cdf53_step(input: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = input.len();
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "cdf53_step needs even length >= 2, got {n}"
    );
    let half = n / 2;
    // Mirror access: x[-1] = x[1], x[n] = x[n-2].
    let x = |i: isize| -> f64 {
        let idx = if i < 0 {
            (-i) as usize
        } else if i as usize >= n {
            2 * (n - 1) - i as usize
        } else {
            i as usize
        };
        input[idx]
    };
    let mut detail = Vec::with_capacity(half);
    for i in 0..half {
        let odd = x(2 * i as isize + 1);
        detail.push(odd - 0.5 * (x(2 * i as isize) + x(2 * i as isize + 2)));
    }
    let d = |i: isize| -> f64 {
        let idx = if i < 0 {
            (-i - 1) as usize
        } else if i as usize >= half {
            2 * half - 1 - i as usize
        } else {
            i as usize
        };
        detail[idx.min(half - 1)]
    };
    let mut approx = Vec::with_capacity(half);
    for i in 0..half {
        approx.push(x(2 * i as isize) + 0.25 * (d(i as isize - 1) + d(i as isize)));
    }
    (approx, detail)
}

/// Inverse of [`cdf53_step`].
pub fn cdf53_inverse_step(approx: &[f64], detail: &[f64]) -> Vec<f64> {
    let half = approx.len();
    assert_eq!(half, detail.len(), "approx/detail length mismatch");
    assert!(half >= 1, "empty input");
    let d = |i: isize| -> f64 {
        let idx = if i < 0 {
            (-i - 1) as usize
        } else if i as usize >= half {
            2 * half - 1 - i as usize
        } else {
            i as usize
        };
        detail[idx.min(half - 1)]
    };
    // Undo update: even samples.
    let mut even = Vec::with_capacity(half);
    for (i, &a) in approx.iter().enumerate() {
        even.push(a - 0.25 * (d(i as isize - 1) + d(i as isize)));
    }
    // Undo predict: odd samples (mirror on the evens).
    let e = |i: isize| -> f64 {
        let idx = if i as usize >= half {
            2 * half - 1 - i as usize
        } else {
            i as usize
        };
        even[idx.min(half - 1)]
    };
    let mut out = Vec::with_capacity(2 * half);
    for i in 0..half {
        out.push(even[i]);
        out.push(detail[i] + 0.5 * (e(i as isize) + e(i as isize + 1)));
    }
    out
}

/// Multi-level CDF 5/3 decomposition down to a length-1 approximation;
/// details ordered coarse → fine like [`crate::decomposition::Decomposition`].
pub fn cdf53_decompose(v: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert!(
        v.len().is_power_of_two() && !v.is_empty(),
        "need power-of-two length"
    );
    let mut current = v.to_vec();
    let mut details = Vec::new();
    while current.len() >= 2 {
        let (a, d) = cdf53_step(&current);
        details.push(d);
        current = a;
    }
    details.reverse();
    (current, details)
}

/// Inverse of [`cdf53_decompose`].
pub fn cdf53_reconstruct(approx: &[f64], details: &[Vec<f64>]) -> Vec<f64> {
    let mut current = approx.to_vec();
    for d in details {
        current = cdf53_inverse_step(&current, d);
    }
    current
}

/// Empirical frame bounds of one CDF 5/3 analysis step: `(lower, upper)`
/// factors such that `lower·‖x‖ ≤ ‖(a,d)‖ ≤ upper·‖x‖` for all inputs of
/// the given (even) length.
///
/// Computed by power iteration on `WᵀW`; useful for conservative radius
/// scaling when publishing CDF-5/3 summaries.
pub fn cdf53_frame_bounds(n: usize) -> (f64, f64) {
    assert!(n >= 2 && n.is_multiple_of(2), "need even length >= 2");
    // Materialise the analysis operator W column by column (n is a vector
    // length here, so the O(n²) matrix is tiny), then power-iterate
    // WᵀW for σ_max and (W⁻¹)ᵀW⁻¹ for 1/σ_min.
    let w_matrix: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let (a, d) = cdf53_step(&e);
            let mut col = a;
            col.extend(d);
            col
        })
        .collect(); // w_matrix[j] = W·e_j (the j-th column)
    let w_inv: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            cdf53_inverse_step(&e[..n / 2], &e[n / 2..])
        })
        .collect();

    let spectral_norm = |cols: &[Vec<f64>]| -> f64 {
        let apply = |v: &[f64]| -> Vec<f64> {
            // y = M v where cols[j] is column j.
            let mut y = vec![0.0; n];
            for (j, col) in cols.iter().enumerate() {
                for (yi, &c) in y.iter_mut().zip(col) {
                    *yi += c * v[j];
                }
            }
            y
        };
        let apply_t = |v: &[f64]| -> Vec<f64> {
            // y = Mᵀ v: y_j = col_j · v.
            cols.iter()
                .map(|col| col.iter().zip(v).map(|(a, b)| a * b).sum())
                .collect()
        };
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut x: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let mut sigma = 0.0;
        for _ in 0..300 {
            let y = apply(&x);
            let z = apply_t(&y);
            let nz = norm(&z);
            if nz == 0.0 {
                break;
            }
            sigma = (norm(&y).powi(2) / norm(&x).powi(2)).sqrt();
            for (xi, zi) in x.iter_mut().zip(&z) {
                *xi = zi / nz;
            }
        }
        sigma
    };
    let upper = spectral_norm(&w_matrix);
    let lower = 1.0 / spectral_norm(&w_inv).max(1e-12);
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_all(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?}\nvs\n{b:?}");
        }
    }

    #[test]
    fn step_roundtrip() {
        let v: Vec<f64> = (0..16).map(|i| ((i * 7) % 5) as f64 - 1.0).collect();
        let (a, d) = cdf53_step(&v);
        close_all(&cdf53_inverse_step(&a, &d), &v, 1e-12);
    }

    #[test]
    fn roundtrip_many_lengths() {
        for n in [2usize, 4, 8, 64, 256] {
            let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let (a, d) = cdf53_step(&v);
            close_all(&cdf53_inverse_step(&a, &d), &v, 1e-10);
        }
    }

    #[test]
    fn constant_signal_zero_detail_and_preserved_mean() {
        let (a, d) = cdf53_step(&[4.0; 16]);
        for &x in &d {
            assert!(x.abs() < 1e-12);
        }
        for &x in &a {
            assert!((x - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_signal_zero_detail_in_interior() {
        // 5/3 has two vanishing moments in the analysis high-pass.
        let v: Vec<f64> = (0..32).map(|i| 1.0 + 0.5 * i as f64).collect();
        let (_, d) = cdf53_step(&v);
        for &x in &d[..d.len() - 1] {
            assert!(x.abs() < 1e-10, "interior detail {x}");
        }
    }

    #[test]
    fn full_decomposition_roundtrip() {
        let v: Vec<f64> = (0..128).map(|i| ((i * i) % 23) as f64 * 0.1).collect();
        let (a, details) = cdf53_decompose(&v);
        assert_eq!(a.len(), 1);
        assert_eq!(details.len(), 7);
        close_all(&cdf53_reconstruct(&a, &details), &v, 1e-9);
    }

    #[test]
    fn frame_bounds_bracket_observed_norm_ratios() {
        let n = 32;
        let (lower, upper) = cdf53_frame_bounds(n);
        assert!(lower > 0.0 && upper >= lower);
        // Validate against random inputs.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..100 {
            let v: Vec<f64> = (0..n).map(|_| next()).collect();
            let (a, d) = cdf53_step(&v);
            let in_norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            let out_norm: f64 = a.iter().chain(&d).map(|x| x * x).sum::<f64>().sqrt();
            let ratio = out_norm / in_norm;
            assert!(
                ratio <= upper * 1.05 && ratio >= lower * 0.95,
                "ratio {ratio} outside [{lower}, {upper}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_rejected() {
        cdf53_step(&[1.0, 2.0, 3.0]);
    }
}
