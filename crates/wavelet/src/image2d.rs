//! Separable 2-D Haar transform for image-like data.
//!
//! The paper's scenario is photo sharing; devices would extract features
//! from images whose codecs "already use the wavelet transform". This
//! module provides the standard separable 2-D DWT (one Haar step along
//! rows, then along columns) producing the classic LL/LH/HL/HH quadrant
//! layout, plus a multi-level pyramid on the LL band — enough to derive
//! wavelet-domain feature vectors straight from raster data.

use crate::haar::{haar_inverse_step, haar_step, Normalization};

/// A row-major 2-D image of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Image {
    /// Create from a row-major buffer.
    pub fn from_flat(data: Vec<f64>, width: usize, height: usize) -> Self {
        assert_eq!(data.len(), width * height, "buffer/shape mismatch");
        assert!(width > 0 && height > 0, "degenerate image");
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sample at `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.data[y * self.width + x]
    }

    /// Mutable sample at `(x, y)`.
    pub fn at_mut(&mut self, x: usize, y: usize) -> &mut f64 {
        &mut self.data[y * self.width + x]
    }

    /// The flat buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }
}

/// One 2-D analysis step: quadrants `(LL, LH, HL, HH)`, each half size.
///
/// Width and height must be even.
pub fn dwt2_step(img: &Image, norm: Normalization) -> (Image, Image, Image, Image) {
    let (w, h) = (img.width, img.height);
    assert!(
        w % 2 == 0 && h % 2 == 0 && w >= 2 && h >= 2,
        "even dimensions required, got {w}x{h}"
    );
    // Rows first.
    let mut row_lo = Image::from_flat(vec![0.0; w / 2 * h], w / 2, h);
    let mut row_hi = Image::from_flat(vec![0.0; w / 2 * h], w / 2, h);
    let mut a = Vec::new();
    let mut d = Vec::new();
    for y in 0..h {
        a.clear();
        d.clear();
        haar_step(&img.data[y * w..(y + 1) * w], norm, &mut a, &mut d);
        for x in 0..w / 2 {
            *row_lo.at_mut(x, y) = a[x];
            *row_hi.at_mut(x, y) = d[x];
        }
    }
    // Columns second.
    let col_split = |src: &Image| -> (Image, Image) {
        let (sw, sh) = (src.width, src.height);
        let mut lo = Image::from_flat(vec![0.0; sw * sh / 2], sw, sh / 2);
        let mut hi = Image::from_flat(vec![0.0; sw * sh / 2], sw, sh / 2);
        let mut col = vec![0.0; sh];
        let mut a = Vec::new();
        let mut d = Vec::new();
        for x in 0..sw {
            for (y, c) in col.iter_mut().enumerate() {
                *c = src.at(x, y);
            }
            a.clear();
            d.clear();
            haar_step(&col, norm, &mut a, &mut d);
            for y in 0..sh / 2 {
                *lo.at_mut(x, y) = a[y];
                *hi.at_mut(x, y) = d[y];
            }
        }
        (lo, hi)
    };
    let (ll, lh) = col_split(&row_lo);
    let (hl, hh) = col_split(&row_hi);
    (ll, lh, hl, hh)
}

/// Inverse of [`dwt2_step`].
pub fn dwt2_inverse_step(
    ll: &Image,
    lh: &Image,
    hl: &Image,
    hh: &Image,
    norm: Normalization,
) -> Image {
    let (qw, qh) = (ll.width, ll.height);
    for q in [lh, hl, hh] {
        assert_eq!((q.width, q.height), (qw, qh), "quadrant shape mismatch");
    }
    // Columns first (undo the second analysis pass).
    let col_merge = |lo: &Image, hi: &Image| -> Image {
        let mut out = Image::from_flat(vec![0.0; qw * qh * 2], qw, qh * 2);
        let mut a = vec![0.0; qh];
        let mut d = vec![0.0; qh];
        for x in 0..qw {
            for y in 0..qh {
                a[y] = lo.at(x, y);
                d[y] = hi.at(x, y);
            }
            let col = haar_inverse_step(&a, &d, norm);
            for (y, &v) in col.iter().enumerate() {
                *out.at_mut(x, y) = v;
            }
        }
        out
    };
    let row_lo = col_merge(ll, lh);
    let row_hi = col_merge(hl, hh);
    // Rows second.
    let (w2, h) = (qw, qh * 2);
    let mut out = Image::from_flat(vec![0.0; w2 * 2 * h], w2 * 2, h);
    let mut a = vec![0.0; w2];
    let mut d = vec![0.0; w2];
    for y in 0..h {
        for x in 0..w2 {
            a[x] = row_lo.at(x, y);
            d[x] = row_hi.at(x, y);
        }
        let row = haar_inverse_step(&a, &d, norm);
        for (x, &v) in row.iter().enumerate() {
            *out.at_mut(x, y) = v;
        }
    }
    out
}

/// Multi-level pyramid: repeatedly decompose the LL band.
///
/// Returns the final LL plus per-level `(LH, HL, HH)` triples, coarse →
/// fine.
pub fn dwt2_pyramid(
    img: &Image,
    levels: usize,
    norm: Normalization,
) -> (Image, Vec<(Image, Image, Image)>) {
    assert!(levels >= 1, "need at least one level");
    let mut current = img.clone();
    let mut bands = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (ll, lh, hl, hh) = dwt2_step(&current, norm);
        bands.push((lh, hl, hh));
        current = ll;
    }
    bands.reverse();
    (current, bands)
}

/// Inverse of [`dwt2_pyramid`].
pub fn dwt2_pyramid_inverse(
    ll: &Image,
    bands: &[(Image, Image, Image)],
    norm: Normalization,
) -> Image {
    let mut current = ll.clone();
    for (lh, hl, hh) in bands {
        current = dwt2_inverse_step(&current, lh, hl, hh, norm);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(w: usize, h: usize) -> Image {
        let data: Vec<f64> = (0..w * h)
            .map(|i| ((i * 31 + 7) % 13) as f64 - 6.0 + (i as f64 * 0.01))
            .collect();
        Image::from_flat(data, w, h)
    }

    fn close_imgs(a: &Image, b: &Image, tol: f64) {
        assert_eq!((a.width(), a.height()), (b.width(), b.height()));
        for (x, y) in a.as_flat().iter().zip(b.as_flat()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn step_roundtrip_both_conventions() {
        let img = test_image(8, 6);
        for norm in [Normalization::PaperAverage, Normalization::Orthonormal] {
            let (ll, lh, hl, hh) = dwt2_step(&img, norm);
            assert_eq!((ll.width(), ll.height()), (4, 3));
            let back = dwt2_inverse_step(&ll, &lh, &hl, &hh, norm);
            close_imgs(&back, &img, 1e-10);
        }
    }

    #[test]
    fn constant_image_concentrates_in_ll() {
        let img = Image::from_flat(vec![3.0; 64], 8, 8);
        let (ll, lh, hl, hh) = dwt2_step(&img, Normalization::PaperAverage);
        for &v in ll.as_flat() {
            assert!((v - 3.0).abs() < 1e-12);
        }
        for band in [lh, hl, hh] {
            for &v in band.as_flat() {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn horizontal_edge_appears_in_lh() {
        // Rows 0..3 are 0, rows 3..8 are 1: a horizontal edge that crosses
        // a Haar pair boundary → vertical-detail band (LH here: low-pass
        // rows, high-pass columns). (An edge at y = 4 would be pair-aligned
        // and produce *zero* detail — a classic Haar blind spot.)
        let mut img = Image::from_flat(vec![0.0; 64], 8, 8);
        for y in 3..8 {
            for x in 0..8 {
                *img.at_mut(x, y) = 1.0;
            }
        }
        let (_, lh, hl, _) = dwt2_step(&img, Normalization::PaperAverage);
        let lh_energy: f64 = lh.as_flat().iter().map(|v| v * v).sum();
        let hl_energy: f64 = hl.as_flat().iter().map(|v| v * v).sum();
        assert!(lh_energy > 0.1, "edge missing from LH: {lh_energy}");
        assert!(hl_energy < 1e-12, "edge leaked into HL: {hl_energy}");
    }

    #[test]
    fn orthonormal_preserves_energy_2d() {
        let img = test_image(16, 16);
        let (ll, lh, hl, hh) = dwt2_step(&img, Normalization::Orthonormal);
        let e_in: f64 = img.as_flat().iter().map(|v| v * v).sum();
        let e_out: f64 = [&ll, &lh, &hl, &hh]
            .iter()
            .flat_map(|b| b.as_flat())
            .map(|v| v * v)
            .sum();
        assert!((e_in - e_out).abs() < 1e-9 * (1.0 + e_in));
    }

    #[test]
    fn pyramid_roundtrip() {
        let img = test_image(32, 32);
        let (ll, bands) = dwt2_pyramid(&img, 3, Normalization::PaperAverage);
        assert_eq!((ll.width(), ll.height()), (4, 4));
        assert_eq!(bands.len(), 3);
        let back = dwt2_pyramid_inverse(&ll, &bands, Normalization::PaperAverage);
        close_imgs(&back, &img, 1e-9);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_dimensions_rejected() {
        dwt2_step(&test_image(7, 8), Normalization::PaperAverage);
    }
}
