//! Binary wire codec for overlay messages.
//!
//! The simulators charge byte costs per message; this module makes those
//! costs *real* by defining the actual on-wire encoding of the two payload
//! types that cross the network — published cluster objects and range
//! queries — instead of an analytic size formula. All sizes reported by
//! [`StoredObject::wire_bytes`] equal the encoder's output length exactly
//! (asserted by tests), so the simulated byte counts are what a real
//! deployment would transmit.
//!
//! Layout (little-endian, fixed width — these are small records, varints
//! would save ≤ 10% at the cost of branchy decode on battery devices):
//!
//! ```text
//! object:  id u64 | dim u16 | centre f64×dim | radius f64 | peer u64 | tag u64 | items u32
//! query:   dim u16 | centre f64×dim | radius f64
//! ```

use crate::ops::{ObjectRef, StoredObject};

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the record did.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The buffer is longer than one record.
    TrailingBytes(usize),
    /// A floating-point field decoded to NaN/∞ or a count overflowed.
    CorruptField(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated record: needed {needed} bytes, got {got}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
            CodecError::CorruptField(name) => write!(f, "corrupt field {name}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated {
                needed: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, CodecError> {
        let v = f64::from_le_bytes(self.take(8)?.try_into().unwrap());
        if v.is_finite() {
            Ok(v)
        } else {
            Err(CodecError::CorruptField(field))
        }
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

/// Encoded length of an object record with `dim` centre coordinates.
pub fn object_wire_len(dim: usize) -> usize {
    8 + 2 + 8 * dim + 8 + 8 + 8 + 4
}

/// Encoded length of a query record with `dim` centre coordinates.
pub fn query_wire_len(dim: usize) -> usize {
    2 + 8 * dim + 8
}

/// Encode a stored object for transmission.
pub fn encode_object(obj: &StoredObject) -> Vec<u8> {
    let dim = obj.centre.len();
    assert!(
        dim <= u16::MAX as usize,
        "dimension too large for wire format"
    );
    let mut out = Vec::with_capacity(object_wire_len(dim));
    out.extend_from_slice(&obj.id.to_le_bytes());
    out.extend_from_slice(&(dim as u16).to_le_bytes());
    for &x in &obj.centre {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.extend_from_slice(&obj.radius.to_le_bytes());
    out.extend_from_slice(&(obj.payload.peer as u64).to_le_bytes());
    out.extend_from_slice(&obj.payload.tag.to_le_bytes());
    out.extend_from_slice(&obj.payload.items.to_le_bytes());
    debug_assert_eq!(out.len(), object_wire_len(dim));
    out
}

/// Decode one object record.
pub fn decode_object(buf: &[u8]) -> Result<StoredObject, CodecError> {
    let mut r = Reader::new(buf);
    let id = r.u64()?;
    let dim = r.u16()? as usize;
    let mut centre = Vec::with_capacity(dim);
    for _ in 0..dim {
        centre.push(r.f64("centre")?);
    }
    let radius = r.f64("radius")?;
    if radius < 0.0 {
        return Err(CodecError::CorruptField("radius"));
    }
    let peer = r.u64()? as usize;
    let tag = r.u64()?;
    let items = r.u32()?;
    r.finish()?;
    Ok(StoredObject {
        id,
        centre,
        radius,
        payload: ObjectRef { peer, tag, items },
    })
}

/// Encode a range-query record.
pub fn encode_query(centre: &[f64], radius: f64) -> Vec<u8> {
    assert!(
        centre.len() <= u16::MAX as usize,
        "dimension too large for wire format"
    );
    let mut out = Vec::with_capacity(query_wire_len(centre.len()));
    out.extend_from_slice(&(centre.len() as u16).to_le_bytes());
    for &x in centre {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.extend_from_slice(&radius.to_le_bytes());
    out
}

/// Decode one range-query record into `(centre, radius)`.
pub fn decode_query(buf: &[u8]) -> Result<(Vec<f64>, f64), CodecError> {
    let mut r = Reader::new(buf);
    let dim = r.u16()? as usize;
    let mut centre = Vec::with_capacity(dim);
    for _ in 0..dim {
        centre.push(r.f64("centre")?);
    }
    let radius = r.f64("radius")?;
    if radius < 0.0 {
        return Err(CodecError::CorruptField("radius"));
    }
    r.finish()?;
    Ok((centre, radius))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(dim: usize) -> StoredObject {
        StoredObject {
            id: 0xDEAD_BEEF,
            centre: (0..dim).map(|i| i as f64 * 0.125 - 1.0).collect(),
            radius: 0.375,
            payload: ObjectRef {
                peer: 42,
                tag: 7,
                items: 1234,
            },
        }
    }

    #[test]
    fn object_roundtrip_many_dims() {
        for dim in [1usize, 2, 4, 8, 64, 512] {
            let o = obj(dim);
            let bytes = encode_object(&o);
            assert_eq!(bytes.len(), object_wire_len(dim));
            assert_eq!(bytes.len() as u64, o.wire_bytes());
            let back = decode_object(&bytes).unwrap();
            assert_eq!(back, o);
        }
    }

    #[test]
    fn query_roundtrip() {
        let centre = vec![0.1, 0.9, 0.5];
        let bytes = encode_query(&centre, 0.25);
        assert_eq!(bytes.len(), query_wire_len(3));
        let (c, r) = decode_query(&bytes).unwrap();
        assert_eq!(c, centre);
        assert_eq!(r, 0.25);
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let bytes = encode_object(&obj(4));
        for cut in 0..bytes.len() {
            let err = decode_object(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_object(&obj(2));
        bytes.push(0);
        assert_eq!(
            decode_object(&bytes).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn corrupt_floats_rejected() {
        let mut bytes = encode_object(&obj(2));
        // Overwrite the first centre coordinate with NaN.
        bytes[10..18].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            decode_object(&bytes).unwrap_err(),
            CodecError::CorruptField("centre")
        );
        // Negative radius.
        let mut bytes = encode_object(&obj(2));
        let radius_off = 8 + 2 + 16;
        bytes[radius_off..radius_off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(
            decode_object(&bytes).unwrap_err(),
            CodecError::CorruptField("radius")
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        // Deterministic pseudo-random buffers of many lengths.
        let mut state = 0x1234_5678u64;
        for len in 0..200 {
            let buf: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = decode_object(&buf);
            let _ = decode_query(&buf);
        }
    }
}
