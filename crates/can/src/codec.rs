//! Binary wire codec for overlay messages.
//!
//! The simulators charge byte costs per message; this module makes those
//! costs *real* by defining the actual on-wire encoding of everything that
//! crosses the network. It started as two payload records — published
//! cluster objects and range queries — and grew into the full [`Message`]
//! enum the `hyperm-transport` crate frames over channels and loopback
//! TCP: join/route/publish/get/fetch/query traffic and their acks. All
//! sizes reported by [`StoredObject::wire_bytes`] equal the encoder's
//! output length exactly (asserted by tests), so the simulated byte counts
//! are what a real deployment transmits.
//!
//! Hardening contract (every byte may come from an untrusted peer):
//!
//! * decoding **never panics** — every failure is a typed [`CodecError`];
//! * length fields are validated against the remaining buffer *before*
//!   any allocation sized by them (a 2-byte header cannot make us reserve
//!   512 KiB for a 10-byte frame);
//! * encoding is fallible too: a dimension that does not fit the `u16`
//!   wire field is [`CodecError::DimTooLarge`], not an `assert!`.
//!
//! Layout (little-endian, fixed width — these are small records, varints
//! would save ≤ 10% at the cost of branchy decode on battery devices):
//!
//! ```text
//! object:  id u64 | dim u16 | centre f64×dim | radius f64 | peer u64 | tag u64 | items u32
//! query:   dim u16 | centre f64×dim | radius f64
//! message: kind u8 | kind-specific body (see the frame table in DESIGN.md)
//! ctx:     trace_id u64 | parent_span u64   (tail of query/fetch/publish)
//! ```
//!
//! Query, fetch and publish bodies end with a 16-byte
//! [`hyperm_telemetry::TraceCtx`] that is **always encoded** — all zeroes
//! when untraced — so frame layout, and therefore the byte streams the
//! bit-identity tests compare, is independent of whether tracing is on.

use crate::ops::{ObjectRef, StoredObject};
use hyperm_telemetry::TraceCtx;

/// Errors from encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the record did.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The buffer is longer than one record.
    TrailingBytes(usize),
    /// A floating-point field decoded to NaN/∞, a count overflowed, or a
    /// field value is outside its domain.
    CorruptField(&'static str),
    /// Encode-side: a dimension does not fit the `u16` wire field.
    DimTooLarge(usize),
    /// A message frame's kind byte names no known [`Message`] variant.
    UnknownKind(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, got } => {
                write!(f, "truncated record: needed {needed} bytes, got {got}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
            CodecError::CorruptField(name) => write!(f, "corrupt field {name}"),
            CodecError::DimTooLarge(d) => {
                write!(f, "dimension {d} exceeds the u16 wire format")
            }
            CodecError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Pre-validate that `n` more bytes exist *without* consuming them —
    /// called before any allocation sized by a wire-derived count.
    fn need(&self, n: usize) -> Result<(), CodecError> {
        match self.pos.checked_add(n) {
            Some(end) if end <= self.buf.len() => Ok(()),
            Some(end) => Err(CodecError::Truncated {
                needed: end,
                got: self.buf.len(),
            }),
            // `pos + n` overflowed usize: the frame cannot possibly hold it.
            None => Err(CodecError::Truncated {
                needed: usize::MAX,
                got: self.buf.len(),
            }),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        // Checked: once length-prefixed framing feeds wire-derived lengths
        // through here, `pos + n` can overflow on hostile input.
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Fixed-width read as an owned array. `take(N)` already guarantees
    /// the slice is exactly `N` bytes, but the conversion returns a
    /// typed error rather than unwrapping so no decode path can panic
    /// even if that invariant is ever broken.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        <[u8; N]>::try_from(self.take(N)?).map_err(|_| CodecError::Truncated { needed: N, got: 0 })
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// A peer/node index: `u64` on the wire, checked into `usize` (a
    /// 32-bit host must reject ids it cannot even address).
    fn peer_id(&mut self, field: &'static str) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::CorruptField(field))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, CodecError> {
        let v = f64::from_le_bytes(self.array()?);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(CodecError::CorruptField(field))
        }
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

/// Encoded length of an object record with `dim` centre coordinates.
pub fn object_wire_len(dim: usize) -> usize {
    8 + 2 + 8 * dim + 8 + 8 + 8 + 4
}

/// Encoded length of a query record with `dim` centre coordinates.
pub fn query_wire_len(dim: usize) -> usize {
    2 + 8 * dim + 8
}

/// Bytes of an object record after the `id | dim` header.
fn object_tail_len(dim: usize) -> usize {
    8 * dim + 8 + 8 + 8 + 4
}

fn write_object(out: &mut Vec<u8>, obj: &StoredObject) -> Result<(), CodecError> {
    let dim = obj.centre.len();
    if dim > u16::MAX as usize {
        return Err(CodecError::DimTooLarge(dim));
    }
    out.extend_from_slice(&obj.id.to_le_bytes());
    out.extend_from_slice(&(dim as u16).to_le_bytes());
    for &x in &obj.centre {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.extend_from_slice(&obj.radius.to_le_bytes());
    out.extend_from_slice(&(obj.payload.peer as u64).to_le_bytes());
    out.extend_from_slice(&obj.payload.tag.to_le_bytes());
    out.extend_from_slice(&obj.payload.items.to_le_bytes());
    Ok(())
}

fn read_object(r: &mut Reader<'_>) -> Result<StoredObject, CodecError> {
    let id = r.u64()?;
    let dim = r.u16()? as usize;
    // Pre-validate the whole remaining record against the declared
    // dimension before allocating `dim` slots: a 2-byte header must not
    // size an allocation the buffer cannot back.
    r.need(object_tail_len(dim))?;
    let mut centre = Vec::with_capacity(dim);
    for _ in 0..dim {
        centre.push(r.f64("centre")?);
    }
    let radius = r.f64("radius")?;
    if radius < 0.0 {
        return Err(CodecError::CorruptField("radius"));
    }
    let peer = r.peer_id("peer")?;
    let tag = r.u64()?;
    let items = r.u32()?;
    Ok(StoredObject {
        id,
        centre,
        radius,
        payload: ObjectRef { peer, tag, items },
    })
}

fn write_vec_f64(out: &mut Vec<u8>, v: &[f64]) -> Result<(), CodecError> {
    if v.len() > u16::MAX as usize {
        return Err(CodecError::DimTooLarge(v.len()));
    }
    out.extend_from_slice(&(v.len() as u16).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Ok(())
}

fn read_vec_f64(r: &mut Reader<'_>, field: &'static str) -> Result<Vec<f64>, CodecError> {
    let dim = r.u16()? as usize;
    r.need(8 * dim)?;
    let mut v = Vec::with_capacity(dim);
    for _ in 0..dim {
        v.push(r.f64(field)?);
    }
    Ok(v)
}

fn read_radius(r: &mut Reader<'_>, field: &'static str) -> Result<f64, CodecError> {
    let radius = r.f64(field)?;
    if radius < 0.0 {
        return Err(CodecError::CorruptField(field));
    }
    Ok(radius)
}

/// Encode a stored object for transmission.
pub fn encode_object(obj: &StoredObject) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(object_wire_len(obj.centre.len().min(u16::MAX as usize)));
    write_object(&mut out, obj)?;
    debug_assert_eq!(out.len(), object_wire_len(obj.centre.len()));
    Ok(out)
}

/// Decode one object record.
pub fn decode_object(buf: &[u8]) -> Result<StoredObject, CodecError> {
    let mut r = Reader::new(buf);
    let obj = read_object(&mut r)?;
    r.finish()?;
    Ok(obj)
}

/// Encode a range-query record.
pub fn encode_query(centre: &[f64], radius: f64) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(query_wire_len(centre.len().min(u16::MAX as usize)));
    write_vec_f64(&mut out, centre)?;
    out.extend_from_slice(&radius.to_le_bytes());
    Ok(out)
}

/// Decode one range-query record into `(centre, radius)`.
pub fn decode_query(buf: &[u8]) -> Result<(Vec<f64>, f64), CodecError> {
    let mut r = Reader::new(buf);
    let dim = r.u16()? as usize;
    // Pre-validate centre + radius before allocating `dim` slots.
    r.need(8 * dim + 8)?;
    let mut centre = Vec::with_capacity(dim);
    for _ in 0..dim {
        centre.push(r.f64("centre")?);
    }
    let radius = read_radius(&mut r, "radius")?;
    r.finish()?;
    Ok((centre, radius))
}

// ---------------------------------------------------------------------------
// The full message enum framed by `hyperm-transport`.
// ---------------------------------------------------------------------------

/// Message kind bytes (the first byte of every encoded message).
pub mod kind {
    /// [`super::Message::Hello`].
    pub const HELLO: u8 = 0;
    /// [`super::Message::Join`].
    pub const JOIN: u8 = 1;
    /// [`super::Message::JoinAck`].
    pub const JOIN_ACK: u8 = 2;
    /// [`super::Message::Route`].
    pub const ROUTE: u8 = 3;
    /// [`super::Message::RouteAck`].
    pub const ROUTE_ACK: u8 = 4;
    /// [`super::Message::Publish`].
    pub const PUBLISH: u8 = 5;
    /// [`super::Message::PublishAck`].
    pub const PUBLISH_ACK: u8 = 6;
    /// [`super::Message::Query`].
    pub const QUERY: u8 = 7;
    /// [`super::Message::QueryAck`].
    pub const QUERY_ACK: u8 = 8;
    /// [`super::Message::Get`].
    pub const GET: u8 = 9;
    /// [`super::Message::GetAck`].
    pub const GET_ACK: u8 = 10;
    /// [`super::Message::Fetch`].
    pub const FETCH: u8 = 11;
    /// [`super::Message::FetchAck`].
    pub const FETCH_ACK: u8 = 12;
    /// [`super::Message::Ack`].
    pub const ACK: u8 = 13;
    /// [`super::Message::Monitor`].
    pub const MONITOR: u8 = 14;
    /// [`super::Message::MonitorAck`].
    pub const MONITOR_ACK: u8 = 15;
    /// [`super::Message::Shutdown`].
    pub const SHUTDOWN: u8 = 16;
    /// [`super::Message::Put`].
    pub const PUT: u8 = 17;
    /// [`super::Message::PutAck`].
    pub const PUT_ACK: u8 = 18;
    /// [`super::Message::Stats`].
    pub const STATS: u8 = 19;
    /// [`super::Message::StatsAck`].
    pub const STATS_ACK: u8 = 20;
    /// [`super::Message::Ping`].
    pub const PING: u8 = 21;
    /// [`super::Message::Pong`].
    pub const PONG: u8 = 22;

    /// Every kind byte paired with its [`super::Message`] variant name.
    /// This is the protocol's source of truth for exhaustiveness
    /// checks: `hyperm-lint`'s protocol-consistency pass cross-checks
    /// it against the constants above, the reply pairing table, and the
    /// `NodeRuntime` dispatch at build time. Adding a kind without
    /// extending this table fails the lint.
    pub const ALL: &[(u8, &str)] = &[
        (HELLO, "Hello"),
        (JOIN, "Join"),
        (JOIN_ACK, "JoinAck"),
        (ROUTE, "Route"),
        (ROUTE_ACK, "RouteAck"),
        (PUBLISH, "Publish"),
        (PUBLISH_ACK, "PublishAck"),
        (QUERY, "Query"),
        (QUERY_ACK, "QueryAck"),
        (GET, "Get"),
        (GET_ACK, "GetAck"),
        (FETCH, "Fetch"),
        (FETCH_ACK, "FetchAck"),
        (ACK, "Ack"),
        (MONITOR, "Monitor"),
        (MONITOR_ACK, "MonitorAck"),
        (SHUTDOWN, "Shutdown"),
        (PUT, "Put"),
        (PUT_ACK, "PutAck"),
        (STATS, "Stats"),
        (STATS_ACK, "StatsAck"),
        (PING, "Ping"),
        (PONG, "Pong"),
    ];

    /// Request kinds whose effect is idempotent at the receiver: a
    /// duplicate delivery (from a resend racing a slow reply) is
    /// indistinguishable from a single one. The transport's retry set
    /// must be a subset of this list — enforced by `hyperm-lint`'s
    /// `proto-retry-set` rule. `PUT`/`PUBLISH` mutate and `SHUTDOWN`
    /// races its own effect, so they are deliberately absent.
    pub const IDEMPOTENT: &[u8] = &[JOIN, ROUTE, QUERY, GET, FETCH, MONITOR, STATS, PING];
}

/// Every message the transport layer frames between peers.
///
/// Requests and replies pair up: `Join`→`JoinAck`, `Route`→`RouteAck`,
/// `Publish`→`PublishAck`, `Query`→`QueryAck`, `Get`→`GetAck`,
/// `Fetch`→`FetchAck`, `Monitor`→`MonitorAck`. `Ack { seq, ok: false }`
/// is the generic failure reply, with `seq` echoing the *expected* reply
/// kind so forwarding nodes can route it back to the right requester.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Transport-level introduction: the first frame on every connection,
    /// naming the sender so replies can be addressed.
    Hello {
        /// Sender's transport peer id.
        peer: u64,
    },
    /// A latecomer joins the network, carrying its collection (row-major).
    Join {
        /// Joining node's transport peer id.
        peer: u64,
        /// Data dimensionality of each row.
        dim: u16,
        /// `rows.len() / dim` items, flattened row-major.
        rows: Vec<f64>,
    },
    /// Join accepted.
    JoinAck {
        /// Assigned dense peer id (== overlay node id at every level).
        peer: u64,
        /// Network size after the join.
        members: u64,
    },
    /// Owner lookup: who owns this key at this overlay level?
    Route {
        /// Overlay level.
        level: u16,
        /// Key-space point.
        key: Vec<f64>,
    },
    /// Owner lookup reply.
    RouteAck {
        /// Overlay level echoed.
        level: u16,
        /// Owning overlay node id.
        owner: u64,
    },
    /// Publish one sphere object into an overlay level.
    Publish {
        /// Overlay level.
        level: u16,
        /// Replicate into every overlapping zone (Section 5 semantics).
        replicate: bool,
        /// The object; its `id` is publisher-local and echoed in the ack.
        object: StoredObject,
        /// Distributed trace context (all zeroes when untraced).
        ctx: TraceCtx,
    },
    /// Publish accepted.
    PublishAck {
        /// Overlay level echoed.
        level: u16,
        /// Publisher-local object id echoed from the request.
        object_id: u64,
        /// Zones that stored a replica.
        replicas: u32,
        /// Zones the sphere overlaps (`replicas < targets` = coverage hole).
        targets: u32,
    },
    /// Full Hyper-M range query in original data space.
    Query {
        /// Query centre (data space, `data_dim` wide).
        centre: Vec<f64>,
        /// Search radius ε ≥ 0.
        eps: f64,
        /// Peer contact budget; `u32::MAX` = contact every candidate.
        budget: u32,
        /// Distributed trace context (all zeroes when untraced).
        ctx: TraceCtx,
    },
    /// Range-query reply.
    QueryAck {
        /// Retrieved items as `(peer, local index)` pairs.
        items: Vec<(u64, u64)>,
        /// Simulated overlay hops charged.
        hops: u64,
        /// Simulated messages charged.
        messages: u64,
        /// Simulated bytes charged.
        bytes: u64,
    },
    /// Overlay-level point lookup: stored spheres covering a key.
    Get {
        /// Overlay level.
        level: u16,
        /// Key-space point.
        key: Vec<f64>,
    },
    /// Point-lookup reply.
    GetAck {
        /// Overlay level echoed.
        level: u16,
        /// Stored objects whose spheres cover the key.
        objects: Vec<StoredObject>,
    },
    /// Direct phase-2 fetch against one peer's local collection.
    Fetch {
        /// Target peer id.
        peer: u64,
        /// Query centre (data space).
        centre: Vec<f64>,
        /// Search radius ε ≥ 0.
        eps: f64,
        /// Distributed trace context (all zeroes when untraced).
        ctx: TraceCtx,
    },
    /// Fetch reply.
    FetchAck {
        /// Target peer echoed.
        peer: u64,
        /// Matching local item indices.
        indices: Vec<u64>,
    },
    /// Generic acknowledgement / failure notice.
    Ack {
        /// Request-specific tag; for failures, the expected reply kind.
        seq: u64,
        /// Whether the request succeeded.
        ok: bool,
    },
    /// Ask a node for its live overlay state.
    Monitor,
    /// Overlay state dump.
    MonitorAck {
        /// JSON document (zones, neighbours, summary counts).
        json: String,
    },
    /// Orderly shutdown request; acked before the node exits its loop.
    Shutdown,
    /// Insert one data item into a peer's live collection.
    Put {
        /// Target peer id.
        peer: u64,
        /// The item, in original data space.
        item: Vec<f64>,
        /// Re-publish the absorbed cluster sphere (vs. stale summaries).
        republish: bool,
    },
    /// Put accepted.
    PutAck {
        /// Target peer echoed.
        peer: u64,
        /// The item's new local index in the peer's collection.
        index: u64,
    },
    /// Ask a node for its sliding-window metrics snapshot.
    Stats,
    /// Window-metrics snapshot dump.
    StatsAck {
        /// JSON document (one [`hyperm_telemetry::WindowSnapshot`]).
        json: String,
    },
    /// Wire heartbeat: is the peer alive and serving?
    Ping {
        /// Sender-local heartbeat sequence number, echoed by the pong.
        seq: u64,
    },
    /// Heartbeat answer.
    Pong {
        /// The ping's sequence number, echoed.
        seq: u64,
    },
}

impl Message {
    /// The kind byte this message encodes with (see [`kind`]).
    pub fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => kind::HELLO,
            Message::Join { .. } => kind::JOIN,
            Message::JoinAck { .. } => kind::JOIN_ACK,
            Message::Route { .. } => kind::ROUTE,
            Message::RouteAck { .. } => kind::ROUTE_ACK,
            Message::Publish { .. } => kind::PUBLISH,
            Message::PublishAck { .. } => kind::PUBLISH_ACK,
            Message::Query { .. } => kind::QUERY,
            Message::QueryAck { .. } => kind::QUERY_ACK,
            Message::Get { .. } => kind::GET,
            Message::GetAck { .. } => kind::GET_ACK,
            Message::Fetch { .. } => kind::FETCH,
            Message::FetchAck { .. } => kind::FETCH_ACK,
            Message::Ack { .. } => kind::ACK,
            Message::Monitor => kind::MONITOR,
            Message::MonitorAck { .. } => kind::MONITOR_ACK,
            Message::Shutdown => kind::SHUTDOWN,
            Message::Put { .. } => kind::PUT,
            Message::PutAck { .. } => kind::PUT_ACK,
            Message::Stats => kind::STATS,
            Message::StatsAck { .. } => kind::STATS_ACK,
            Message::Ping { .. } => kind::PING,
            Message::Pong { .. } => kind::PONG,
        }
    }

    /// Human-readable kind name (for logs and monitor output).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::Join { .. } => "join",
            Message::JoinAck { .. } => "join_ack",
            Message::Route { .. } => "route",
            Message::RouteAck { .. } => "route_ack",
            Message::Publish { .. } => "publish",
            Message::PublishAck { .. } => "publish_ack",
            Message::Query { .. } => "query",
            Message::QueryAck { .. } => "query_ack",
            Message::Get { .. } => "get",
            Message::GetAck { .. } => "get_ack",
            Message::Fetch { .. } => "fetch",
            Message::FetchAck { .. } => "fetch_ack",
            Message::Ack { .. } => "ack",
            Message::Monitor => "monitor",
            Message::MonitorAck { .. } => "monitor_ack",
            Message::Shutdown => "shutdown",
            Message::Put { .. } => "put",
            Message::PutAck { .. } => "put_ack",
            Message::Stats => "stats",
            Message::StatsAck { .. } => "stats_ack",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
        }
    }

    /// The reply kind a request of kind `k` expects, if it expects one.
    pub fn reply_kind_of(k: u8) -> Option<u8> {
        match k {
            kind::JOIN => Some(kind::JOIN_ACK),
            kind::ROUTE => Some(kind::ROUTE_ACK),
            kind::PUBLISH => Some(kind::PUBLISH_ACK),
            kind::QUERY => Some(kind::QUERY_ACK),
            kind::GET => Some(kind::GET_ACK),
            kind::FETCH => Some(kind::FETCH_ACK),
            kind::MONITOR => Some(kind::MONITOR_ACK),
            kind::SHUTDOWN => Some(kind::ACK),
            kind::PUT => Some(kind::PUT_ACK),
            kind::STATS => Some(kind::STATS_ACK),
            kind::PING => Some(kind::PONG),
            _ => None,
        }
    }
}

fn write_u32_count(out: &mut Vec<u8>, n: usize, field: &'static str) -> Result<(), CodecError> {
    let n = u32::try_from(n).map_err(|_| CodecError::CorruptField(field))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

/// Trace context: two fixed words at the *end* of the body, always
/// present (zeroes = untraced), so every other field keeps its offset and
/// frame length is independent of whether tracing is enabled.
fn write_ctx(out: &mut Vec<u8>, ctx: TraceCtx) {
    out.extend_from_slice(&ctx.trace_id.to_le_bytes());
    out.extend_from_slice(&ctx.parent_span.to_le_bytes());
}

fn read_ctx(r: &mut Reader<'_>) -> Result<TraceCtx, CodecError> {
    Ok(TraceCtx {
        trace_id: r.u64()?,
        parent_span: r.u64()?,
    })
}

/// Encode a message body (kind byte + payload, no length prefix — the
/// transport layer adds framing).
pub fn encode_message(msg: &Message) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(16);
    out.push(msg.kind());
    match msg {
        Message::Hello { peer } => out.extend_from_slice(&peer.to_le_bytes()),
        Message::Join { peer, dim, rows } => {
            if *dim == 0 || rows.len() % (*dim as usize) != 0 {
                return Err(CodecError::CorruptField("rows"));
            }
            out.extend_from_slice(&peer.to_le_bytes());
            out.extend_from_slice(&dim.to_le_bytes());
            write_u32_count(&mut out, rows.len() / (*dim as usize), "rows")?;
            for &x in rows {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Message::JoinAck { peer, members } => {
            out.extend_from_slice(&peer.to_le_bytes());
            out.extend_from_slice(&members.to_le_bytes());
        }
        Message::Route { level, key } => {
            out.extend_from_slice(&level.to_le_bytes());
            write_vec_f64(&mut out, key)?;
        }
        Message::RouteAck { level, owner } => {
            out.extend_from_slice(&level.to_le_bytes());
            out.extend_from_slice(&owner.to_le_bytes());
        }
        Message::Publish {
            level,
            replicate,
            object,
            ctx,
        } => {
            out.extend_from_slice(&level.to_le_bytes());
            out.push(u8::from(*replicate));
            write_object(&mut out, object)?;
            write_ctx(&mut out, *ctx);
        }
        Message::PublishAck {
            level,
            object_id,
            replicas,
            targets,
        } => {
            out.extend_from_slice(&level.to_le_bytes());
            out.extend_from_slice(&object_id.to_le_bytes());
            out.extend_from_slice(&replicas.to_le_bytes());
            out.extend_from_slice(&targets.to_le_bytes());
        }
        Message::Query {
            centre,
            eps,
            budget,
            ctx,
        } => {
            write_vec_f64(&mut out, centre)?;
            out.extend_from_slice(&eps.to_le_bytes());
            out.extend_from_slice(&budget.to_le_bytes());
            write_ctx(&mut out, *ctx);
        }
        Message::QueryAck {
            items,
            hops,
            messages,
            bytes,
        } => {
            write_u32_count(&mut out, items.len(), "items")?;
            for &(p, i) in items {
                out.extend_from_slice(&p.to_le_bytes());
                out.extend_from_slice(&i.to_le_bytes());
            }
            out.extend_from_slice(&hops.to_le_bytes());
            out.extend_from_slice(&messages.to_le_bytes());
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        Message::Get { level, key } => {
            out.extend_from_slice(&level.to_le_bytes());
            write_vec_f64(&mut out, key)?;
        }
        Message::GetAck { level, objects } => {
            out.extend_from_slice(&level.to_le_bytes());
            write_u32_count(&mut out, objects.len(), "objects")?;
            for obj in objects {
                write_object(&mut out, obj)?;
            }
        }
        Message::Fetch {
            peer,
            centre,
            eps,
            ctx,
        } => {
            out.extend_from_slice(&peer.to_le_bytes());
            write_vec_f64(&mut out, centre)?;
            out.extend_from_slice(&eps.to_le_bytes());
            write_ctx(&mut out, *ctx);
        }
        Message::FetchAck { peer, indices } => {
            out.extend_from_slice(&peer.to_le_bytes());
            write_u32_count(&mut out, indices.len(), "indices")?;
            for &i in indices {
                out.extend_from_slice(&i.to_le_bytes());
            }
        }
        Message::Ack { seq, ok } => {
            out.extend_from_slice(&seq.to_le_bytes());
            out.push(u8::from(*ok));
        }
        Message::Monitor | Message::Shutdown | Message::Stats => {}
        Message::MonitorAck { json } | Message::StatsAck { json } => {
            write_u32_count(&mut out, json.len(), "json")?;
            out.extend_from_slice(json.as_bytes());
        }
        Message::Put {
            peer,
            item,
            republish,
        } => {
            out.extend_from_slice(&peer.to_le_bytes());
            write_vec_f64(&mut out, item)?;
            out.push(u8::from(*republish));
        }
        Message::PutAck { peer, index } => {
            out.extend_from_slice(&peer.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
        Message::Ping { seq } | Message::Pong { seq } => {
            out.extend_from_slice(&seq.to_le_bytes());
        }
    }
    Ok(out)
}

fn read_bool(r: &mut Reader<'_>, field: &'static str) -> Result<bool, CodecError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CodecError::CorruptField(field)),
    }
}

/// Decode one message body (as produced by [`encode_message`]). Every
/// count is validated against the remaining bytes before allocation, and
/// any leftover bytes are a [`CodecError::TrailingBytes`] error.
pub fn decode_message(buf: &[u8]) -> Result<Message, CodecError> {
    let mut r = Reader::new(buf);
    let k = r.u8()?;
    let msg = match k {
        kind::HELLO => Message::Hello { peer: r.u64()? },
        kind::JOIN => {
            let peer = r.u64()?;
            let dim = r.u16()?;
            if dim == 0 {
                return Err(CodecError::CorruptField("dim"));
            }
            let nrows = r.u32()? as usize;
            let values = nrows
                .checked_mul(dim as usize)
                .ok_or(CodecError::CorruptField("rows"))?;
            r.need(
                values
                    .checked_mul(8)
                    .ok_or(CodecError::CorruptField("rows"))?,
            )?;
            let mut rows = Vec::with_capacity(values);
            for _ in 0..values {
                rows.push(r.f64("rows")?);
            }
            Message::Join { peer, dim, rows }
        }
        kind::JOIN_ACK => Message::JoinAck {
            peer: r.u64()?,
            members: r.u64()?,
        },
        kind::ROUTE => Message::Route {
            level: r.u16()?,
            key: read_vec_f64(&mut r, "key")?,
        },
        kind::ROUTE_ACK => Message::RouteAck {
            level: r.u16()?,
            owner: r.u64()?,
        },
        kind::PUBLISH => Message::Publish {
            level: r.u16()?,
            replicate: read_bool(&mut r, "replicate")?,
            object: read_object(&mut r)?,
            ctx: read_ctx(&mut r)?,
        },
        kind::PUBLISH_ACK => Message::PublishAck {
            level: r.u16()?,
            object_id: r.u64()?,
            replicas: r.u32()?,
            targets: r.u32()?,
        },
        kind::QUERY => {
            let centre = read_vec_f64(&mut r, "centre")?;
            let eps = read_radius(&mut r, "eps")?;
            let budget = r.u32()?;
            let ctx = read_ctx(&mut r)?;
            Message::Query {
                centre,
                eps,
                budget,
                ctx,
            }
        }
        kind::QUERY_ACK => {
            let count = r.u32()? as usize;
            r.need(
                count
                    .checked_mul(16)
                    .ok_or(CodecError::CorruptField("items"))?,
            )?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push((r.u64()?, r.u64()?));
            }
            Message::QueryAck {
                items,
                hops: r.u64()?,
                messages: r.u64()?,
                bytes: r.u64()?,
            }
        }
        kind::GET => Message::Get {
            level: r.u16()?,
            key: read_vec_f64(&mut r, "key")?,
        },
        kind::GET_ACK => {
            let level = r.u16()?;
            let count = r.u32()? as usize;
            // An object record is at least `object_wire_len(0)` bytes, so
            // the declared count is bounded by the buffer before we
            // reserve anything.
            r.need(
                count
                    .checked_mul(object_wire_len(0))
                    .ok_or(CodecError::CorruptField("objects"))?,
            )?;
            let mut objects = Vec::with_capacity(count);
            for _ in 0..count {
                objects.push(read_object(&mut r)?);
            }
            Message::GetAck { level, objects }
        }
        kind::FETCH => {
            let peer = r.u64()?;
            let centre = read_vec_f64(&mut r, "centre")?;
            let eps = read_radius(&mut r, "eps")?;
            let ctx = read_ctx(&mut r)?;
            Message::Fetch {
                peer,
                centre,
                eps,
                ctx,
            }
        }
        kind::FETCH_ACK => {
            let peer = r.u64()?;
            let count = r.u32()? as usize;
            r.need(
                count
                    .checked_mul(8)
                    .ok_or(CodecError::CorruptField("indices"))?,
            )?;
            let mut indices = Vec::with_capacity(count);
            for _ in 0..count {
                indices.push(r.u64()?);
            }
            Message::FetchAck { peer, indices }
        }
        kind::ACK => Message::Ack {
            seq: r.u64()?,
            ok: read_bool(&mut r, "ok")?,
        },
        kind::MONITOR => Message::Monitor,
        kind::MONITOR_ACK => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let json = std::str::from_utf8(bytes)
                .map_err(|_| CodecError::CorruptField("json"))?
                .to_string();
            Message::MonitorAck { json }
        }
        kind::SHUTDOWN => Message::Shutdown,
        kind::PUT => Message::Put {
            peer: r.u64()?,
            item: read_vec_f64(&mut r, "item")?,
            republish: read_bool(&mut r, "republish")?,
        },
        kind::PUT_ACK => Message::PutAck {
            peer: r.u64()?,
            index: r.u64()?,
        },
        kind::PING => Message::Ping { seq: r.u64()? },
        kind::PONG => Message::Pong { seq: r.u64()? },
        kind::STATS => Message::Stats,
        kind::STATS_ACK => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let json = std::str::from_utf8(bytes)
                .map_err(|_| CodecError::CorruptField("json"))?
                .to_string();
            Message::StatsAck { json }
        }
        other => return Err(CodecError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(dim: usize) -> StoredObject {
        StoredObject {
            id: 0xDEAD_BEEF,
            centre: (0..dim).map(|i| i as f64 * 0.125 - 1.0).collect(),
            radius: 0.375,
            payload: ObjectRef {
                peer: 42,
                tag: 7,
                items: 1234,
            },
        }
    }

    #[test]
    fn object_roundtrip_many_dims() {
        for dim in [1usize, 2, 4, 8, 64, 512] {
            let o = obj(dim);
            let bytes = encode_object(&o).unwrap();
            assert_eq!(bytes.len(), object_wire_len(dim));
            assert_eq!(bytes.len() as u64, o.wire_bytes());
            let back = decode_object(&bytes).unwrap();
            assert_eq!(back, o);
        }
    }

    #[test]
    fn query_roundtrip() {
        let centre = vec![0.1, 0.9, 0.5];
        let bytes = encode_query(&centre, 0.25).unwrap();
        assert_eq!(bytes.len(), query_wire_len(3));
        let (c, r) = decode_query(&bytes).unwrap();
        assert_eq!(c, centre);
        assert_eq!(r, 0.25);
    }

    #[test]
    fn oversized_dimension_is_an_error_not_a_panic() {
        let o = obj(u16::MAX as usize + 1);
        assert_eq!(
            encode_object(&o).unwrap_err(),
            CodecError::DimTooLarge(u16::MAX as usize + 1)
        );
        let centre = vec![0.0; u16::MAX as usize + 1];
        assert_eq!(
            encode_query(&centre, 0.1).unwrap_err(),
            CodecError::DimTooLarge(u16::MAX as usize + 1)
        );
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let bytes = encode_object(&obj(4)).unwrap();
        for cut in 0..bytes.len() {
            let err = decode_object(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn huge_declared_dim_does_not_allocate() {
        // 2-byte header declaring dim = 65535 on a tiny buffer must fail
        // the pre-validation, not reserve 512 KiB.
        let mut buf = vec![0u8; 10];
        buf[8] = 0xFF;
        buf[9] = 0xFF; // object: id(8) then dim = 0xFFFF
        assert!(matches!(
            decode_object(&buf).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        let qbuf = [0xFFu8, 0xFF, 0, 0]; // query: dim = 0xFFFF, 2 spare bytes
        assert!(matches!(
            decode_query(&qbuf).unwrap_err(),
            CodecError::Truncated { .. }
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_object(&obj(2)).unwrap();
        bytes.push(0);
        assert_eq!(
            decode_object(&bytes).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn corrupt_floats_rejected() {
        let mut bytes = encode_object(&obj(2)).unwrap();
        // Overwrite the first centre coordinate with NaN.
        bytes[10..18].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            decode_object(&bytes).unwrap_err(),
            CodecError::CorruptField("centre")
        );
        // Negative radius.
        let mut bytes = encode_object(&obj(2)).unwrap();
        let radius_off = 8 + 2 + 16;
        bytes[radius_off..radius_off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(
            decode_object(&bytes).unwrap_err(),
            CodecError::CorruptField("radius")
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        // Deterministic pseudo-random buffers of many lengths.
        let mut state = 0x1234_5678u64;
        for len in 0..200 {
            let buf: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = decode_object(&buf);
            let _ = decode_query(&buf);
            let _ = decode_message(&buf);
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello { peer: 9 },
            Message::Join {
                peer: 3,
                dim: 2,
                rows: vec![0.1, 0.2, 0.3, 0.4],
            },
            Message::JoinAck {
                peer: 12,
                members: 13,
            },
            Message::Route {
                level: 1,
                key: vec![0.5, 0.25],
            },
            Message::RouteAck { level: 1, owner: 4 },
            Message::Publish {
                level: 0,
                replicate: true,
                object: obj(4),
                ctx: TraceCtx::new(0xAB, hyperm_telemetry::SpanId(3)),
            },
            Message::PublishAck {
                level: 0,
                object_id: 77,
                replicas: 3,
                targets: 3,
            },
            Message::Query {
                centre: vec![0.4; 8],
                eps: 0.125,
                budget: u32::MAX,
                ctx: TraceCtx {
                    trace_id: u64::MAX,
                    parent_span: 1,
                },
            },
            Message::QueryAck {
                items: vec![(0, 5), (2, 9)],
                hops: 17,
                messages: 21,
                bytes: 4096,
            },
            Message::Get {
                level: 2,
                key: vec![0.75],
            },
            Message::GetAck {
                level: 2,
                objects: vec![obj(1), obj(3)],
            },
            Message::Fetch {
                peer: 6,
                centre: vec![0.9, 0.1],
                eps: 0.0,
                ctx: TraceCtx::NONE,
            },
            Message::FetchAck {
                peer: 6,
                indices: vec![0, 4, 9],
            },
            Message::Ack { seq: 8, ok: false },
            Message::Monitor,
            Message::MonitorAck {
                json: "{\"zones\": 4}".to_string(),
            },
            Message::Shutdown,
            Message::Put {
                peer: 2,
                item: vec![0.25, 0.5, 0.75],
                republish: true,
            },
            Message::PutAck { peer: 2, index: 20 },
            Message::Stats,
            Message::StatsAck {
                json: "{\"ops\": 9}".to_string(),
            },
            Message::Ping { seq: 11 },
            Message::Pong { seq: 11 },
        ]
    }

    #[test]
    fn message_roundtrip_every_kind() {
        let msgs = sample_messages();
        // Every kind byte appears exactly once.
        let kinds: std::collections::BTreeSet<u8> = msgs.iter().map(Message::kind).collect();
        assert_eq!(kinds.len(), msgs.len());
        for msg in msgs {
            let bytes = encode_message(&msg).unwrap();
            assert_eq!(bytes[0], msg.kind());
            let back = decode_message(&bytes).unwrap();
            assert_eq!(back, msg, "{}", msg.kind_name());
        }
    }

    #[test]
    fn kind_table_is_total_and_collision_free() {
        // `kind::ALL` is the protocol's source of truth (the lint's
        // protocol pass builds on it): it must cover every sample
        // message's kind byte exactly once, with no byte collisions.
        let mut bytes: Vec<u8> = kind::ALL.iter().map(|&(b, _)| b).collect();
        bytes.sort_unstable();
        let n = bytes.len();
        bytes.dedup();
        assert_eq!(bytes.len(), n, "kind byte collision in kind::ALL");
        for msg in sample_messages() {
            let k = msg.kind();
            let (_, variant) = kind::ALL
                .iter()
                .find(|&&(b, _)| b == k)
                .unwrap_or_else(|| panic!("kind {k} missing from kind::ALL"));
            // The table's variant name must agree with the wire name
            // modulo case convention (JoinAck vs join_ack).
            let squashed: String = variant.to_ascii_lowercase();
            let wire: String = msg.kind_name().replace('_', "");
            assert_eq!(squashed, wire, "kind::ALL name drifted for byte {k}");
        }
    }

    #[test]
    fn idempotent_kinds_are_requests() {
        for &k in kind::IDEMPOTENT {
            assert!(
                Message::reply_kind_of(k).is_some(),
                "kind::IDEMPOTENT lists {k}, which is not a request kind"
            );
        }
    }

    #[test]
    fn message_truncations_error_cleanly() {
        for msg in sample_messages() {
            let bytes = encode_message(&msg).unwrap();
            for cut in 0..bytes.len() {
                match decode_message(&bytes[..cut]) {
                    Err(_) => {}
                    // A prefix that happens to be a complete shorter
                    // message (e.g. cutting all of Hello's payload would
                    // still need the kind byte) cannot roundtrip to the
                    // original — but must never panic.
                    Ok(m) => assert_ne!(m, msg),
                }
            }
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // QueryAck declaring u32::MAX items in a 9-byte frame.
        let mut buf = vec![kind::QUERY_ACK];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_message(&buf).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        // GetAck declaring 1M objects.
        let mut buf = vec![kind::GET_ACK, 0, 0];
        buf.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            decode_message(&buf).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        // Join declaring rows whose byte size overflows usize.
        let mut buf = vec![kind::JOIN];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u16::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_message(&buf).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(
            decode_message(&[200]).unwrap_err(),
            CodecError::UnknownKind(200)
        );
    }

    #[test]
    fn semantic_fields_validated() {
        // Query with negative eps.
        let bytes = encode_message(&Message::Query {
            centre: vec![0.5],
            eps: 0.25,
            budget: 0,
            ctx: TraceCtx::NONE,
        })
        .unwrap();
        let mut bad = bytes.clone();
        let eps_off = 1 + 2 + 8;
        bad[eps_off..eps_off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert_eq!(
            decode_message(&bad).unwrap_err(),
            CodecError::CorruptField("eps")
        );
        // Publish with a replicate byte outside {0, 1}.
        let bytes = encode_message(&Message::Publish {
            level: 0,
            replicate: false,
            object: obj(1),
            ctx: TraceCtx::NONE,
        })
        .unwrap();
        let mut bad = bytes.clone();
        bad[3] = 2;
        assert_eq!(
            decode_message(&bad).unwrap_err(),
            CodecError::CorruptField("replicate")
        );
        // Ack with a bad bool.
        let bytes = encode_message(&Message::Ack { seq: 1, ok: true }).unwrap();
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() = 9;
        assert_eq!(
            decode_message(&bad).unwrap_err(),
            CodecError::CorruptField("ok")
        );
    }

    #[test]
    fn trace_ctx_rides_the_frame_tail() {
        // Untraced and traced frames have identical length; the tail of an
        // untraced frame is 16 zero bytes.
        let untraced = Message::Query {
            centre: vec![0.5, 0.5],
            eps: 0.1,
            budget: 4,
            ctx: TraceCtx::NONE,
        };
        let traced = Message::Query {
            centre: vec![0.5, 0.5],
            eps: 0.1,
            budget: 4,
            ctx: TraceCtx {
                trace_id: 7,
                parent_span: 21,
            },
        };
        let a = encode_message(&untraced).unwrap();
        let b = encode_message(&traced).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(&a[..a.len() - 16], &b[..b.len() - 16]);
        assert!(a[a.len() - 16..].iter().all(|&x| x == 0));
        match decode_message(&b).unwrap() {
            Message::Query { ctx, .. } => {
                assert_eq!(ctx.trace_id, 7);
                assert_eq!(ctx.parent_span, 21);
            }
            other => panic!("decoded {other:?}"),
        }
    }
}
