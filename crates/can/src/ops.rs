//! Object operations: insertion with replication, lookups and flooding
//! range queries.
//!
//! Hyper-M's published objects are cluster *spheres*, and "a problem
//! specific to CAN when used to index non-zero sized objects is the
//! possibility that the area of the object overlaps more than one region"
//! (Section 5, Figure 6). A sphere is therefore **replicated** into every
//! zone it overlaps, by flooding outward from its centroid's owner; range
//! queries symmetrically flood every zone overlapping the query ball.
//! Both floods are costed as idealised multicast trees: one message per
//! newly reached node (real gossip would add duplicate-suppression traffic,
//! which affects constants, not shapes).

// hyperm-lint: allow-file(panic-index) — flood slot indices are binary_search hits into the candidate list built in the same scope
use crate::overlay::CanOverlay;
use crate::zone::Zone;
use hyperm_sim::{NodeId, OpStats};
use hyperm_telemetry::{names, SpanId};
use std::collections::VecDeque;

/// Render a zone's box for trace events (`[0.000,0.250)x[0.500,1.000)`).
fn zone_str(z: &Zone) -> String {
    z.lo()
        .iter()
        .zip(z.hi())
        .map(|(l, h)| format!("[{l:.3},{h:.3})"))
        .collect::<Vec<_>>()
        .join("x")
}

/// What a stored object points back to: the peer that published it and an
/// opaque tag (e.g. which of the peer's clusters it is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRef {
    /// Publishing peer (application-level id, not the CAN node id).
    pub peer: usize,
    /// Publisher-chosen tag (cluster index, item index, …).
    pub tag: u64,
    /// Number of data items this object summarises (`items_c` of Eq. 1).
    pub items: u32,
}

/// An object stored in a CAN node's local store (possibly a replica).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    /// Globally unique object id (assigned at insertion; replicas share it).
    pub id: u64,
    /// Key-space centre.
    pub centre: Vec<f64>,
    /// Key-space radius (0 for point objects).
    pub radius: f64,
    /// Back-reference to the publisher.
    pub payload: ObjectRef,
}

impl StoredObject {
    /// Exact wire size of this object's binary encoding (see
    /// [`crate::codec`]).
    pub fn wire_bytes(&self) -> u64 {
        crate::codec::object_wire_len(self.centre.len()) as u64
    }
}

/// Result of a sphere/point insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertOutcome {
    /// Owner of the object's centre.
    pub owner: NodeId,
    /// Nodes storing the object (1 = no replication happened/needed).
    pub replicas: usize,
    /// Zones the sphere overlaps — the replica count a fully delivered
    /// flood achieves. `replicas < targets` means lossy flood edges left
    /// coverage holes (possible only on the fallible publish path).
    pub targets: usize,
    /// Total message cost (routing + replication fan-out).
    pub stats: OpStats,
    /// Critical-path length in rounds: routing hops + replication-flood
    /// depth (flood messages at the same depth travel in parallel).
    pub rounds: u64,
}

impl InsertOutcome {
    /// Whether every overlapping zone received its replica.
    pub fn complete(&self) -> bool {
        self.replicas == self.targets
    }
}

/// Result of a range query.
#[derive(Debug, Clone)]
pub struct RangeOutcome {
    /// Matching objects, deduplicated by object id.
    pub matches: Vec<StoredObject>,
    /// Overlay nodes visited by the flood.
    pub nodes_visited: usize,
    /// Total message cost (routing + flood + responses).
    pub stats: OpStats,
}

/// Size of a range-query packet: centre + radius + header.
fn query_bytes(dim: usize) -> u64 {
    8 * (dim as u64 + 1) + 16
}

impl CanOverlay {
    /// Insert a sphere object whose centre/radius are already in key space.
    ///
    /// Routes from `from` to the centre's owner, then (if `replicate`)
    /// floods replicas into every zone the sphere overlaps. With
    /// `replicate = false` only the owner stores it — the paper's
    /// "no-replication standard" baseline of Figure 8a.
    pub fn insert_sphere(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
    ) -> InsertOutcome {
        match self.insert_sphere_impl(from, centre, radius, payload, replicate, false) {
            Ok(out) => out,
            // hyperm-lint: allow(panic-explicit) — infallible entry point by contract: callers on this path run on repaired topologies (see doc comment); fault-aware callers use try_insert_sphere
            Err(_) => panic!("publish route failed on the reliable path"),
        }
    }

    /// Fallible, fault-aware sphere insertion — the reliable-publish data
    /// path. The route to the owner and every replication flood edge roll
    /// the installed fault injector (ack/retransmit per hop) and respect
    /// an active partition. A route that dead-ends returns `Err` with the
    /// burnt cost and stores nothing; a flood edge whose retries exhaust
    /// leaves that zone to be covered by another branch, if any —
    /// surfacing as `replicas < targets` when none reaches it. With no
    /// injector and no partition installed this is bit-identical to
    /// [`CanOverlay::insert_sphere`].
    pub fn try_insert_sphere(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
    ) -> Result<InsertOutcome, OpStats> {
        self.insert_sphere_impl(from, centre, radius, payload, replicate, true)
    }

    fn insert_sphere_impl(
        &mut self,
        from: NodeId,
        centre: Vec<f64>,
        radius: f64,
        payload: ObjectRef,
        replicate: bool,
        with_faults: bool,
    ) -> Result<InsertOutcome, OpStats> {
        assert_eq!(centre.len(), self.dim(), "centre dimension mismatch");
        assert!(radius >= 0.0, "negative radius {radius}");
        let id = self.next_object_id;
        self.next_object_id += 1;
        let obj = StoredObject {
            id,
            centre,
            radius,
            payload,
        };
        let bytes = obj.wire_bytes();
        let tel = self.recorder().clone();
        let traced = tel.is_enabled();

        let res = self.route_result_with(from, &obj.centre, bytes, with_faults);
        if res.outcome != crate::overlay::RouteOutcome::Delivered {
            return Err(res.stats);
        }
        let (owner, mut stats) = (res.node, res.stats);
        let route_rounds = res.rounds;
        let flood_span = if traced {
            tel.span(
                tel.scope(),
                names::FLOOD,
                vec![
                    ("kind", "publish".into()),
                    ("owner", owner.0.into()),
                    ("radius", radius.into()),
                ],
            )
        } else {
            SpanId::NONE
        };

        let mut replicas = 0usize;
        let mut targets = 1usize;
        let mut flood_depth = 0u64;
        if replicate && radius > 0.0 {
            // BFS flood over zones overlapping the sphere; the queue holds
            // (node, depth) so the critical path is the max depth reached.
            // Candidate zones come from the spatial index; membership in
            // the pre-filtered candidate set is exactly the old per-edge
            // `intersects_sphere` test. Each edge is one transmission,
            // subject to fault injection on the fallible path (no-fault
            // path: 1 attempt, so costs are bit-identical); an undelivered
            // edge leaves the neighbour to another flood branch, and
            // severed (partitioned) links are simply absent.
            let candidates = self.flood_candidates(&obj.centre, obj.radius);
            targets = candidates.len();
            let slot_of = |id: NodeId| candidates.binary_search(&(id.0 as u32)).ok();
            let mut visited = vec![false; candidates.len()];
            let mut queue = VecDeque::new();
            // hyperm-lint: allow(panic-unwrap) — owner's zone overlaps the object it stores, so owner is always in candidates
            visited[slot_of(owner).expect("owner zone overlaps its own object")] = true;
            queue.push_back((owner, 0u64));
            while let Some((n, depth)) = queue.pop_front() {
                flood_depth = flood_depth.max(depth);
                self.node_mut(n).store.push(obj.clone());
                replicas += 1;
                if traced {
                    tel.event(
                        flood_span,
                        names::REPLICA,
                        vec![("node", n.0.into()), ("depth", depth.into())],
                    );
                }
                let neighbours = self.node(n).neighbours.clone();
                for nb in neighbours {
                    if let Some(slot) = slot_of(nb) {
                        if !visited[slot] && self.reachable(n, nb) {
                            let (delivered, attempts, _ticks) = if with_faults {
                                self.fault_hop()
                            } else {
                                (true, 1, 1)
                            };
                            stats.messages += attempts;
                            stats.bytes += attempts * bytes;
                            stats.retries += attempts.saturating_sub(1);
                            if traced && attempts > 1 {
                                tel.event(
                                    flood_span,
                                    names::RETRY,
                                    vec![
                                        ("from", n.0.into()),
                                        ("to", nb.0.into()),
                                        ("attempts", attempts.into()),
                                    ],
                                );
                            }
                            if delivered {
                                stats.hops += 1;
                                visited[slot] = true;
                                if traced {
                                    tel.event(
                                        flood_span,
                                        names::FLOOD_EDGE,
                                        vec![
                                            ("from", n.0.into()),
                                            ("to", nb.0.into()),
                                            ("depth", (depth + 1).into()),
                                        ],
                                    );
                                }
                                queue.push_back((nb, depth + 1));
                            } else if traced {
                                tel.event(
                                    flood_span,
                                    names::DROP,
                                    vec![("from", n.0.into()), ("to", nb.0.into())],
                                );
                            }
                        }
                    }
                }
            }
        } else {
            self.node_mut(owner).store.push(obj);
            replicas = 1;
            if traced {
                tel.event(
                    flood_span,
                    names::REPLICA,
                    vec![("node", owner.0.into()), ("depth", 0u64.into())],
                );
            }
        }
        tel.end(
            flood_span,
            names::FLOOD,
            vec![("replicas", replicas.into()), ("depth", flood_depth.into())],
        );
        Ok(InsertOutcome {
            owner,
            replicas,
            targets,
            stats,
            rounds: route_rounds + flood_depth,
        })
    }

    /// Insert a zero-sized (point) object.
    pub fn insert_point(
        &mut self,
        from: NodeId,
        point: Vec<f64>,
        payload: ObjectRef,
    ) -> InsertOutcome {
        self.insert_sphere(from, point, 0.0, payload, false)
    }

    /// Remove every stored object (all replicas, all versions) published by
    /// `peer` under `tag` — the invalidation step of a summary re-publish.
    ///
    /// Cost model: one invalidation message per removed replica (the
    /// publisher re-floods the same tree that placed them).
    pub fn remove_objects(&mut self, peer: usize, tag: u64) -> (usize, OpStats) {
        let mut removed = 0usize;
        for node in self.nodes_mut() {
            let before = node.store.len();
            node.store
                .retain(|o| !(o.payload.peer == peer && o.payload.tag == tag));
            removed += before - node.store.len();
        }
        let stats = OpStats {
            hops: removed as u64,
            messages: removed as u64,
            bytes: removed as u64 * 24,
            ..OpStats::zero()
        };
        (removed, stats)
    }

    /// Route to the owner of `point` and return the stored objects whose
    /// spheres contain it (the overlay half of a Hyper-M *point query*).
    ///
    /// Replication guarantees completeness: any sphere containing `point`
    /// overlaps the zone containing `point`, so a replica lives at the
    /// owner.
    /// Queries on damaged or faulty overlays degrade instead of panicking:
    /// if routing dead-ends (an unrepaired hole, or injected faults
    /// exhausting retries), the result is empty and the cost record carries
    /// `failed_routes = 1`.
    pub fn point_lookup(&self, from: NodeId, point: &[f64]) -> (Vec<StoredObject>, OpStats) {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let tel = self.recorder();
        let res = self.route_result(from, point, query_bytes(self.dim()));
        if res.outcome != crate::overlay::RouteOutcome::Delivered {
            return (Vec::new(), res.stats);
        }
        let (owner, mut stats) = (res.node, res.stats);
        // Load attribution: the owner both admits and answers a point
        // lookup (one query_served; the reply is charged below).
        self.load.query_served(owner.0);
        if tel.is_enabled() {
            tel.event(
                tel.scope(),
                names::VISIT,
                vec![
                    ("node", owner.0.into()),
                    ("zone", zone_str(&self.node(owner).zone).into()),
                ],
            );
        }
        let matches: Vec<StoredObject> = self
            .node(owner)
            .store
            .iter()
            .filter(|o| {
                let d: f64 = o
                    .centre
                    .iter()
                    .zip(point)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                d <= o.radius + 1e-12
            })
            .cloned()
            .collect();
        // One response message carrying the matches.
        let resp_bytes: u64 = matches
            .iter()
            .map(StoredObject::wire_bytes)
            .sum::<u64>()
            .max(16);
        stats += OpStats::one_hop(resp_bytes);
        self.load.flood_visit(owner.0, resp_bytes);
        (matches, stats)
    }

    /// Flooding range query: find every stored object whose sphere
    /// intersects the query ball `(centre, radius)` (key space).
    ///
    /// Routes to the centre's owner, floods every node whose zone overlaps
    /// the query ball, and collects intersecting objects (deduplicated by
    /// id). Thanks to replication this visits exactly the zones that can
    /// hold a match, so the result is complete — the overlay-level
    /// precondition for Theorem 4.1's no-false-dismissal guarantee.
    /// Like [`CanOverlay::point_lookup`], the query is total under damage
    /// and faults: a dead-ended route yields an empty result (with
    /// `failed_routes` ticked), and with fault injection active every
    /// flood edge may be retried or lost — a lost edge leaves the
    /// neighbour to be reached via another branch of the flood, if any.
    pub fn range_query(&self, from: NodeId, centre: &[f64], radius: f64) -> RangeOutcome {
        assert_eq!(centre.len(), self.dim(), "centre dimension mismatch");
        assert!(radius >= 0.0, "negative radius {radius}");
        let qb = query_bytes(self.dim());
        let tel = self.recorder();
        let traced = tel.is_enabled();
        let res = self.route_result(from, centre, qb);
        if res.outcome != crate::overlay::RouteOutcome::Delivered {
            return RangeOutcome {
                matches: Vec::new(),
                nodes_visited: 0,
                stats: res.stats,
            };
        }
        let (owner, mut stats) = (res.node, res.stats);
        // Load attribution: the owner admits the query (exactly one
        // query_served charge per delivered lookup).
        self.load.query_served(owner.0);
        let flood_span = if traced {
            tel.span(
                tel.scope(),
                names::FLOOD,
                vec![
                    ("kind", "range".into()),
                    ("owner", owner.0.into()),
                    ("radius", radius.into()),
                ],
            )
        } else {
            SpanId::NONE
        };

        // Flood membership via the spatial index: the candidate set is the
        // exact set of zones overlapping the query ball, so BFS order,
        // visited set and all charged costs match the unindexed flood
        // bit-for-bit — only host-side work per edge shrinks.
        let candidates = self.flood_candidates(centre, radius);
        let slot_of = |id: NodeId| candidates.binary_search(&(id.0 as u32)).ok();
        let mut visited = vec![false; candidates.len()];
        let mut queue = VecDeque::new();
        // hyperm-lint: allow(panic-unwrap) — route postcondition: the owner's zone contains the query centre, so it is in candidates
        visited[slot_of(owner).expect("owner zone contains the query centre")] = true;
        queue.push_back(owner);
        let mut seen_ids = std::collections::HashSet::new();
        let mut matches = Vec::new();
        let mut nodes_visited = 0usize;
        let mut resp_bytes = 0u64;

        while let Some(n) = queue.pop_front() {
            nodes_visited += 1;
            let node = self.node(n);
            let mut local_bytes = 0u64;
            let before = matches.len();
            for obj in &node.store {
                let d: f64 = obj
                    .centre
                    .iter()
                    .zip(centre)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d <= obj.radius + radius + 1e-12 && seen_ids.insert(obj.id) {
                    local_bytes += obj.wire_bytes();
                    matches.push(obj.clone());
                }
            }
            resp_bytes += local_bytes.max(16); // every visited node replies
                                               // Load attribution: the visited node scans its store and
                                               // transmits the reply — charged once, to it alone.
            self.load.flood_visit(n.0, local_bytes.max(16));
            if traced {
                tel.event(
                    flood_span,
                    names::VISIT,
                    vec![
                        ("node", n.0.into()),
                        ("matched", (matches.len() - before).into()),
                        ("zone", zone_str(&node.zone).into()),
                    ],
                );
            }
            for &nb in &node.neighbours {
                if let Some(slot) = slot_of(nb) {
                    if !visited[slot] && self.reachable(n, nb) {
                        // Each flood edge is one transmission, subject to
                        // fault injection (no-fault path: 1 attempt, so
                        // costs are bit-identical with injection off);
                        // severed (partitioned) links are simply absent.
                        let (delivered, attempts, _ticks) = self.fault_hop();
                        stats.messages += attempts;
                        stats.bytes += attempts * qb;
                        stats.retries += attempts.saturating_sub(1);
                        // Retransmissions are paid by the flood-edge
                        // sender `n`, never also by the receiver.
                        self.load.retries(n.0, attempts.saturating_sub(1));
                        if traced && attempts > 1 {
                            tel.event(
                                flood_span,
                                names::RETRY,
                                vec![
                                    ("from", n.0.into()),
                                    ("to", nb.0.into()),
                                    ("attempts", attempts.into()),
                                ],
                            );
                        }
                        if delivered {
                            stats.hops += 1;
                            visited[slot] = true;
                            if traced {
                                tel.event(
                                    flood_span,
                                    names::FLOOD_EDGE,
                                    vec![("from", n.0.into()), ("to", nb.0.into())],
                                );
                            }
                            queue.push_back(nb);
                        } else if traced {
                            tel.event(
                                flood_span,
                                names::DROP,
                                vec![("from", n.0.into()), ("to", nb.0.into())],
                            );
                        }
                    }
                }
            }
        }
        // Response messages: one per visited node (idealised direct reply).
        stats += OpStats {
            hops: nodes_visited as u64,
            messages: nodes_visited as u64,
            bytes: resp_bytes,
            ..OpStats::zero()
        };
        tel.end(
            flood_span,
            names::FLOOD,
            vec![
                ("visited", nodes_visited.into()),
                ("matches", matches.len().into()),
                ("resp_bytes", resp_bytes.into()),
            ],
        );
        RangeOutcome {
            matches,
            nodes_visited,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::CanConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn overlay_2d(n: usize, seed: u64) -> CanOverlay {
        CanOverlay::bootstrap(CanConfig::new(2).with_seed(seed), n)
    }

    fn payload(peer: usize) -> ObjectRef {
        ObjectRef {
            peer,
            tag: 0,
            items: 1,
        }
    }

    #[test]
    fn point_insert_lands_at_owner() {
        let mut overlay = overlay_2d(16, 1);
        let out = overlay.insert_point(NodeId(0), vec![0.7, 0.2], payload(3));
        assert_eq!(out.replicas, 1);
        assert_eq!(out.owner, overlay.owner_of(&[0.7, 0.2]));
        assert_eq!(overlay.node(out.owner).store.len(), 1);
    }

    #[test]
    fn sphere_replicates_into_overlapping_zones() {
        let mut overlay = overlay_2d(32, 2);
        // A big sphere overlapping many zones.
        let out = overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.3, payload(1), true);
        assert!(
            out.replicas > 1,
            "expected replication, got {}",
            out.replicas
        );
        // Exactly the overlapping zones hold a replica.
        for node in overlay.nodes() {
            let should = node.zone.intersects_sphere(&[0.5, 0.5], 0.3);
            let has = node.store.iter().any(|o| o.id == 0);
            assert_eq!(should, has, "node {} replica mismatch", node.id);
        }
    }

    #[test]
    fn no_replication_mode_stores_once() {
        let mut overlay = overlay_2d(32, 3);
        let out = overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.3, payload(1), false);
        assert_eq!(out.replicas, 1);
        let total: usize = overlay.store_sizes().iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn smaller_spheres_replicate_less() {
        let mut a = overlay_2d(64, 4);
        let mut b = a.clone();
        let big = a.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.25, payload(1), true);
        let small = b.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.02, payload(1), true);
        assert!(small.replicas <= big.replicas);
        assert!(small.stats.hops <= big.stats.hops);
    }

    #[test]
    fn point_lookup_finds_covering_spheres() {
        let mut overlay = overlay_2d(32, 5);
        overlay.insert_sphere(NodeId(0), vec![0.3, 0.3], 0.15, payload(1), true);
        overlay.insert_sphere(NodeId(0), vec![0.8, 0.8], 0.05, payload(2), true);
        let (hits, _) = overlay.point_lookup(NodeId(1), &[0.35, 0.3]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload.peer, 1);
        let (hits, _) = overlay.point_lookup(NodeId(1), &[0.5, 0.5]);
        assert!(hits.is_empty());
    }

    #[test]
    fn range_query_is_complete_versus_linear_scan() {
        let mut overlay = overlay_2d(48, 6);
        let mut rng = StdRng::seed_from_u64(9);
        let mut truth: Vec<(u64, Vec<f64>, f64)> = Vec::new();
        for i in 0..200 {
            let centre = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let radius = rng.gen::<f64>() * 0.08;
            let out = overlay.insert_sphere(NodeId(0), centre.clone(), radius, payload(i), true);
            truth.push((out.replicas as u64, centre, radius));
        }
        for _ in 0..30 {
            let q = [rng.gen::<f64>(), rng.gen::<f64>()];
            let qr = rng.gen::<f64>() * 0.2;
            let res = overlay.range_query(NodeId(2), &q, qr);
            let expected: usize = truth
                .iter()
                .filter(|(_, c, r)| {
                    let d = ((c[0] - q[0]).powi(2) + (c[1] - q[1]).powi(2)).sqrt();
                    d <= r + qr + 1e-12
                })
                .count();
            assert_eq!(res.matches.len(), expected, "query {q:?} r={qr}");
        }
    }

    #[test]
    fn range_query_dedupes_replicas() {
        let mut overlay = overlay_2d(32, 7);
        overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.4, payload(1), true);
        let res = overlay.range_query(NodeId(0), &[0.5, 0.5], 0.5);
        assert_eq!(res.matches.len(), 1);
        assert!(res.nodes_visited > 1);
    }

    #[test]
    fn zero_radius_query_checks_only_owner_zone() {
        let mut overlay = overlay_2d(32, 8);
        overlay.insert_point(NodeId(0), vec![0.2, 0.2], payload(1));
        let res = overlay.range_query(NodeId(3), &[0.2, 0.2], 0.0);
        assert_eq!(res.matches.len(), 1);
        assert_eq!(res.nodes_visited, 1);
    }

    #[test]
    fn insert_costs_are_recorded() {
        let mut overlay = overlay_2d(64, 9);
        let out = overlay.insert_sphere(NodeId(5), vec![0.9, 0.1], 0.05, payload(1), true);
        // At least the routing hops must carry object-sized messages.
        assert!(out.stats.bytes >= out.stats.messages * 16);
        assert_eq!(out.stats.hops, out.stats.messages);
    }

    #[test]
    fn objects_survive_topology_changes() {
        // Insert first, then let new nodes join: replicas must follow the
        // splits so queries stay complete.
        let mut overlay = overlay_2d(8, 10);
        overlay.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.2, payload(1), true);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..24 {
            let point = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            overlay.join(NodeId(rng.gen_range(0..overlay.len())), &point);
        }
        overlay.check_invariants();
        let res = overlay.range_query(NodeId(1), &[0.5, 0.5], 0.1);
        assert_eq!(res.matches.len(), 1);
        // Every zone overlapping the sphere still has its replica.
        for node in overlay.nodes() {
            if node.zone.intersects_sphere(&[0.5, 0.5], 0.2) {
                assert!(
                    node.store.iter().any(|o| o.id == 0),
                    "replica missing at {} after splits",
                    node.id
                );
            }
        }
    }
}
