//! Mapping between application data space and the CAN key space.
//!
//! CAN keys live in `[0,1)^d`. Hyper-M publishes wavelet-subspace vectors
//! whose coordinate ranges depend on the data; a [`KeyMap`] performs the
//! affine translation using *configured* (not measured) bounds, because in
//! the distributed setting no peer can see global statistics — the bounds
//! are part of the shared network configuration, exactly like the hash
//! function of a DHT.
//!
//! The map also supports *projection*: indexing only the first `key_dim`
//! coordinates of higher-dimensional data. The paper's 2-d CAN baseline
//! ("we implemented 2-dimensional CAN for the 512-dimensional dataset by
//! indexing in only 2 dimensions") is expressed this way. Projection is a
//! contraction, so converting a data-space radius with [`KeyMap::to_key_radius`]
//! remains conservative: a key-space ball of the converted radius contains
//! the projection of the data-space ball.

/// Affine data-space → key-space transform with optional projection.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyMap {
    lo: Vec<f64>,
    inv_extent: Vec<f64>,
    /// Largest `1/extent` across key dimensions — used for conservative
    /// radius conversion.
    max_inv_extent: f64,
}

impl KeyMap {
    /// A map for `key_dim` key dimensions where every data coordinate is
    /// expected in `[lo, hi]`.
    pub fn uniform(key_dim: usize, lo: f64, hi: f64) -> Self {
        assert!(key_dim > 0, "key dimension must be positive");
        assert!(lo < hi, "invalid bounds {lo}..{hi}");
        Self::from_bounds(vec![lo; key_dim], vec![hi; key_dim])
    }

    /// A map with per-dimension bounds; `lo.len()` is the key dimension.
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound length mismatch");
        assert!(!lo.is_empty(), "key dimension must be positive");
        let inv_extent: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(l, h)| {
                assert!(l < h, "invalid bounds {l}..{h}");
                1.0 / (h - l)
            })
            .collect();
        let max_inv_extent = inv_extent.iter().fold(0.0f64, |a, &b| a.max(b));
        Self {
            lo,
            inv_extent,
            max_inv_extent,
        }
    }

    /// Number of key dimensions.
    pub fn key_dim(&self) -> usize {
        self.lo.len()
    }

    /// Map a data point to a key. Data with more coordinates than the key
    /// dimension is projected onto its first `key_dim` coordinates; fewer
    /// is an error. Out-of-bounds coordinates are clamped into `[0, 1)`.
    pub fn to_key(&self, data: &[f64]) -> Vec<f64> {
        assert!(
            data.len() >= self.key_dim(),
            "data dimension {} below key dimension {}",
            data.len(),
            self.key_dim()
        );
        self.lo
            .iter()
            .zip(&self.inv_extent)
            .zip(data)
            .map(|((l, inv), &x)| ((x - l) * inv).clamp(0.0, ONE_MINUS_EPS))
            .collect()
    }

    /// Like [`KeyMap::to_key`], but also report the **clamp slack**: the
    /// key-space Euclidean distance between the unclamped affine image of
    /// `data` and the returned (clamped) key. Zero whenever every
    /// coordinate maps inside `[0, 1)`.
    ///
    /// Clamping silently translates out-of-bounds points, so a key-space
    /// ball of radius `to_key_radius(r)` around a *clamped* key no longer
    /// covers the image of the data-space ball — the no-false-dismissal
    /// argument breaks for data outside the configured bounds. Widening
    /// the ball by the returned slack (on both the publish and the query
    /// side) restores the covering property: by the triangle inequality,
    /// `‖clamped − y‖ ≤ slack + ‖raw − y‖` for any image point `y`.
    pub fn to_key_slack(&self, data: &[f64]) -> (Vec<f64>, f64) {
        assert!(
            data.len() >= self.key_dim(),
            "data dimension {} below key dimension {}",
            data.len(),
            self.key_dim()
        );
        let mut slack_sq = 0.0;
        let key = self
            .lo
            .iter()
            .zip(&self.inv_extent)
            .zip(data)
            .map(|((l, inv), &x)| {
                let raw = (x - l) * inv;
                let clamped = raw.clamp(0.0, ONE_MINUS_EPS);
                let d = raw - clamped;
                slack_sq += d * d;
                clamped
            })
            .collect();
        (key, slack_sq.sqrt())
    }

    /// Conservatively convert a data-space radius to key space: scaled by
    /// the largest per-dimension `1/extent`, so the key-space ball always
    /// covers the image of the data-space ball (no false dismissals).
    pub fn to_key_radius(&self, r: f64) -> f64 {
        assert!(r >= 0.0, "negative radius {r}");
        r * self.max_inv_extent
    }

    /// Map a key back to the data subspace (inverse affine; lossy for
    /// projected dimensions, which simply do not appear).
    pub fn to_data(&self, key: &[f64]) -> Vec<f64> {
        assert_eq!(key.len(), self.key_dim(), "key dimension mismatch");
        self.lo
            .iter()
            .zip(&self.inv_extent)
            .zip(key)
            .map(|((l, inv), &k)| l + k / inv)
            .collect()
    }
}

/// Largest representable key coordinate below 1.0 (keys live in `[0,1)`).
const ONE_MINUS_EPS: f64 = 1.0 - 1e-12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_roundtrip() {
        let m = KeyMap::uniform(3, -2.0, 2.0);
        let key = m.to_key(&[-2.0, 0.0, 1.0]);
        assert!((key[0] - 0.0).abs() < 1e-9);
        assert!((key[1] - 0.5).abs() < 1e-9);
        assert!((key[2] - 0.75).abs() < 1e-9);
        let back = m.to_data(&key);
        for (a, b) in back.iter().zip(&[-2.0, 0.0, 1.0]) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn clamps_out_of_bounds() {
        let m = KeyMap::uniform(1, 0.0, 1.0);
        assert_eq!(m.to_key(&[-5.0])[0], 0.0);
        assert!(m.to_key(&[7.0])[0] < 1.0);
    }

    #[test]
    fn projection_takes_leading_coordinates() {
        let m = KeyMap::uniform(2, 0.0, 10.0);
        let key = m.to_key(&[5.0, 2.5, 99.0, 99.0]);
        assert_eq!(key.len(), 2);
        assert!((key[0] - 0.5).abs() < 1e-9);
        assert!((key[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn radius_conversion_is_conservative() {
        let m = KeyMap::from_bounds(vec![0.0, 0.0], vec![10.0, 2.0]);
        // Tightest dimension has extent 2 → factor 1/2.
        assert!((m.to_key_radius(1.0) - 0.5).abs() < 1e-12);
        // Any pair of points within data distance r maps within key
        // distance to_key_radius(r)·√? — check empirically on the axes.
        let a = m.to_key(&[5.0, 1.0]);
        let b = m.to_key(&[5.0, 1.0 + 1.0]); // distance 1 along tight axis
        let dk: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dk <= m.to_key_radius(1.0) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "below key dimension")]
    fn too_few_coordinates_rejected() {
        KeyMap::uniform(4, 0.0, 1.0).to_key(&[0.5, 0.5]);
    }

    #[test]
    fn slack_zero_in_bounds_and_key_matches_to_key() {
        let m = KeyMap::uniform(3, -1.0, 3.0);
        for data in [[-1.0, 0.0, 2.9], [0.5, 0.5, 0.5]] {
            let (key, slack) = m.to_key_slack(&data);
            assert_eq!(slack, 0.0);
            assert_eq!(key, m.to_key(&data));
        }
    }

    #[test]
    fn slack_measures_clamp_displacement() {
        // Bounds [0,1]; a point 0.5 above the upper bound in one dimension
        // is displaced by exactly 0.5 (≈, up to the open-interval epsilon)
        // in key space.
        let m = KeyMap::uniform(2, 0.0, 1.0);
        let (key, slack) = m.to_key_slack(&[1.5, 0.5]);
        assert_eq!(key, m.to_key(&[1.5, 0.5]));
        assert!((slack - 0.5).abs() < 1e-9, "slack {slack}");
        // Two displaced dimensions compose in L2.
        let (_, slack2) = m.to_key_slack(&[1.5, -0.5]);
        assert!(
            (slack2 - (2.0f64.sqrt() / 2.0)).abs() < 1e-9,
            "slack {slack2}"
        );
    }

    #[test]
    fn widened_radius_restores_covering() {
        // Regression for the clamp-slack bug: a centroid outside the
        // configured bounds is clamped; a ball of the plain converted
        // radius around the clamped key misses the image of in-ball data
        // points, while the slack-widened ball covers them.
        let m = KeyMap::uniform(1, 0.0, 1.0);
        let centroid = [1.4];
        let r = 0.1;
        let (ckey, slack) = m.to_key_slack(&centroid);
        // An item inside the data ball, also out of bounds; its unclamped
        // affine image is 1.45.
        let ikey_raw = 1.45;
        let plain = m.to_key_radius(r);
        assert!(
            (ikey_raw - ckey[0]).abs() > plain,
            "without widening the image escapes the key ball"
        );
        assert!((ikey_raw - ckey[0]).abs() <= plain + slack + 1e-12);
    }
}
