//! Host-side spatial index over CAN zones.
//!
//! The flooding operations in [`crate::ops`] decide, for every neighbour
//! edge they cross, whether the neighbour's zone overlaps a query ball —
//! an `O(d)` geometric test per edge, plus an `O(n)` visited bitmap per
//! flood. Neither affects the *simulated* cost model (hops are charged per
//! newly visited node, a function of the visited set only), but both
//! dominate host wall-clock on large overlays.
//!
//! [`ZoneIndex`] is a coarse uniform grid over the leading one or two key
//! dimensions. Each grid cell lists every node whose zone overlaps the
//! cell, so the set of zones possibly overlapping a query ball is found by
//! scanning only the cells under the ball's bounding box — sublinear in
//! the overlay size for local queries. The index is purely host-side
//! machinery: it changes which zones are *examined*, never which zones are
//! *visited*, so all simulated hop/message/byte counts are bit-identical
//! with and without it (asserted by the tests below).
//!
//! Zones never wrap the torus (they come from recursive halving of
//! `[0,1)^d`) and the overlap test used by floods
//! ([`crate::zone::Zone::intersects_sphere`]) is Euclidean, so the grid
//! does not need seam handling.

use crate::zone::Zone;

/// Grid cells per indexed dimension. 32 cells in 1-d / 32×32 in 2-d keeps
/// cell occupancy at a handful of zones for the network sizes the paper
/// simulates, while the whole structure stays a few kilobytes.
const GRID_RES: usize = 32;

/// A coarse uniform grid over the first `min(dim, 2)` key dimensions,
/// mapping cells to the nodes whose zones overlap them.
#[derive(Debug, Clone)]
pub struct ZoneIndex {
    /// Number of leading key dimensions the grid spans (1 or 2).
    dims: usize,
    /// Cells per indexed dimension.
    res: usize,
    /// `res^dims` buckets of node ids.
    cells: Vec<Vec<u32>>,
}

impl ZoneIndex {
    /// An empty index for a `dim`-dimensional key space.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let dims = dim.min(2);
        let res = GRID_RES;
        ZoneIndex {
            dims,
            res,
            cells: vec![Vec::new(); res.pow(dims as u32)],
        }
    }

    /// Inclusive cell range covered by the interval `[lo, hi)` in one
    /// dimension. Exact split boundaries (dyadic rationals) land exactly on
    /// cell edges, so `ceil(hi·res) − 1` excludes a cell the zone only
    /// touches at its open upper face.
    fn interval_cells(&self, lo: f64, hi: f64) -> (usize, usize) {
        let a = ((lo * self.res as f64).floor() as isize).clamp(0, self.res as isize - 1) as usize;
        let b = (((hi * self.res as f64).ceil() as isize) - 1)
            .clamp(a as isize, self.res as isize - 1) as usize;
        (a, b)
    }

    /// Inclusive cell range under `[lo, hi]` for a query box (closed on
    /// both sides: a ball touching a cell boundary may overlap zones on
    /// either side of it).
    fn query_cells(&self, lo: f64, hi: f64) -> (usize, usize) {
        let a = ((lo * self.res as f64).floor() as isize).clamp(0, self.res as isize - 1) as usize;
        let b = ((hi * self.res as f64).floor() as isize).clamp(a as isize, self.res as isize - 1)
            as usize;
        (a, b)
    }

    /// Every cell index under the zone's footprint.
    fn zone_cells(&self, zone: &Zone) -> Vec<usize> {
        let (x0, x1) = self.interval_cells(zone.lo()[0], zone.hi()[0]);
        let mut out = Vec::with_capacity(x1 - x0 + 1);
        if self.dims == 1 {
            out.extend(x0..=x1);
        } else {
            let (y0, y1) = self.interval_cells(zone.lo()[1], zone.hi()[1]);
            for x in x0..=x1 {
                for y in y0..=y1 {
                    out.push(x * self.res + y);
                }
            }
        }
        out
    }

    /// Register `id` under every cell its zone overlaps.
    pub fn insert(&mut self, id: u32, zone: &Zone) {
        for c in self.zone_cells(zone) {
            self.cells[c].push(id);
        }
    }

    /// Remove `id` from every cell of `zone` (the zone it was inserted
    /// with — callers must pass the *old* bounds when a zone shrinks).
    pub fn remove(&mut self, id: u32, zone: &Zone) {
        for c in self.zone_cells(zone) {
            if let Some(pos) = self.cells[c].iter().position(|&x| x == id) {
                self.cells[c].swap_remove(pos);
            }
        }
    }

    /// Node ids whose zones *may* overlap the Euclidean ball
    /// `(centre, radius)` — a superset of the true overlap set, sorted and
    /// deduplicated. Callers filter with the exact
    /// [`Zone::intersects_sphere`] test.
    pub fn candidates(&self, centre: &[f64], radius: f64) -> Vec<u32> {
        debug_assert!(centre.len() >= self.dims);
        let (x0, x1) = self.query_cells(centre[0] - radius, centre[0] + radius);
        let mut out = Vec::new();
        if self.dims == 1 {
            for x in x0..=x1 {
                out.extend_from_slice(&self.cells[x]);
            }
        } else {
            let (y0, y1) = self.query_cells(centre[1] - radius, centre[1] + radius);
            for x in x0..=x1 {
                for y in y0..=y1 {
                    out.extend_from_slice(&self.cells[x * self.res + y]);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Cells under `[lo, hi]` in one dimension, inflated by one cell on
    /// each side so zones merely *abutting* the box are found too, and
    /// wrapped across the 0/1 seam (CAN's neighbour relation wraps).
    fn abut_cells(&self, lo: f64, hi: f64) -> Vec<usize> {
        let cell = 1.0 / self.res as f64;
        let (a, b) = self.query_cells(lo - cell, hi + cell);
        let mut out: Vec<usize> = (a..=b).collect();
        if lo <= cell {
            out.push(self.res - 1);
        }
        if hi >= 1.0 - cell {
            out.push(0);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Node ids whose zones may overlap **or abut** the box `[lo, hi]`
    /// (including across the torus seam) — a superset of the geometric
    /// neighbours of a zone with those bounds, sorted and deduplicated.
    /// Callers filter with the exact [`Zone::is_neighbour`] test.
    pub fn box_candidates(&self, lo: &[f64], hi: &[f64]) -> Vec<u32> {
        debug_assert!(lo.len() >= self.dims && hi.len() >= self.dims);
        let xs = self.abut_cells(lo[0], hi[0]);
        let mut out = Vec::new();
        if self.dims == 1 {
            for &x in &xs {
                out.extend_from_slice(&self.cells[x]);
            }
        } else {
            let ys = self.abut_cells(lo[1], hi[1]);
            for &x in &xs {
                for &y in &ys {
                    out.extend_from_slice(&self.cells[x * self.res + y]);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every node id currently registered anywhere in the grid, sorted and
    /// deduplicated — the index's notion of the live membership, used by
    /// invariant checks to catch staleness.
    pub fn ids(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.cells.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_zone_is_everywhere() {
        let mut idx = ZoneIndex::new(2);
        idx.insert(0, &Zone::whole(2));
        for x in [0.0, 0.31, 0.99] {
            for y in [0.01, 0.5, 0.97] {
                assert_eq!(idx.candidates(&[x, y], 0.0), vec![0]);
            }
        }
    }

    #[test]
    fn candidates_superset_of_overlaps() {
        // Build a random-ish partition by repeated splits and check that
        // every zone overlapping a query ball is always enumerated.
        let mut zones = vec![Zone::whole(2)];
        for i in 0..40usize {
            let j = (i * 7) % zones.len();
            let z = zones.swap_remove(j);
            let (a, b) = z.split(z.longest_dim());
            zones.push(a);
            zones.push(b);
        }
        let mut idx = ZoneIndex::new(2);
        for (i, z) in zones.iter().enumerate() {
            idx.insert(i as u32, z);
        }
        for k in 0..50usize {
            let c = [(k as f64 * 0.37) % 1.0, (k as f64 * 0.61 + 0.13) % 1.0];
            let r = (k as f64 * 0.017) % 0.3;
            let cand = idx.candidates(&c, r);
            for (i, z) in zones.iter().enumerate() {
                if z.intersects_sphere(&c, r) {
                    assert!(
                        cand.binary_search(&(i as u32)).is_ok(),
                        "zone {i} overlaps ball {c:?} r={r} but was not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn remove_then_query_misses_it() {
        let mut idx = ZoneIndex::new(1);
        let z = Zone::from_bounds(vec![0.25], vec![0.5]);
        idx.insert(7, &z);
        assert_eq!(idx.candidates(&[0.3], 0.01), vec![7]);
        idx.remove(7, &z);
        assert!(idx.candidates(&[0.3], 0.01).is_empty());
    }

    #[test]
    fn query_ball_clipped_to_unit_box() {
        let mut idx = ZoneIndex::new(2);
        idx.insert(1, &Zone::from_bounds(vec![0.0, 0.0], vec![0.5, 0.5]));
        // Ball centred outside the unit box still finds boundary zones.
        assert_eq!(idx.candidates(&[-0.2, 0.1], 0.3), vec![1]);
        assert!(idx.candidates(&[1.4, 0.9], 0.2).is_empty());
    }
}
