//! CAN zones: axis-aligned boxes tiling the unit key space.
//!
//! Zones are produced by recursive halving of `[0,1)^d`, so they never wrap
//! around the torus themselves — but *distances* used for routing are torus
//! distances (CAN's key space is a d-torus). Object-overlap tests, in
//! contrast, use plain Euclidean geometry: application data spaces do not
//! wrap, and Hyper-M's no-false-dismissal argument is stated in Euclidean
//! terms. Both distance flavours are provided.

/// Per-coordinate distance from `x` to the interval `[lo, hi]` on the unit
/// circle (torus wrap).
#[inline]
fn circ_interval_dist(x: f64, lo: f64, hi: f64) -> f64 {
    if (lo..=hi).contains(&x) {
        return 0.0;
    }
    let d_lo = circ_dist(x, lo);
    let d_hi = circ_dist(x, hi);
    d_lo.min(d_hi)
}

/// Distance between two points on the unit circle.
#[inline]
fn circ_dist(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    d.min(1.0 - d)
}

/// An axis-aligned zone `∏ [lo_i, hi_i)` of the unit key space.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Zone {
    /// The whole unit key space in `dim` dimensions.
    pub fn whole(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            lo: vec![0.0; dim],
            hi: vec![1.0; dim],
        }
    }

    /// Construct from explicit bounds.
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound length mismatch");
        assert!(!lo.is_empty(), "dimension must be positive");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l < h, "degenerate zone: {l} >= {h}");
        }
        Self { lo, hi }
    }

    /// Dimensionality of the key space.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Zone volume (product of extents).
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Geometric centre of the zone.
    pub fn centre(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Whether the zone contains `point` (half-open box semantics, with the
    /// upper face closed only at the key-space boundary 1.0).
    pub fn contains(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(point)
            .all(|((l, h), &x)| x >= *l && (x < *h || (*h == 1.0 && x <= 1.0)))
    }

    /// Index of the longest dimension (ties → lowest index); CAN splits
    /// along it to keep zones squarish.
    pub fn longest_dim(&self) -> usize {
        let mut best = 0usize;
        let mut best_len = self.hi[0] - self.lo[0];
        for i in 1..self.dim() {
            let len = self.hi[i] - self.lo[i];
            if len > best_len + 1e-15 {
                best = i;
                best_len = len;
            }
        }
        best
    }

    /// Split in half along `dim`; returns (lower half, upper half).
    pub fn split(&self, dim: usize) -> (Zone, Zone) {
        assert!(dim < self.dim(), "split dimension out of range");
        let mid = 0.5 * (self.lo[dim] + self.hi[dim]);
        let mut lo_half = self.clone();
        let mut hi_half = self.clone();
        lo_half.hi[dim] = mid;
        hi_half.lo[dim] = mid;
        (lo_half, hi_half)
    }

    /// Torus distance from `point` to this zone (0 if inside) — the routing
    /// metric of CAN.
    pub fn torus_dist(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.dim());
        let mut acc = 0.0;
        for ((l, h), &x) in self.lo.iter().zip(&self.hi).zip(point) {
            let d = circ_interval_dist(x, *l, *h);
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Euclidean (non-wrapping) distance from `point` to this zone.
    pub fn euclid_dist(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.dim());
        let mut acc = 0.0;
        for ((l, h), &x) in self.lo.iter().zip(&self.hi).zip(point) {
            let d = if x < *l {
                l - x
            } else if x > *h {
                x - h
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Whether a Euclidean ball `(centre, radius)` overlaps this zone — the
    /// replication test of the paper's Figure 6.
    pub fn intersects_sphere(&self, centre: &[f64], radius: f64) -> bool {
        self.euclid_dist(centre) <= radius
    }

    /// Whether `other` lies entirely inside this zone (with tolerance).
    pub fn contains_zone(&self, other: &Zone) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| *bl >= al - 1e-12 && *bh <= ah + 1e-12)
    }

    /// Whether two zones describe the same box (with tolerance).
    pub fn same_box(&self, other: &Zone) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&other.lo)
            .chain(self.hi.iter().zip(&other.hi))
            .all(|(a, b)| (a - b).abs() < 1e-12)
    }

    /// Whether two zones overlap with positive volume.
    pub fn overlaps(&self, other: &Zone) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.hi[i].min(other.hi[i]) - self.lo[i].max(other.lo[i]) > 1e-12)
    }

    /// Split depth per dimension: `a_i` such that the extent along `i` is
    /// `2^-a_i`. `None` if any extent is not a (power-of-two) dyadic with
    /// dyadic-aligned bounds — which cannot happen for zones produced by
    /// CAN splits, where all arithmetic on powers of two is exact in f64.
    fn depth_profile(&self) -> Option<Vec<i32>> {
        let mut prof = Vec::with_capacity(self.dim());
        for i in 0..self.dim() {
            let ext = self.hi[i] - self.lo[i];
            if ext <= 0.0 {
                return None;
            }
            let a = (1.0 / ext).log2().round() as i32;
            if !(0..=60).contains(&a) || (2f64.powi(-a) - ext).abs() > ext * 1e-9 {
                return None;
            }
            // Bounds must sit on the 2^-a grid.
            let k = (self.lo[i] / ext).round();
            if (k * ext - self.lo[i]).abs() > 1e-12 {
                return None;
            }
            prof.push(a);
        }
        Some(prof)
    }

    /// The dimension this zone was halved along most recently.
    ///
    /// CAN's `longest_dim` rule (ties → lowest index) splits dimensions
    /// cyclically, so a valid zone's depth profile satisfies
    /// `a_0 ≥ a_1 ≥ … ≥ a_{d-1} ≥ a_0 − 1`, and the most recent split is
    /// along the *largest* index among the dimensions of maximal depth.
    /// `None` for the root zone (never split).
    pub fn last_split_dim(&self) -> Option<usize> {
        let prof = self.depth_profile()?;
        let max = *prof.iter().max()?;
        if max == 0 {
            return None;
        }
        prof.iter().rposition(|&a| a == max)
    }

    /// The zone this one was split out of (double the extent along the
    /// last split dimension). `None` for the root zone.
    pub fn parent(&self) -> Option<Zone> {
        let d = self.last_split_dim()?;
        let ext = self.hi[d] - self.lo[d];
        let k = (self.lo[d] / ext).round() as i64;
        let mut parent = self.clone();
        if k % 2 == 0 {
            parent.hi[d] = self.lo[d] + 2.0 * ext;
        } else {
            parent.lo[d] = self.hi[d] - 2.0 * ext;
        }
        Some(parent)
    }

    /// The other half of this zone's parent. `None` for the root zone.
    pub fn sibling(&self) -> Option<Zone> {
        let d = self.last_split_dim()?;
        let ext = self.hi[d] - self.lo[d];
        let k = (self.lo[d] / ext).round() as i64;
        let mut sib = self.clone();
        if k % 2 == 0 {
            sib.lo[d] = self.hi[d];
            sib.hi[d] = self.hi[d] + ext;
        } else {
            sib.hi[d] = self.lo[d];
            sib.lo[d] = self.lo[d] - ext;
        }
        Some(sib)
    }

    /// Merge with a sibling zone back into the parent. Only sibling merges
    /// are allowed: they are exactly the merges that keep every zone a node
    /// of the dyadic split tree (arbitrary face-mates can form an L-shaped
    /// union or a box no sequence of CAN splits produces).
    pub fn try_merge(&self, other: &Zone) -> Option<Zone> {
        let sib = self.sibling()?;
        if sib.same_box(other) {
            self.parent()
        } else {
            None
        }
    }

    /// Whether two zones abut: they share a (d−1)-dimensional face,
    /// including across the torus seam — CAN's neighbour relation.
    pub fn is_neighbour(&self, other: &Zone) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        let mut touching_dims = 0usize;
        for i in 0..self.dim() {
            let (al, ah) = (self.lo[i], self.hi[i]);
            let (bl, bh) = (other.lo[i], other.hi[i]);
            // Overlap length of the two intervals (non-wrapping boxes).
            let overlap = ah.min(bh) - al.max(bl);
            if overlap > 1e-12 {
                continue; // proper overlap in this dimension
            }
            // Abutting directly, or across the 0/1 seam.
            let abuts = (ah - bl).abs() < 1e-12
                || (bh - al).abs() < 1e-12
                || (ah >= 1.0 - 1e-12 && bl <= 1e-12)
                || (bh >= 1.0 - 1e-12 && al <= 1e-12);
            if abuts {
                touching_dims += 1;
            } else {
                return false; // separated in this dimension
            }
        }
        touching_dims == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_zone_basics() {
        let z = Zone::whole(3);
        assert_eq!(z.dim(), 3);
        assert_eq!(z.volume(), 1.0);
        assert_eq!(z.centre(), vec![0.5, 0.5, 0.5]);
        assert!(z.contains(&[0.0, 0.5, 0.999]));
        assert!(z.contains(&[1.0, 1.0, 1.0])); // closed at the space boundary
    }

    #[test]
    fn split_halves_volume() {
        let z = Zone::whole(2);
        let (a, b) = z.split(0);
        assert_eq!(a.volume(), 0.5);
        assert_eq!(b.volume(), 0.5);
        assert!(a.contains(&[0.25, 0.5]));
        assert!(!a.contains(&[0.75, 0.5]));
        assert!(b.contains(&[0.75, 0.5]));
        // Shared face makes them neighbours.
        assert!(a.is_neighbour(&b));
    }

    #[test]
    fn longest_dim_after_splits() {
        let z = Zone::whole(2);
        let (a, _) = z.split(0); // extent x = 0.5, y = 1.0
        assert_eq!(a.longest_dim(), 1);
        let (c, _) = a.split(1); // now square again: ties → dim 0
        assert_eq!(c.longest_dim(), 0);
    }

    #[test]
    fn torus_distance_wraps() {
        let z = Zone::from_bounds(vec![0.0, 0.0], vec![0.1, 1.0]);
        // Point at x = 0.95: direct distance 0.85, wrapped 0.05.
        let d = z.torus_dist(&[0.95, 0.5]);
        assert!((d - 0.05).abs() < 1e-12, "d = {d}");
        // Euclidean does not wrap.
        assert!((z.euclid_dist(&[0.95, 0.5]) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn distance_zero_inside() {
        let z = Zone::from_bounds(vec![0.2], vec![0.6]);
        assert_eq!(z.torus_dist(&[0.3]), 0.0);
        assert_eq!(z.euclid_dist(&[0.6]), 0.0);
    }

    #[test]
    fn sphere_overlap() {
        let z = Zone::from_bounds(vec![0.5, 0.5], vec![1.0, 1.0]);
        assert!(z.intersects_sphere(&[0.4, 0.4], 0.2)); // corner distance √2·0.1 ≈ 0.141
        assert!(!z.intersects_sphere(&[0.4, 0.4], 0.1));
        assert!(z.intersects_sphere(&[0.7, 0.7], 0.0)); // centre inside
    }

    #[test]
    fn neighbour_relation() {
        let z = Zone::whole(2);
        let (left, right) = z.split(0);
        let (left_bot, left_top) = left.split(1);
        assert!(left_bot.is_neighbour(&left_top));
        assert!(left_bot.is_neighbour(&right)); // shares the x=0.5 face segment
        assert!(left_top.is_neighbour(&right));
        // A zone is not its own neighbour (overlaps in every dim).
        assert!(!right.is_neighbour(&right));
    }

    #[test]
    fn corner_touch_is_not_neighbour() {
        let a = Zone::from_bounds(vec![0.0, 0.0], vec![0.5, 0.5]);
        let b = Zone::from_bounds(vec![0.5, 0.5], vec![1.0, 1.0]);
        // They abut in both dimensions (touch only at a corner).
        assert!(!a.is_neighbour(&b));
    }

    #[test]
    fn neighbours_across_torus_seam() {
        let a = Zone::from_bounds(vec![0.0, 0.0], vec![0.25, 1.0]);
        let b = Zone::from_bounds(vec![0.75, 0.0], vec![1.0, 1.0]);
        assert!(a.is_neighbour(&b)); // wrap in x, overlap in y
    }

    #[test]
    #[should_panic(expected = "degenerate zone")]
    fn degenerate_zone_rejected() {
        Zone::from_bounds(vec![0.5], vec![0.5]);
    }

    #[test]
    fn root_has_no_parent() {
        let z = Zone::whole(3);
        assert_eq!(z.last_split_dim(), None);
        assert!(z.parent().is_none());
        assert!(z.sibling().is_none());
    }

    #[test]
    fn split_children_merge_back() {
        let z = Zone::whole(2);
        let (a, b) = z.split(z.longest_dim());
        assert!(a.sibling().unwrap().same_box(&b));
        assert!(b.sibling().unwrap().same_box(&a));
        assert!(a.parent().unwrap().same_box(&z));
        assert!(a.try_merge(&b).unwrap().same_box(&z));
        assert!(b.try_merge(&a).unwrap().same_box(&z));
    }

    #[test]
    fn deep_split_chain_reconstructs_ancestry() {
        // Drive a zone down 12 levels in 3-d, checking parent/sibling at
        // every step against ground truth from the split itself.
        let mut z = Zone::whole(3);
        for step in 0..12usize {
            let d = z.longest_dim();
            assert_eq!(d, step % 3, "cyclic split order");
            let (a, b) = z.split(d);
            for half in [&a, &b] {
                assert_eq!(half.last_split_dim(), Some(d));
                assert!(half.parent().unwrap().same_box(&z));
            }
            assert!(a.sibling().unwrap().same_box(&b));
            assert!(a.try_merge(&b).unwrap().same_box(&z));
            // Descend into alternating halves.
            z = if step % 2 == 0 { a } else { b };
        }
    }

    #[test]
    fn non_siblings_do_not_merge() {
        let z = Zone::whole(2);
        let (left, right) = z.split(0);
        let (left_bot, left_top) = left.split(1);
        let (right_bot, _) = right.split(1);
        // Face-mates but not siblings: no merge.
        assert!(left_bot.try_merge(&right_bot).is_none());
        assert!(left_top.try_merge(&right_bot).is_none());
        // A zone does not merge with itself.
        assert!(left_bot.try_merge(&left_bot).is_none());
        // Real siblings do.
        assert!(left_bot.try_merge(&left_top).is_some());
    }

    #[test]
    fn containment_and_overlap() {
        let z = Zone::whole(2);
        let (a, b) = z.split(0);
        assert!(z.contains_zone(&a));
        assert!(z.contains_zone(&z));
        assert!(!a.contains_zone(&z));
        assert!(!a.overlaps(&b)); // abutting, zero shared volume
        assert!(z.overlaps(&a));
        assert!(a.same_box(&a));
        assert!(!a.same_box(&b));
    }
}
