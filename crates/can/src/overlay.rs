//! CAN nodes, bootstrap/join and greedy routing.
//!
//! The overlay follows the original CAN design: one zone per node, joins
//! split the zone containing a uniformly random point, and routing forwards
//! greedily to the neighbour whose zone is (torus-)closest to the target.
//! Hyper-M builds one such overlay per wavelet subspace over the *same*
//! device population.
//!
//! Neighbour lists are maintained incrementally on join: the new node's
//! neighbours are a subset of the split node's old neighbour set plus the
//! split node itself, so each join touches only the local neighbourhood —
//! no global recomputation.

use crate::ops::StoredObject;
use crate::zone::Zone;
use crate::zoneindex::ZoneIndex;
use hyperm_sim::{NodeId, OpStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Overlay construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanConfig {
    /// Key-space dimensionality.
    pub dim: usize,
    /// RNG seed for join points.
    pub seed: u64,
    /// Safety cap on greedy routing steps (diagnoses broken topologies).
    pub max_route_hops: u64,
}

impl CanConfig {
    /// Defaults for a `dim`-dimensional overlay.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            seed: 0,
            max_route_hops: 4096,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One participant: its zone, neighbour links and local object store.
#[derive(Debug, Clone)]
pub struct CanNode {
    /// Node identifier (dense index).
    pub id: NodeId,
    /// The key-space region this node owns.
    pub zone: Zone,
    /// Nodes whose zones abut this node's zone.
    pub neighbours: Vec<NodeId>,
    /// Objects stored here (owned or replicated).
    pub store: Vec<StoredObject>,
}

/// A complete CAN overlay.
#[derive(Debug, Clone)]
pub struct CanOverlay {
    config: CanConfig,
    nodes: Vec<CanNode>,
    bootstrap_stats: OpStats,
    pub(crate) next_object_id: u64,
    /// Host-side spatial index over zones (see [`crate::zoneindex`]):
    /// accelerates flood candidate enumeration without touching the
    /// simulated cost model.
    index: ZoneIndex,
}

impl CanOverlay {
    /// Build an overlay of `n` nodes by successive joins at random points.
    ///
    /// Join routing costs are accumulated into [`CanOverlay::bootstrap_stats`]
    /// (the paper charges data dissemination separately from the one-off
    /// structure construction, which related work [2, 5] parallelises).
    pub fn bootstrap(config: CanConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(config.dim > 0, "dimension must be positive");
        let mut index = ZoneIndex::new(config.dim);
        index.insert(0, &Zone::whole(config.dim));
        let mut overlay = CanOverlay {
            config,
            nodes: vec![CanNode {
                id: NodeId(0),
                zone: Zone::whole(config.dim),
                neighbours: Vec::new(),
                store: Vec::new(),
            }],
            bootstrap_stats: OpStats::zero(),
            next_object_id: 0,
            index,
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 1..n {
            let point: Vec<f64> = (0..config.dim).map(|_| rng.gen::<f64>()).collect();
            let entry = NodeId(rng.gen_range(0..overlay.nodes.len()));
            overlay.join(entry, &point);
        }
        overlay
    }

    /// Key-space dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay is empty (never true post-bootstrap).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &CanNode {
        &self.nodes[id.0]
    }

    /// Mutably borrow a node (used by the ops module).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut CanNode {
        &mut self.nodes[id.0]
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &CanNode> {
        self.nodes.iter()
    }

    /// Iterate mutably over all nodes (ops module).
    pub(crate) fn nodes_mut(&mut self) -> impl ExactSizeIterator<Item = &mut CanNode> {
        self.nodes.iter_mut()
    }

    /// Routing cost of all joins so far.
    pub fn bootstrap_stats(&self) -> OpStats {
        self.bootstrap_stats
    }

    /// The node whose zone contains `point`, by direct scan (ground truth
    /// for tests; real lookups go through [`CanOverlay::route`]).
    pub fn owner_of(&self, point: &[f64]) -> NodeId {
        self.nodes
            .iter()
            .find(|n| n.zone.contains(point))
            .map(|n| n.id)
            .expect("zones tile the space")
    }

    /// Greedy-route from `from` to the owner of `target`.
    ///
    /// Returns the owner and the per-hop cost (`msg_bytes` charged per
    /// forwarding step). Follows CAN's rule: forward to the neighbour whose
    /// zone is torus-closest to the target; ties break toward the lower
    /// node id. A visited set plus a hop cap guard against topology bugs.
    pub fn route(&self, from: NodeId, target: &[f64], msg_bytes: u64) -> (NodeId, OpStats) {
        assert_eq!(target.len(), self.config.dim, "target dimension mismatch");
        let mut current = from;
        let mut stats = OpStats::zero();
        let mut visited = vec![false; self.nodes.len()];
        visited[current.0] = true;
        for _ in 0..self.config.max_route_hops {
            let node = &self.nodes[current.0];
            if node.zone.contains(target) {
                return (current, stats);
            }
            let mut best: Option<(f64, NodeId)> = None;
            for &nb in &node.neighbours {
                if visited[nb.0] {
                    continue;
                }
                let d = self.nodes[nb.0].zone.torus_dist(target);
                let better = match best {
                    None => true,
                    Some((bd, bid)) => d < bd - 1e-15 || (d <= bd + 1e-15 && nb < bid),
                };
                if better {
                    best = Some((d, nb));
                }
            }
            let Some((_, next)) = best else {
                // All neighbours visited: fall back to the owner scan but
                // charge a full perimeter walk — this indicates a topology
                // anomaly and is asserted against in tests.
                debug_assert!(false, "greedy routing dead end at {current}");
                let owner = self.owner_of(target);
                stats += OpStats::one_hop(msg_bytes);
                return (owner, stats);
            };
            visited[next.0] = true;
            stats += OpStats::one_hop(msg_bytes);
            current = next;
        }
        panic!(
            "routing exceeded {} hops — broken overlay topology",
            self.config.max_route_hops
        );
    }

    /// Join a new node: choose the owner of `point`, split its zone, hand
    /// the half containing `point` to the newcomer.
    ///
    /// Returns the new node's id.
    pub fn join(&mut self, entry: NodeId, point: &[f64]) -> NodeId {
        // Join request routes like a normal message (small control packet).
        let (owner, stats) = self.route(entry, point, JOIN_MSG_BYTES);
        self.bootstrap_stats += stats;
        self.split_node(owner, point)
    }

    /// Split `owner`'s zone, assigning the half containing `point` to a new
    /// node. Object replicas are re-distributed by overlap; neighbour lists
    /// are patched locally.
    fn split_node(&mut self, owner: NodeId, point: &[f64]) -> NodeId {
        let new_id = NodeId(self.nodes.len());
        let (zone_a, zone_b) = {
            let z = &self.nodes[owner.0].zone;
            let dim = z.longest_dim();
            z.split(dim)
        };
        // The newcomer takes the half containing the join point.
        let (old_zone, new_zone) = if zone_b.contains(point) {
            (zone_a, zone_b)
        } else {
            (zone_b, zone_a)
        };

        // Re-distribute stored objects by overlap with the new halves.
        let old_store = std::mem::take(&mut self.nodes[owner.0].store);
        let mut keep = Vec::new();
        let mut moved = Vec::new();
        for obj in old_store {
            let in_old = old_zone.intersects_sphere(&obj.centre, obj.radius);
            let in_new = new_zone.intersects_sphere(&obj.centre, obj.radius);
            if in_new {
                moved.push(obj.clone());
            }
            if in_old || !in_new {
                // `!in_new` can only happen through floating-point edge
                // cases; never silently drop an object.
                keep.push(obj);
            }
        }

        // Candidate neighbourhood: the split node's old neighbours + itself.
        let mut candidates = self.nodes[owner.0].neighbours.clone();
        candidates.push(owner);

        // Keep the spatial index in step: the owner's footprint shrinks to
        // `old_zone`, the newcomer takes `new_zone`.
        self.index.remove(owner.0 as u32, &self.nodes[owner.0].zone);
        self.index.insert(owner.0 as u32, &old_zone);
        self.index.insert(new_id.0 as u32, &new_zone);

        self.nodes[owner.0].zone = old_zone;
        self.nodes[owner.0].store = keep;
        self.nodes.push(CanNode {
            id: new_id,
            zone: new_zone,
            neighbours: Vec::new(),
            store: moved,
        });

        // Patch neighbour lists within the affected neighbourhood.
        for &c in &candidates {
            if c != owner {
                // Does c still neighbour the (shrunk) owner?
                let still = self.nodes[c.0].zone.is_neighbour(&self.nodes[owner.0].zone);
                let list = &mut self.nodes[c.0].neighbours;
                if let Some(pos) = list.iter().position(|&x| x == owner) {
                    if !still {
                        list.swap_remove(pos);
                        let pos2 = self.nodes[owner.0]
                            .neighbours
                            .iter()
                            .position(|&x| x == c)
                            .expect("symmetric neighbour lists");
                        self.nodes[owner.0].neighbours.swap_remove(pos2);
                    }
                }
            }
            // Does c neighbour the new node?
            if self.nodes[c.0]
                .zone
                .is_neighbour(&self.nodes[new_id.0].zone)
            {
                self.nodes[c.0].neighbours.push(new_id);
                self.nodes[new_id.0].neighbours.push(c);
            }
        }
        new_id
    }

    /// Node ids whose zones overlap the Euclidean ball `(centre, radius)`,
    /// sorted ascending — the exact candidate set a flood can visit.
    ///
    /// Enumerated through the [`ZoneIndex`] grid (sublinear for local
    /// balls) and filtered with the same
    /// [`Zone::intersects_sphere`] predicate the floods used to evaluate
    /// per neighbour edge, so flood semantics — and therefore every
    /// simulated hop/message/byte count — are unchanged.
    pub(crate) fn flood_candidates(&self, centre: &[f64], radius: f64) -> Vec<u32> {
        let mut cand = self.index.candidates(centre, radius);
        cand.retain(|&id| {
            self.nodes[id as usize]
                .zone
                .intersects_sphere(centre, radius)
        });
        cand
    }

    /// Number of stored objects per node (replicas counted everywhere) —
    /// the occupancy histogram of Figure 9.
    pub fn store_sizes(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.store.len()).collect()
    }

    /// Sum of per-node stored item counts (replicas multiply-counted).
    pub fn stored_items_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.store.iter().map(|o| o.payload.items as u64).sum())
            .collect()
    }

    /// Verify structural invariants (zones tile the space, neighbour lists
    /// are symmetric and correct). Test-support; O(n²·d).
    pub fn check_invariants(&self) {
        let total_volume: f64 = self.nodes.iter().map(|n| n.zone.volume()).sum();
        assert!(
            (total_volume - 1.0).abs() < 1e-9,
            "zones do not tile: volume {total_volume}"
        );
        for a in &self.nodes {
            for b in &self.nodes {
                if a.id == b.id {
                    continue;
                }
                let listed = a.neighbours.contains(&b.id);
                let actual = a.zone.is_neighbour(&b.zone);
                assert_eq!(
                    listed, actual,
                    "neighbour list mismatch between {} and {}",
                    a.id, b.id
                );
            }
            // Symmetry.
            for &nb in &a.neighbours {
                assert!(
                    self.nodes[nb.0].neighbours.contains(&a.id),
                    "asymmetric neighbour link {} -> {}",
                    a.id,
                    nb
                );
            }
        }
    }
}

/// Size of a join/control packet in bytes (node id + target point).
pub(crate) const JOIN_MSG_BYTES: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_tiles_space() {
        for dim in [1usize, 2, 3, 5] {
            let overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(1), 32);
            overlay.check_invariants();
            assert_eq!(overlay.len(), 32);
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(2), 1);
        assert_eq!(overlay.owner_of(&[0.3, 0.9]), NodeId(0));
        let (owner, stats) = overlay.route(NodeId(0), &[0.99, 0.01], 10);
        assert_eq!(owner, NodeId(0));
        assert_eq!(stats.hops, 0);
    }

    #[test]
    fn routing_reaches_owner_from_anywhere() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(7), 64);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let target = [rng.gen::<f64>(), rng.gen::<f64>()];
            let from = NodeId(rng.gen_range(0..overlay.len()));
            let (owner, stats) = overlay.route(from, &target, 1);
            assert_eq!(owner, overlay.owner_of(&target));
            assert!(stats.hops < 64);
        }
    }

    #[test]
    fn routing_cost_scales_like_sqrt_n_in_2d() {
        // CAN theory: average path length Θ(√n) for d = 2. Just sanity-check
        // the order of magnitude.
        let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(11), 100);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total_hops = 0u64;
        let trials = 300;
        for _ in 0..trials {
            let target = [rng.gen::<f64>(), rng.gen::<f64>()];
            let from = NodeId(rng.gen_range(0..overlay.len()));
            total_hops += overlay.route(from, &target, 1).1.hops;
        }
        let avg = total_hops as f64 / trials as f64;
        assert!(avg > 1.0 && avg < 20.0, "avg hops {avg}");
    }

    #[test]
    fn high_dimensional_overlay_works() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(16).with_seed(13), 40);
        overlay.check_invariants();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let target: Vec<f64> = (0..16).map(|_| rng.gen::<f64>()).collect();
            let (owner, _) = overlay.route(NodeId(0), &target, 1);
            assert_eq!(owner, overlay.owner_of(&target));
        }
    }

    #[test]
    fn join_splits_the_right_zone() {
        let mut overlay = CanOverlay::bootstrap(CanConfig::new(2), 1);
        let new = overlay.join(NodeId(0), &[0.9, 0.9]);
        assert_eq!(overlay.len(), 2);
        assert!(overlay.node(new).zone.contains(&[0.9, 0.9]));
        assert!(!overlay.node(NodeId(0)).zone.contains(&[0.9, 0.9]));
        overlay.check_invariants();
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let a = CanOverlay::bootstrap(CanConfig::new(3).with_seed(21), 20);
        let b = CanOverlay::bootstrap(CanConfig::new(3).with_seed(21), 20);
        for i in 0..20 {
            assert_eq!(a.node(NodeId(i)).zone, b.node(NodeId(i)).zone);
        }
        assert_eq!(a.bootstrap_stats(), b.bootstrap_stats());
    }

    #[test]
    fn bootstrap_stats_grow_with_network() {
        let small = CanOverlay::bootstrap(CanConfig::new(2).with_seed(2), 8);
        let large = CanOverlay::bootstrap(CanConfig::new(2).with_seed(2), 64);
        assert!(large.bootstrap_stats().hops > small.bootstrap_stats().hops);
    }

    #[test]
    fn zone_volumes_are_plausibly_balanced() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(31), 128);
        let vols: Vec<f64> = overlay.nodes().map(|n| n.zone.volume()).collect();
        let max = vols.iter().cloned().fold(0.0f64, f64::max);
        let min = vols.iter().cloned().fold(1.0f64, f64::min);
        // Random splits give ratios of a few powers of two, not thousands.
        assert!(max / min <= 64.0, "volume skew {max}/{min}");
    }
}
