//! CAN nodes, bootstrap/join and greedy routing.
//!
//! The overlay follows the original CAN design: one zone per node, joins
//! split the zone containing a uniformly random point, and routing forwards
//! greedily to the neighbour whose zone is (torus-)closest to the target.
//! Hyper-M builds one such overlay per wavelet subspace over the *same*
//! device population.
//!
//! Neighbour lists are maintained incrementally on join: the new node's
//! neighbours are a subset of the split node's old neighbour set plus the
//! split node itself, so each join touches only the local neighbourhood —
//! no global recomputation.

// hyperm-lint: allow-file(panic-index) — node ids are dense indices into self.nodes by construction, and zone/neighbour offsets come from checked position() hits
use crate::ops::StoredObject;
use crate::zone::Zone;
use crate::zoneindex::ZoneIndex;
use hyperm_sim::{FaultConfig, FaultInjector, FaultReport, LoadProbe, NodeId, OpStats};
use hyperm_telemetry::{names, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Overlay construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanConfig {
    /// Key-space dimensionality.
    pub dim: usize,
    /// RNG seed for join points.
    pub seed: u64,
    /// Safety cap on greedy routing steps (diagnoses broken topologies).
    pub max_route_hops: u64,
}

impl CanConfig {
    /// Defaults for a `dim`-dimensional overlay.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            seed: 0,
            max_route_hops: 4096,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One participant: its zone(s), neighbour links and local object store.
#[derive(Debug, Clone)]
pub struct CanNode {
    /// Node identifier (dense index).
    pub id: NodeId,
    /// The primary key-space region this node owns (stale once the node is
    /// no longer alive — dead nodes own nothing).
    pub zone: Zone,
    /// Extra zone fragments adopted during failure takeover, merged back
    /// into primaries by the background repair loop (see `crate::repair`).
    pub adopted: Vec<Zone>,
    /// Whether the node participates in the overlay. Dead slots stay in
    /// the node table so ids remain dense, but own no zones and appear in
    /// no neighbour list.
    pub alive: bool,
    /// Nodes whose zones abut any of this node's zones.
    pub neighbours: Vec<NodeId>,
    /// Objects stored here (owned or replicated).
    pub store: Vec<StoredObject>,
}

impl CanNode {
    /// Every zone this node currently owns: the primary plus any adopted
    /// fragments. Empty for dead nodes.
    pub fn zones(&self) -> impl Iterator<Item = &Zone> {
        let count = if self.alive {
            1 + self.adopted.len()
        } else {
            0
        };
        std::iter::once(&self.zone)
            .chain(self.adopted.iter())
            .take(count)
    }

    /// Whether any owned zone contains `point` (false for dead nodes).
    pub fn covers(&self, point: &[f64]) -> bool {
        self.zones().any(|z| z.contains(point))
    }

    /// Torus distance from `point` to the nearest owned zone (∞ for dead
    /// nodes) — the routing metric.
    pub fn torus_dist(&self, point: &[f64]) -> f64 {
        self.zones()
            .map(|z| z.torus_dist(point))
            .fold(f64::INFINITY, f64::min)
    }

    /// Total volume of the owned zones (0 for dead nodes).
    pub fn total_volume(&self) -> f64 {
        self.zones().map(Zone::volume).sum()
    }

    /// Whether any owned zone overlaps the Euclidean ball.
    pub fn intersects_sphere(&self, centre: &[f64], radius: f64) -> bool {
        self.zones().any(|z| z.intersects_sphere(centre, radius))
    }
}

/// Interior-mutable slot for the optional fault injector: route/flood take
/// `&self` yet fault rolls mutate RNG state, and the overlay must stay
/// `Sync` for the parallel query paths. Cloning an overlay snapshots the
/// injector state.
#[derive(Debug, Default)]
pub(crate) struct FaultSlot(Option<Mutex<FaultInjector>>);

impl Clone for FaultSlot {
    fn clone(&self) -> Self {
        FaultSlot(
            self.0
                .as_ref()
                // hyperm-lint: allow(panic-unwrap) — mutex poison only follows a panic elsewhere; propagating it is correct
                .map(|m| Mutex::new(m.lock().expect("fault injector poisoned").clone())),
        )
    }
}

/// How a routing attempt terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The message reached the owner of the target point.
    Delivered,
    /// No further progress was possible: every useful neighbour was dead,
    /// unreachable, or already tried (hole in an unrepaired topology or
    /// fault-induced).
    DeadEnd,
    /// The hop cap was hit (pathological topology guard).
    HopLimit,
}

/// Result of [`CanOverlay::route_result`]: where the walk ended and what
/// it cost. Every route terminates with an explicit outcome — queries on
/// damaged overlays degrade instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteResult {
    /// The owner on delivery; the last node reached otherwise.
    pub node: NodeId,
    /// How the walk terminated.
    pub outcome: RouteOutcome,
    /// Message cost, including retransmissions (`retries`) and a
    /// `failed_routes` tick when the walk did not deliver.
    pub stats: OpStats,
    /// Sim-time ticks on the critical path (hops stretched by retry and
    /// delay timelines).
    pub rounds: u64,
}

/// A complete CAN overlay.
#[derive(Debug, Clone)]
pub struct CanOverlay {
    config: CanConfig,
    nodes: Vec<CanNode>,
    bootstrap_stats: OpStats,
    pub(crate) next_object_id: u64,
    /// Host-side spatial index over zones (see [`crate::zoneindex`]):
    /// accelerates flood candidate enumeration without touching the
    /// simulated cost model. Registers every fragment of every alive node
    /// and is updated on join/leave/fail/repair, so it is never stale.
    index: ZoneIndex,
    /// Number of dead slots in `nodes`.
    dead: usize,
    /// Optional message-level fault injection (queries only).
    faults: FaultSlot,
    /// Active network partition, as a dense node → component map (see
    /// `hyperm_sim::PartitionPlan::component_map`). While installed,
    /// links between nodes in different components are severed: routing
    /// and floods treat the far side like dead nodes, but reversibly —
    /// clearing the map heals every link at once. `None` = fully
    /// connected (the default; zero-cost on the routing hot path).
    partition: Option<Vec<u32>>,
    /// Tracing handle (disabled by default — provably free). Installed
    /// per level by the network layer via [`CanOverlay::set_recorder`];
    /// events attach to whatever span the caller pointed the handle's
    /// scope at (see `hyperm_telemetry::Recorder::set_scope`).
    telemetry: Recorder,
    /// Per-peer load attribution hook (disabled by default — free).
    /// Installed per level by the network layer via
    /// [`CanOverlay::set_load_probe`]; charging is strictly observational
    /// and never changes results, costs or telemetry.
    pub(crate) load: LoadProbe,
}

impl CanOverlay {
    /// Build an overlay of `n` nodes by successive joins at random points.
    ///
    /// Join routing costs are accumulated into [`CanOverlay::bootstrap_stats`]
    /// (the paper charges data dissemination separately from the one-off
    /// structure construction, which related work [2, 5] parallelises).
    pub fn bootstrap(config: CanConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(config.dim > 0, "dimension must be positive");
        let mut index = ZoneIndex::new(config.dim);
        index.insert(0, &Zone::whole(config.dim));
        let mut overlay = CanOverlay {
            config,
            nodes: vec![CanNode {
                id: NodeId(0),
                zone: Zone::whole(config.dim),
                adopted: Vec::new(),
                alive: true,
                neighbours: Vec::new(),
                store: Vec::new(),
            }],
            bootstrap_stats: OpStats::zero(),
            next_object_id: 0,
            index,
            dead: 0,
            faults: FaultSlot::default(),
            partition: None,
            telemetry: Recorder::disabled(),
            load: LoadProbe::disabled(),
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 1..n {
            let point: Vec<f64> = (0..config.dim).map(|_| rng.gen::<f64>()).collect();
            let entry = NodeId(rng.gen_range(0..overlay.nodes.len()));
            overlay.join(entry, &point);
        }
        overlay
    }

    /// Key-space dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay is empty (never true post-bootstrap).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &CanNode {
        &self.nodes[id.0]
    }

    /// Mutably borrow a node (used by the ops module).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut CanNode {
        &mut self.nodes[id.0]
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &CanNode> {
        self.nodes.iter()
    }

    /// Iterate mutably over all nodes (ops module).
    pub(crate) fn nodes_mut(&mut self) -> impl ExactSizeIterator<Item = &mut CanNode> {
        self.nodes.iter_mut()
    }

    /// Routing cost of all joins so far.
    pub fn bootstrap_stats(&self) -> OpStats {
        self.bootstrap_stats
    }

    /// Whether a node participates in the overlay.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.0].alive
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.len() - self.dead
    }

    /// Ids of all alive nodes, ascending.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.id)
            .collect()
    }

    /// The alive node owning `point`, by direct scan, or `None` if the
    /// point falls into a hole left by an unrepaired failure.
    pub fn try_owner_of(&self, point: &[f64]) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.covers(point)).map(|n| n.id)
    }

    /// The node whose zone contains `point`, by direct scan (ground truth
    /// for tests; real lookups go through [`CanOverlay::route`]). Panics on
    /// unrepaired holes — use [`CanOverlay::try_owner_of`] under damage.
    pub fn owner_of(&self, point: &[f64]) -> NodeId {
        // hyperm-lint: allow(panic-unwrap) — documented contract: infallible owner_of requires tiled zones; damage-aware callers use try_owner_of
        self.try_owner_of(point).expect("zones tile the space")
    }

    /// Install (or clear) message-level fault injection for query routing
    /// and flooding. Publishes and control traffic stay reliable: the
    /// soft-state model assumes republishes eventually succeed, faults
    /// model the per-query radio losses.
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        self.faults = FaultSlot(cfg.map(|c| Mutex::new(FaultInjector::new(c))));
    }

    /// Install (or clear) a network partition: a dense node → component
    /// map (`hyperm_sim::PartitionPlan::component_map`). Nodes appended
    /// after the map was built (beyond its length) are treated as severed
    /// from everyone — install a fresh map after joins if that matters.
    pub fn set_partition(&mut self, map: Option<Vec<u32>>) {
        self.partition = map;
    }

    /// Whether a partition map is currently installed.
    pub fn partition_active(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether `a` and `b` can exchange messages under the active
    /// partition (always true when none is installed).
    pub(crate) fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            None => true,
            Some(map) => {
                a == b
                    || matches!(
                        (map.get(a.0), map.get(b.0)),
                        (Some(ca), Some(cb)) if ca == cb
                    )
            }
        }
    }

    /// Install a tracing/metrics handle (usually one scoped per wavelet
    /// level — see `hyperm_telemetry::Recorder::scoped`). Pass
    /// `Recorder::disabled()` to turn tracing off again.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.telemetry = rec;
    }

    /// The overlay's tracing handle. Callers point its scope at the span
    /// overlay-internal events (route hops, flood edges, fault drops)
    /// should attach to before invoking an operation.
    pub fn recorder(&self) -> &Recorder {
        &self.telemetry
    }

    /// Install a per-peer load attribution probe (usually one per wavelet
    /// level — see `hyperm_sim::LoadProbe::new`). Pass
    /// `LoadProbe::disabled()` to turn accounting off again.
    pub fn set_load_probe(&mut self, probe: LoadProbe) {
        self.load = probe;
    }

    /// The overlay's load probe (disabled by default).
    pub fn load_probe(&self) -> &LoadProbe {
        &self.load
    }

    /// Fault counters accumulated so far (`None` when injection is off).
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.faults
            .0
            .as_ref()
            // hyperm-lint: allow(panic-unwrap) — mutex poison only follows a panic elsewhere; propagating it is correct
            .map(|m| m.lock().expect("fault injector poisoned").report())
    }

    /// Resolve one hop against the injector, if any. Returns
    /// `(delivered, attempts, ticks)`; the no-fault path is `(true, 1, 1)`.
    pub(crate) fn fault_hop(&self) -> (bool, u64, u64) {
        match &self.faults.0 {
            None => (true, 1, 1),
            Some(m) => {
                // hyperm-lint: allow(panic-unwrap) — mutex poison only follows a panic elsewhere; propagating it is correct
                let mut inj = m.lock().expect("fault injector poisoned");
                match inj.hop() {
                    hyperm_sim::HopDelivery::Delivered { attempts, ticks } => {
                        (true, attempts as u64, ticks)
                    }
                    hyperm_sim::HopDelivery::Unreachable { attempts, ticks } => {
                        (false, attempts as u64, ticks)
                    }
                }
            }
        }
    }

    /// Greedy-route from `from` to the owner of `target`, with an explicit
    /// outcome — never panics on damaged topologies.
    ///
    /// Follows CAN's rule: forward to the alive neighbour whose zones are
    /// torus-closest to the target; ties break toward the lower node id.
    /// With fault injection active, each forwarding hop may be retried
    /// (drops) or abandoned (dead recipient / retry exhaustion) — an
    /// abandoned hop marks the next node as visited and the walk reroutes
    /// around it.
    ///
    /// `msg_bytes` is charged once per transmission attempt; `rounds` is
    /// the hop count stretched by retry/delay ticks (sim-time latency).
    pub fn route_result(&self, from: NodeId, target: &[f64], msg_bytes: u64) -> RouteResult {
        self.route_result_with(from, target, msg_bytes, true)
    }

    /// [`CanOverlay::route_result`] with fault injection optionally
    /// suppressed: join traffic and legacy publishes use reliable
    /// (acknowledged) transport in the cost model; query routing and the
    /// fallible publish path roll faults.
    pub(crate) fn route_result_with(
        &self,
        from: NodeId,
        target: &[f64],
        msg_bytes: u64,
        with_faults: bool,
    ) -> RouteResult {
        assert_eq!(target.len(), self.config.dim, "target dimension mismatch");
        let tel = &self.telemetry;
        let traced = tel.is_enabled();
        let mut stats = OpStats::zero();
        let mut rounds = 0u64;
        if !self.nodes[from.0].alive {
            stats.failed_routes += 1;
            if traced {
                tel.event(
                    tel.scope(),
                    names::DEAD_END,
                    vec![("at", from.0.into()), ("reason", "origin_dead".into())],
                );
            }
            return RouteResult {
                node: from,
                outcome: RouteOutcome::DeadEnd,
                stats,
                rounds,
            };
        }
        let mut current = from;
        let mut visited = vec![false; self.nodes.len()];
        visited[current.0] = true;
        for _ in 0..self.config.max_route_hops {
            let node = &self.nodes[current.0];
            if node.covers(target) {
                return RouteResult {
                    node: current,
                    outcome: RouteOutcome::Delivered,
                    stats,
                    rounds,
                };
            }
            let mut best: Option<(f64, NodeId)> = None;
            for &nb in &node.neighbours {
                if visited[nb.0] || !self.nodes[nb.0].alive || !self.reachable(current, nb) {
                    continue;
                }
                let d = self.nodes[nb.0].torus_dist(target);
                let better = match best {
                    None => true,
                    Some((bd, bid)) => d < bd - 1e-15 || (d <= bd + 1e-15 && nb < bid),
                };
                if better {
                    best = Some((d, nb));
                }
            }
            let Some((_, next)) = best else {
                // Every neighbour visited or dead. Greedy can corner
                // itself in rare geometries even when the tiling is
                // complete; without fault injection the historical
                // behaviour (owner scan charged as one hop) is kept, so
                // fault-free routing on a repaired topology always
                // delivers. Only a genuine hole (unrepaired failure),
                // injected faults, or an active network partition (the
                // scan must not teleport across severed links) produce a
                // dead end.
                if (!with_faults || self.faults.0.is_none()) && self.partition.is_none() {
                    if let Some(owner) = self.try_owner_of(target) {
                        stats += OpStats::one_hop(msg_bytes);
                        if traced {
                            tel.event(
                                tel.scope(),
                                names::ROUTE_HOP,
                                vec![
                                    ("from", current.0.into()),
                                    ("to", owner.0.into()),
                                    ("direct", true.into()),
                                ],
                            );
                        }
                        return RouteResult {
                            node: owner,
                            outcome: RouteOutcome::Delivered,
                            stats,
                            rounds: rounds + 1,
                        };
                    }
                }
                stats.failed_routes += 1;
                if traced {
                    tel.event(
                        tel.scope(),
                        names::DEAD_END,
                        vec![("at", current.0.into()), ("reason", "no_neighbour".into())],
                    );
                }
                return RouteResult {
                    node: current,
                    outcome: RouteOutcome::DeadEnd,
                    stats,
                    rounds,
                };
            };
            let (delivered, attempts, ticks) = if with_faults {
                self.fault_hop()
            } else {
                (true, 1, 1)
            };
            stats.messages += attempts;
            stats.bytes += attempts * msg_bytes;
            stats.retries += attempts.saturating_sub(1);
            // Retransmissions are paid by the hop sender `current`,
            // never also by the receiver.
            self.load.retries(current.0, attempts.saturating_sub(1));
            rounds += ticks;
            if traced && attempts > 1 {
                tel.event(
                    tel.scope(),
                    names::RETRY,
                    vec![
                        ("from", current.0.into()),
                        ("to", next.0.into()),
                        ("attempts", attempts.into()),
                    ],
                );
            }
            if !delivered {
                // Reroute around the unreachable neighbour: mark it
                // visited without moving there.
                if traced {
                    tel.event(
                        tel.scope(),
                        names::DROP,
                        vec![("from", current.0.into()), ("to", next.0.into())],
                    );
                }
                visited[next.0] = true;
                continue;
            }
            stats.hops += 1;
            if traced {
                tel.event(
                    tel.scope(),
                    names::ROUTE_HOP,
                    vec![("from", current.0.into()), ("to", next.0.into())],
                );
            }
            visited[next.0] = true;
            current = next;
        }
        stats.failed_routes += 1;
        if traced {
            tel.event(
                tel.scope(),
                names::DEAD_END,
                vec![("at", current.0.into()), ("reason", "hop_limit".into())],
            );
        }
        RouteResult {
            node: current,
            outcome: RouteOutcome::HopLimit,
            stats,
            rounds,
        }
    }

    /// Greedy-route from `from` to the owner of `target` (legacy
    /// infallible interface used by joins and publishes).
    ///
    /// Returns the owner and the per-hop cost (`msg_bytes` charged per
    /// forwarding step). Panics if the route cannot terminate at an owner —
    /// publish paths run on repaired topologies where that cannot happen;
    /// query paths use [`CanOverlay::route_result`] instead.
    pub fn route(&self, from: NodeId, target: &[f64], msg_bytes: u64) -> (NodeId, OpStats) {
        let out = self.route_result_with(from, target, msg_bytes, false);
        match out.outcome {
            RouteOutcome::Delivered => (out.node, out.stats),
            RouteOutcome::DeadEnd => {
                // hyperm-lint: allow(panic-explicit) — documented contract: infallible route() is only for repaired topologies; fallible callers use route_result
                panic!("route to owner failed: dead end at {}", out.node)
            }
            // hyperm-lint: allow(panic-explicit) — same contract as the dead-end arm above
            RouteOutcome::HopLimit => panic!(
                "routing exceeded {} hops — broken overlay topology",
                self.config.max_route_hops
            ),
        }
    }

    /// Join a new node: choose the owner of `point`, split its zone, hand
    /// the half containing `point` to the newcomer.
    ///
    /// Returns the new node's id.
    pub fn join(&mut self, entry: NodeId, point: &[f64]) -> NodeId {
        // Join request routes like a normal message (small control packet).
        let (owner, stats) = self.route(entry, point, JOIN_MSG_BYTES);
        self.bootstrap_stats += stats;
        self.split_node(owner, point)
    }

    /// Split the zone of `owner` containing `point`, assigning the half
    /// containing `point` to a new node. Object replicas are
    /// re-distributed by overlap; neighbour lists are patched locally.
    fn split_node(&mut self, owner: NodeId, point: &[f64]) -> NodeId {
        assert!(self.nodes[owner.0].alive, "cannot split a dead node");
        let new_id = NodeId(self.nodes.len());
        // Which of the owner's zones holds the point? Usually the primary;
        // an adopted fragment only while a repair is still in flight.
        let split_adopted = if self.nodes[owner.0].zone.contains(point) {
            None
        } else {
            Some(
                self.nodes[owner.0]
                    .adopted
                    .iter()
                    .position(|z| z.contains(point))
                    // hyperm-lint: allow(panic-unwrap) — owner_of postcondition: the owner covers the join point in primary or an adopted zone
                    .expect("owner covers the join point"),
            )
        };
        let split_zone = match split_adopted {
            None => self.nodes[owner.0].zone.clone(),
            Some(i) => self.nodes[owner.0].adopted[i].clone(),
        };
        let (zone_a, zone_b) = split_zone.split(split_zone.longest_dim());
        // The newcomer takes the half containing the join point.
        let (old_zone, new_zone) = if zone_b.contains(point) {
            (zone_a, zone_b)
        } else {
            (zone_b, zone_a)
        };

        // Re-distribute stored objects by overlap with the new halves
        // (replicas covering the owner's other zones always stay).
        let old_store = std::mem::take(&mut self.nodes[owner.0].store);
        let mut keep = Vec::new();
        let mut moved = Vec::new();
        for obj in old_store {
            let in_old = old_zone.intersects_sphere(&obj.centre, obj.radius)
                || self.nodes[owner.0]
                    .zones()
                    .filter(|z| !z.same_box(&split_zone))
                    .any(|z| z.intersects_sphere(&obj.centre, obj.radius));
            let in_new = new_zone.intersects_sphere(&obj.centre, obj.radius);
            if in_new {
                moved.push(obj.clone());
            }
            if in_old || !in_new {
                // `!in_new` can only happen through floating-point edge
                // cases; never silently drop an object.
                keep.push(obj);
            }
        }

        // Candidate neighbourhood: the split node's old neighbours + itself.
        let mut candidates = self.nodes[owner.0].neighbours.clone();
        candidates.push(owner);

        // Keep the spatial index in step: the owner's split zone shrinks to
        // `old_zone`, the newcomer takes `new_zone`.
        self.index.remove(owner.0 as u32, &split_zone);
        self.index.insert(owner.0 as u32, &old_zone);
        self.index.insert(new_id.0 as u32, &new_zone);

        match split_adopted {
            None => self.nodes[owner.0].zone = old_zone,
            Some(i) => self.nodes[owner.0].adopted[i] = old_zone,
        }
        self.nodes[owner.0].store = keep;
        self.nodes.push(CanNode {
            id: new_id,
            zone: new_zone,
            adopted: Vec::new(),
            alive: true,
            neighbours: Vec::new(),
            store: moved,
        });

        // Patch neighbour lists within the affected neighbourhood.
        for &c in &candidates {
            if c != owner {
                // Does c still neighbour the (shrunk) owner?
                let still = self.nodes_abut(c, owner);
                let list = &mut self.nodes[c.0].neighbours;
                if let Some(pos) = list.iter().position(|&x| x == owner) {
                    if !still {
                        list.swap_remove(pos);
                        let pos2 = self.nodes[owner.0]
                            .neighbours
                            .iter()
                            .position(|&x| x == c)
                            // hyperm-lint: allow(panic-unwrap) — neighbour lists are kept symmetric by every mutation in this module
                            .expect("symmetric neighbour lists");
                        self.nodes[owner.0].neighbours.swap_remove(pos2);
                    }
                }
            }
            // Does c neighbour the new node?
            if self.nodes_abut(c, new_id) {
                self.nodes[c.0].neighbours.push(new_id);
                self.nodes[new_id.0].neighbours.push(c);
            }
        }
        new_id
    }

    /// Whether two (alive) nodes share a face through any zone pair —
    /// the neighbour relation generalised to multi-fragment nodes.
    pub(crate) fn nodes_abut(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        self.nodes[a.0]
            .zones()
            .any(|za| self.nodes[b.0].zones().any(|zb| za.is_neighbour(zb)))
    }

    /// Recompute the neighbour lists of `affected` nodes from geometry
    /// (via the spatial index), patching the other end of every changed
    /// link so symmetry is preserved. Used by the repair paths, where zone
    /// transfers invalidate whole neighbourhoods at once.
    pub(crate) fn refresh_neighbours(&mut self, affected: &[NodeId]) {
        let mut seen = vec![false; self.nodes.len()];
        let mut ids: Vec<NodeId> = Vec::new();
        for &id in affected {
            if !seen[id.0] {
                seen[id.0] = true;
                ids.push(id);
            }
        }
        for &id in &ids {
            // Candidate set: everything registered near any owned zone.
            let mut cand: Vec<u32> = Vec::new();
            for z in self.nodes[id.0].zones() {
                cand.extend(self.index.box_candidates(z.lo(), z.hi()));
            }
            cand.sort_unstable();
            cand.dedup();
            let new_list: Vec<NodeId> = cand
                .into_iter()
                .map(|c| NodeId(c as usize))
                .filter(|&c| self.nodes[c.0].alive && self.nodes_abut(id, c))
                .collect();
            // Patch the reverse links of everything that changed.
            let old_list = std::mem::take(&mut self.nodes[id.0].neighbours);
            for &old in &old_list {
                if !new_list.contains(&old) {
                    let list = &mut self.nodes[old.0].neighbours;
                    if let Some(pos) = list.iter().position(|&x| x == id) {
                        list.swap_remove(pos);
                    }
                }
            }
            for &new in &new_list {
                if !self.nodes[new.0].neighbours.contains(&id) {
                    self.nodes[new.0].neighbours.push(id);
                }
            }
            self.nodes[id.0].neighbours = new_list;
        }
    }

    /// Detach a node from the overlay structure: mark it dead, deregister
    /// all its zones from the index, and drop every neighbour link in both
    /// directions. Returns the zones it owned and its old neighbour set.
    /// The store is left in place for the caller to transfer or discard.
    pub(crate) fn detach(&mut self, id: NodeId) -> (Vec<Zone>, Vec<NodeId>) {
        assert!(self.nodes[id.0].alive, "node {id} is already dead");
        let zones: Vec<Zone> = self.nodes[id.0].zones().cloned().collect();
        for z in &zones {
            self.index.remove(id.0 as u32, z);
        }
        let old_neighbours = std::mem::take(&mut self.nodes[id.0].neighbours);
        for &nb in &old_neighbours {
            let list = &mut self.nodes[nb.0].neighbours;
            if let Some(pos) = list.iter().position(|&x| x == id) {
                list.swap_remove(pos);
            }
        }
        self.nodes[id.0].alive = false;
        self.nodes[id.0].adopted.clear();
        self.dead += 1;
        (zones, old_neighbours)
    }

    /// Register an extra zone for `id` (takeover adoption or a merge
    /// result) in node state and index.
    pub(crate) fn add_zone(&mut self, id: NodeId, zone: Zone) {
        assert!(self.nodes[id.0].alive, "cannot grant a zone to dead {id}");
        self.index.insert(id.0 as u32, &zone);
        self.nodes[id.0].adopted.push(zone);
    }

    /// Drop an adopted fragment (a merge consumed it) from node state and
    /// index.
    pub(crate) fn drop_fragment(&mut self, id: NodeId, zone: &Zone) {
        self.index.remove(id.0 as u32, zone);
        let pos = self.nodes[id.0]
            .adopted
            .iter()
            .position(|z| z.same_box(zone))
            // hyperm-lint: allow(panic-unwrap) — caller verified the fragment is adopted by this node before dropping it
            .expect("fragment present");
        self.nodes[id.0].adopted.swap_remove(pos);
    }

    /// Swap a node's primary zone for `new_zone` (a merge grew it),
    /// keeping the index current. The store is untouched: merges only ever
    /// grow the owned region.
    pub(crate) fn replace_primary(&mut self, id: NodeId, new_zone: Zone) {
        let old = self.nodes[id.0].zone.clone();
        self.index.remove(id.0 as u32, &old);
        self.index.insert(id.0 as u32, &new_zone);
        self.nodes[id.0].zone = new_zone;
    }

    /// Move a node's primary to an unrelated `new_zone` (vacancy
    /// relocation during repair), dropping store replicas that no longer
    /// overlap any owned zone — the repair protocol hands those to the new
    /// owner first.
    pub(crate) fn relocate_primary(&mut self, id: NodeId, new_zone: Zone) {
        self.replace_primary(id, new_zone);
        let zones: Vec<Zone> = self.nodes[id.0].zones().cloned().collect();
        self.nodes[id.0].store.retain(|o| {
            zones
                .iter()
                .any(|z| z.intersects_sphere(&o.centre, o.radius))
        });
    }

    /// Alive node ids registered near `z` (overlapping or abutting,
    /// torus-aware), sorted ascending.
    pub(crate) fn box_candidates_around(&self, z: &Zone) -> Vec<NodeId> {
        self.index
            .box_candidates(z.lo(), z.hi())
            .into_iter()
            .map(|c| NodeId(c as usize))
            .filter(|&c| self.nodes[c.0].alive)
            .collect()
    }

    /// Union of [`CanOverlay::box_candidates_around`] over several zones,
    /// sorted and deduplicated — the set of nodes whose neighbour lists a
    /// zone transfer within those regions can affect.
    pub(crate) fn nodes_around(&self, zones: &[Zone]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = zones
            .iter()
            .flat_map(|z| self.box_candidates_around(z))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Node ids whose zones overlap the Euclidean ball `(centre, radius)`,
    /// sorted ascending — the exact candidate set a flood can visit.
    ///
    /// Enumerated through the [`ZoneIndex`] grid (sublinear for local
    /// balls) and filtered with the same
    /// [`Zone::intersects_sphere`] predicate the floods used to evaluate
    /// per neighbour edge, so flood semantics — and therefore every
    /// simulated hop/message/byte count — are unchanged. Dead nodes are
    /// never candidates (the index deregisters them).
    pub(crate) fn flood_candidates(&self, centre: &[f64], radius: f64) -> Vec<u32> {
        let mut cand = self.index.candidates(centre, radius);
        cand.retain(|&id| {
            let n = &self.nodes[id as usize];
            n.alive && n.intersects_sphere(centre, radius)
        });
        cand
    }

    /// Number of stored objects per node (replicas counted everywhere) —
    /// the occupancy histogram of Figure 9.
    pub fn store_sizes(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.store.len()).collect()
    }

    /// Sum of per-node stored item counts (replicas multiply-counted).
    pub fn stored_items_per_node(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.store.iter().map(|o| o.payload.items as u64).sum())
            .collect()
    }

    /// Verify structural invariants: the alive nodes' zones (primaries and
    /// adopted fragments) tile the space without overlap, neighbour lists
    /// match the geometric relation and are symmetric, dead nodes are
    /// fully detached, and the spatial index is exact. Test-support;
    /// O(F²·d) over the F zone fragments.
    pub fn check_invariants(&self) {
        // 1. Volume: the alive zones sum to the whole space.
        let total_volume: f64 = self.nodes.iter().map(CanNode::total_volume).sum();
        assert!(
            (total_volume - 1.0).abs() < 1e-9,
            "zones do not tile: volume {total_volume}"
        );
        // 2. Disjointness: no two owned zones overlap with positive volume.
        let fragments: Vec<(NodeId, &Zone)> = self
            .nodes
            .iter()
            .flat_map(|n| n.zones().map(move |z| (n.id, z)))
            .collect();
        for (i, (ida, za)) in fragments.iter().enumerate() {
            for (idb, zb) in &fragments[i + 1..] {
                assert!(
                    !za.overlaps(zb),
                    "zones of {ida} and {idb} overlap: {za:?} vs {zb:?}"
                );
            }
        }
        // 3. Neighbour lists: exactly the geometric relation, symmetric,
        //    and never referencing the dead.
        for a in &self.nodes {
            if !a.alive {
                assert!(
                    a.neighbours.is_empty(),
                    "dead node {} still has neighbours",
                    a.id
                );
                continue;
            }
            for b in &self.nodes {
                if a.id == b.id {
                    continue;
                }
                let listed = a.neighbours.contains(&b.id);
                let actual = b.alive && self.nodes_abut(a.id, b.id);
                assert_eq!(
                    listed, actual,
                    "neighbour list mismatch between {} and {}",
                    a.id, b.id
                );
            }
            for &nb in &a.neighbours {
                assert!(
                    self.nodes[nb.0].neighbours.contains(&a.id),
                    "asymmetric neighbour link {} -> {}",
                    a.id,
                    nb
                );
            }
        }
        // 4. Index exactness: registered ids = alive ids, and every owned
        //    zone is found by a probe at its centre.
        let alive: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.id.0 as u32)
            .collect();
        assert_eq!(self.index_ids(), alive, "spatial index is stale");
        for (id, z) in &fragments {
            assert!(
                self.index
                    .candidates(&z.centre(), 0.0)
                    .contains(&(id.0 as u32)),
                "index misses zone of {id} at its centre"
            );
        }
        // 5. Dead-count bookkeeping.
        assert_eq!(
            self.dead,
            self.nodes.iter().filter(|n| !n.alive).count(),
            "dead counter out of sync"
        );
    }

    /// Sorted ids currently registered in the spatial index (test support).
    pub fn index_ids(&self) -> Vec<u32> {
        self.index.ids()
    }
}

/// Size of a join/control packet in bytes (node id + target point).
pub(crate) const JOIN_MSG_BYTES: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_tiles_space() {
        for dim in [1usize, 2, 3, 5] {
            let overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(1), 32);
            overlay.check_invariants();
            assert_eq!(overlay.len(), 32);
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(2), 1);
        assert_eq!(overlay.owner_of(&[0.3, 0.9]), NodeId(0));
        let (owner, stats) = overlay.route(NodeId(0), &[0.99, 0.01], 10);
        assert_eq!(owner, NodeId(0));
        assert_eq!(stats.hops, 0);
    }

    #[test]
    fn routing_reaches_owner_from_anywhere() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(7), 64);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let target = [rng.gen::<f64>(), rng.gen::<f64>()];
            let from = NodeId(rng.gen_range(0..overlay.len()));
            let (owner, stats) = overlay.route(from, &target, 1);
            assert_eq!(owner, overlay.owner_of(&target));
            assert!(stats.hops < 64);
        }
    }

    #[test]
    fn routing_cost_scales_like_sqrt_n_in_2d() {
        // CAN theory: average path length Θ(√n) for d = 2. Just sanity-check
        // the order of magnitude.
        let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(11), 100);
        let mut rng = StdRng::seed_from_u64(5);
        let mut total_hops = 0u64;
        let trials = 300;
        for _ in 0..trials {
            let target = [rng.gen::<f64>(), rng.gen::<f64>()];
            let from = NodeId(rng.gen_range(0..overlay.len()));
            total_hops += overlay.route(from, &target, 1).1.hops;
        }
        let avg = total_hops as f64 / trials as f64;
        assert!(avg > 1.0 && avg < 20.0, "avg hops {avg}");
    }

    #[test]
    fn high_dimensional_overlay_works() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(16).with_seed(13), 40);
        overlay.check_invariants();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let target: Vec<f64> = (0..16).map(|_| rng.gen::<f64>()).collect();
            let (owner, _) = overlay.route(NodeId(0), &target, 1);
            assert_eq!(owner, overlay.owner_of(&target));
        }
    }

    #[test]
    fn join_splits_the_right_zone() {
        let mut overlay = CanOverlay::bootstrap(CanConfig::new(2), 1);
        let new = overlay.join(NodeId(0), &[0.9, 0.9]);
        assert_eq!(overlay.len(), 2);
        assert!(overlay.node(new).zone.contains(&[0.9, 0.9]));
        assert!(!overlay.node(NodeId(0)).zone.contains(&[0.9, 0.9]));
        overlay.check_invariants();
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let a = CanOverlay::bootstrap(CanConfig::new(3).with_seed(21), 20);
        let b = CanOverlay::bootstrap(CanConfig::new(3).with_seed(21), 20);
        for i in 0..20 {
            assert_eq!(a.node(NodeId(i)).zone, b.node(NodeId(i)).zone);
        }
        assert_eq!(a.bootstrap_stats(), b.bootstrap_stats());
    }

    #[test]
    fn bootstrap_stats_grow_with_network() {
        let small = CanOverlay::bootstrap(CanConfig::new(2).with_seed(2), 8);
        let large = CanOverlay::bootstrap(CanConfig::new(2).with_seed(2), 64);
        assert!(large.bootstrap_stats().hops > small.bootstrap_stats().hops);
    }

    /// Regression: the spatial index must track every membership change.
    /// A stale index entry would surface dead owners to `candidates` /
    /// `box_candidates` and silently corrupt routing and neighbour
    /// refresh after churn.
    #[test]
    fn zone_index_tracks_membership_changes() {
        let mut overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(7), 12);
        assert_eq!(
            overlay.index_ids(),
            overlay
                .alive_ids()
                .iter()
                .map(|n| n.0 as u32)
                .collect::<Vec<_>>()
        );

        overlay.join(NodeId(0), &[0.9, 0.1]);
        assert_eq!(
            overlay.index_ids(),
            overlay
                .alive_ids()
                .iter()
                .map(|n| n.0 as u32)
                .collect::<Vec<_>>()
        );

        overlay.leave(NodeId(3));
        assert_eq!(
            overlay.index_ids(),
            overlay
                .alive_ids()
                .iter()
                .map(|n| n.0 as u32)
                .collect::<Vec<_>>()
        );
        assert!(!overlay.index_ids().contains(&3));

        overlay.fail(NodeId(5));
        assert_eq!(
            overlay.index_ids(),
            overlay
                .alive_ids()
                .iter()
                .map(|n| n.0 as u32)
                .collect::<Vec<_>>()
        );
        assert!(!overlay.index_ids().contains(&5));

        overlay.repair_to_quiescence(16);
        assert_eq!(
            overlay.index_ids(),
            overlay
                .alive_ids()
                .iter()
                .map(|n| n.0 as u32)
                .collect::<Vec<_>>()
        );
        overlay.check_invariants();
    }

    #[test]
    fn zone_volumes_are_plausibly_balanced() {
        let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(31), 128);
        let vols: Vec<f64> = overlay.nodes().map(|n| n.zone.volume()).collect();
        let max = vols.iter().cloned().fold(0.0f64, f64::max);
        let min = vols.iter().cloned().fold(1.0f64, f64::min);
        // Random splits give ratios of a few powers of two, not thousands.
        assert!(max / min <= 64.0, "volume skew {max}/{min}");
    }
}
