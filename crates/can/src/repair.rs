//! Zone leave, failure takeover and background repair.
//!
//! The original CAN paper pairs its join protocol with a departure story:
//! a leaving node hands its zone to a neighbour, and a crashed node's zone
//! is **taken over** by the neighbour with the smallest zone volume once
//! its heartbeats stop. The takeover node may temporarily hold several
//! zone fragments; a background process then merges fragments back until
//! every node again owns a single box (or hands a fragment to the owner of
//! its dyadic sibling, relocating that owner if the sibling has been
//! subdivided). This module implements exactly that on top of the dyadic
//! split tree (see [`Zone::sibling`]):
//!
//! * [`CanOverlay::leave`] — graceful departure: zones and stored replicas
//!   are handed to the smallest-volume abutting neighbour; no data is lost.
//! * [`CanOverlay::fail`] — crash-stop: the store dies with the node, the
//!   smallest-volume abutting neighbour adopts each zone after a detection
//!   timeout. Lost replicas come back via the soft-state refresh loop in
//!   `hyperm-repair`.
//! * [`CanOverlay::fail_no_takeover`] — the no-repair baseline: the node
//!   vanishes and its zones become routing holes (queries dead-end there
//!   with an explicit [`crate::overlay::RouteOutcome`], never a panic).
//! * [`CanOverlay::repair_step`] — one background normalisation pass.
//!
//! After `leave`/`fail` (with takeover) and any number of `repair_step`s,
//! [`CanOverlay::check_invariants`] holds: the alive zones tile the space,
//! neighbour lists are exact and symmetric, and the spatial index is
//! current.

use crate::overlay::CanOverlay;
use crate::zone::Zone;
use hyperm_sim::{NodeId, OpStats};
use hyperm_telemetry::names;

/// Heartbeat rounds a neighbour waits before declaring a node dead.
pub const DETECT_TICKS: u64 = 3;
/// Wire size of a takeover/handoff control packet.
const CTRL_MSG_BYTES: u64 = 64;
/// Wire size of one heartbeat probe.
const HEARTBEAT_BYTES: u64 = 16;

/// Outcome of a leave/fail membership change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Nodes that adopted (or merged away) the departed zones.
    pub adopters: Vec<NodeId>,
    /// Message cost of the handoff/takeover (control + data transfer +
    /// neighbour updates).
    pub stats: OpStats,
    /// Sim-time ticks from the membership change until the zones were
    /// owned again (detection timeout + handshake).
    pub takeover_rounds: u64,
    /// Whether every transferred zone merged immediately into an
    /// adopter's primary (no background repair needed).
    pub fully_merged: bool,
}

impl CanOverlay {
    /// Number of adopted fragments still awaiting background merge.
    pub fn fragment_count(&self) -> usize {
        self.nodes().map(|n| n.adopted.len()).sum()
    }

    /// Graceful departure: `id` hands each of its zones — and the replicas
    /// stored for it — to the smallest-volume alive neighbour abutting
    /// that zone, then drops out. No data is lost.
    pub fn leave(&mut self, id: NodeId) -> RepairOutcome {
        assert!(self.alive_count() > 1, "the last node cannot leave");
        let store = std::mem::take(&mut self.node_mut(id).store);
        let (zones, old_neighbours) = self.detach(id);
        let mut out = self.adopt_zones(id, zones, &old_neighbours, Some(&store));
        // Handoff handshake: request + transfer, no detection delay.
        out.takeover_rounds = 2;
        self.trace_takeover("leave", id, &out);
        out
    }

    /// Crash-stop failure: `id` disappears without handoff. Its store is
    /// lost; after [`DETECT_TICKS`] missed heartbeats the smallest-volume
    /// alive neighbour abutting each zone takes it over (empty). The
    /// soft-state refresh loop republishes the lost replicas.
    pub fn fail(&mut self, id: NodeId) -> RepairOutcome {
        assert!(self.alive_count() > 1, "the last node cannot fail");
        self.node_mut(id).store.clear();
        let (zones, old_neighbours) = self.detach(id);
        // Detection: every old neighbour probes the silent node.
        let detection = OpStats {
            messages: old_neighbours.len() as u64 * DETECT_TICKS,
            bytes: old_neighbours.len() as u64 * DETECT_TICKS * HEARTBEAT_BYTES,
            ..OpStats::zero()
        };
        let mut out = self.adopt_zones(id, zones, &old_neighbours, None);
        out.stats += detection;
        out.takeover_rounds = DETECT_TICKS + 2;
        self.trace_takeover("fail", id, &out);
        out
    }

    /// Emit a `takeover` trace event for a completed leave/fail (no-op
    /// when tracing is off).
    fn trace_takeover(&self, kind: &'static str, id: NodeId, out: &RepairOutcome) {
        let tel = self.recorder();
        if tel.is_enabled() {
            tel.event(
                tel.scope(),
                names::TAKEOVER,
                vec![
                    ("node", id.0.into()),
                    ("kind", kind.into()),
                    ("adopters", (out.adopters.len() as u64).into()),
                    ("rounds", out.takeover_rounds.into()),
                    ("merged", out.fully_merged.into()),
                ],
            );
        }
    }

    /// The no-repair baseline: `id` crashes and nobody takes its zones
    /// over. Routing holes remain (queries terminate with explicit
    /// dead-end outcomes); `check_invariants` intentionally does not hold.
    pub fn fail_no_takeover(&mut self, id: NodeId) -> OpStats {
        assert!(self.alive_count() > 1, "the last node cannot fail");
        self.node_mut(id).store.clear();
        let (_, old_neighbours) = self.detach(id);
        OpStats {
            messages: old_neighbours.len() as u64 * DETECT_TICKS,
            bytes: old_neighbours.len() as u64 * DETECT_TICKS * HEARTBEAT_BYTES,
            ..OpStats::zero()
        }
    }

    /// Give each departed zone to the smallest-volume alive node abutting
    /// it, preferring an immediate sibling merge into the adopter's
    /// primary. `store` carries the departed node's replicas on graceful
    /// leaves (`None` on crashes — the data died).
    fn adopt_zones(
        &mut self,
        departed: NodeId,
        zones: Vec<Zone>,
        old_neighbours: &[NodeId],
        store: Option<&[crate::ops::StoredObject]>,
    ) -> RepairOutcome {
        let mut stats = OpStats::zero();
        let mut adopters: Vec<NodeId> = Vec::new();
        let mut fully_merged = true;
        // Zones are granted pass by pass: a fragment whose only abutters
        // are *later* fragments of the same departure waits until those
        // are re-owned. The outer boundary of the remaining region always
        // touches an alive node, so every pass grants at least one zone.
        let mut remaining = zones;
        while !remaining.is_empty() {
            let before = remaining.len();
            let mut deferred = Vec::new();
            for z in remaining {
                let Some(adopter) = self
                    .zone_abutters(&z)
                    .into_iter()
                    .filter(|&c| c != departed)
                    .min_by(|&a, &b| {
                        let va = self.node(a).total_volume();
                        let vb = self.node(b).total_volume();
                        // hyperm-lint: allow(panic-unwrap) — zone volumes are finite positive products of box extents; partial_cmp cannot see NaN
                        va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
                    })
                else {
                    deferred.push(z);
                    continue;
                };
                adopters.push(adopter);
                // Takeover claim for this zone.
                stats += OpStats {
                    messages: 1,
                    bytes: CTRL_MSG_BYTES,
                    ..OpStats::zero()
                };
                // Replica handoff (graceful only): copy the departed
                // store's objects overlapping this zone, deduplicated by
                // object id.
                if let Some(objs) = store {
                    let moved: Vec<_> = objs
                        .iter()
                        .filter(|o| z.intersects_sphere(&o.centre, o.radius))
                        .filter(|o| self.node(adopter).store.iter().all(|h| h.id != o.id))
                        .cloned()
                        .collect();
                    let bytes: u64 = moved.iter().map(|o| o.wire_bytes()).sum();
                    if !moved.is_empty() {
                        stats += OpStats {
                            messages: 1,
                            bytes,
                            ..OpStats::zero()
                        };
                        self.node_mut(adopter).store.extend(moved);
                    }
                }
                if !self.grant_zone(adopter, z) {
                    fully_merged = false;
                }
            }
            assert!(
                deferred.len() < before,
                "departed zones must have alive abutters"
            );
            remaining = deferred;
        }
        // Neighbour lists around the departure are rebuilt; each updated
        // node costs one control message.
        let mut affected: Vec<NodeId> = old_neighbours.to_vec();
        affected.extend(adopters.iter().copied());
        self.refresh_neighbours(&affected);
        let distinct: std::collections::BTreeSet<NodeId> = affected.into_iter().collect();
        stats += OpStats {
            messages: distinct.len() as u64,
            bytes: distinct.len() as u64 * CTRL_MSG_BYTES,
            ..OpStats::zero()
        };
        adopters.sort_unstable();
        adopters.dedup();
        RepairOutcome {
            adopters,
            stats,
            takeover_rounds: 0,
            fully_merged,
        }
    }

    /// Alive nodes whose zones abut `z` (spatial-index accelerated).
    fn zone_abutters(&self, z: &Zone) -> Vec<NodeId> {
        self.box_candidates_around(z)
            .into_iter()
            .filter(|&c| self.node(c).zones().any(|zc| zc.is_neighbour(z)))
            .collect()
    }

    /// Grant `zone` to `id`: merge it into the primary if it is the
    /// primary's dyadic sibling (returns `true`), otherwise park it as an
    /// adopted fragment for background repair (returns `false`).
    fn grant_zone(&mut self, id: NodeId, zone: Zone) -> bool {
        if let Some(parent) = zone.try_merge(&self.node(id).zone) {
            self.replace_primary(id, parent);
            true
        } else {
            self.add_zone(id, zone);
            false
        }
    }

    /// One background normalisation pass over all adopted fragments.
    ///
    /// Per fragment `V` held by `Y`, in order of preference:
    /// 1. merge `V` with `Y`'s primary (dyadic siblings) — free, local;
    /// 2. merge `V` with another fragment of `Y` — free, local;
    /// 3. hand `V` to the node owning exactly `sibling(V)`, which merges
    ///    both into the parent (replicas for `V` travel along);
    /// 4. `sibling(V)` is subdivided: find the deepest single-zone node
    ///    `Z2` inside it — the dyadic tree guarantees `sibling(Z2)` is an
    ///    exact current zone — merge `Z2`'s zone into that sibling's owner
    ///    and relocate `Z2` to fill `V`.
    ///
    /// Fragments whose resolution is blocked this round (the relevant
    /// sibling is itself a fragment mid-repair) are left for a later pass.
    /// Returns `(fragments_resolved, cost)`.
    pub fn repair_step(&mut self) -> (usize, OpStats) {
        let mut stats = OpStats::zero();
        let mut resolved = 0usize;
        let snapshot: Vec<(NodeId, Zone)> = self
            .nodes()
            .flat_map(|n| n.adopted.iter().map(move |z| (n.id, z.clone())))
            .collect();
        for (y, v) in snapshot {
            // The fragment may have been consumed by an earlier action in
            // this same pass.
            if !self.node(y).alive || !self.node(y).adopted.iter().any(|z| z.same_box(&v)) {
                continue;
            }
            if self.resolve_fragment(y, &v, &mut stats) {
                resolved += 1;
            }
        }
        (resolved, stats)
    }

    /// Run [`CanOverlay::repair_step`] until no fragment resolves or
    /// `max_passes` is hit; returns the total cost.
    pub fn repair_to_quiescence(&mut self, max_passes: usize) -> OpStats {
        let mut stats = OpStats::zero();
        for _ in 0..max_passes {
            if self.fragment_count() == 0 {
                break;
            }
            let (resolved, s) = self.repair_step();
            stats += s;
            if resolved == 0 {
                break;
            }
        }
        stats
    }

    /// Try to resolve one fragment; returns whether it was consumed.
    fn resolve_fragment(&mut self, y: NodeId, v: &Zone, stats: &mut OpStats) -> bool {
        // 1. Merge with own primary.
        if let Some(parent) = v.try_merge(&self.node(y).zone) {
            self.drop_fragment(y, v);
            self.replace_primary(y, parent);
            return true;
        }
        // 2. Merge with another own fragment.
        let partner = self
            .node(y)
            .adopted
            .iter()
            .find(|w| !w.same_box(v) && v.try_merge(w).is_some())
            .cloned();
        if let Some(w) = partner {
            // hyperm-lint: allow(panic-unwrap) — the find() predicate just checked try_merge(w).is_some() for this partner
            let parent = v.try_merge(&w).expect("checked");
            self.drop_fragment(y, v);
            self.drop_fragment(y, &w);
            self.add_zone(y, parent);
            return true;
        }
        let Some(sib) = v.sibling() else {
            return false; // root fragment: only possible with one node
        };
        // 3. The sibling is somebody's exact primary: hand the fragment
        //    over and let them merge up.
        if let Some(w) = self.primary_owner_of(&sib) {
            // hyperm-lint: allow(panic-unwrap) — a sibling exists, so the zone is not the root and has a parent
            let parent = v.parent().expect("sibling exists, so parent does");
            *stats += self.transfer_replicas(y, w, v);
            self.drop_fragment(y, v);
            self.replace_primary(w, parent);
            *stats += OpStats {
                messages: 2,
                bytes: 2 * CTRL_MSG_BYTES,
                ..OpStats::zero()
            };
            let affected = self.nodes_around(&[v.clone(), sib]);
            self.refresh_neighbours(&affected);
            return true;
        }
        // 4. The sibling region is subdivided. Deepest single-zone node
        //    inside it; its dyadic sibling is an exact current zone. If
        //    that zone is a primary, merge the deepest node's zone into it
        //    and relocate the deepest node onto V.
        let Some(z2) = self.deepest_primary_inside(&sib) else {
            return false; // blocked on another fragment this round
        };
        let z2_zone = self.node(z2).zone.clone();
        let Some(sib2) = z2_zone.sibling() else {
            return false;
        };
        let Some(w1) = self.primary_owner_of(&sib2) else {
            return false; // sibling is a fragment mid-repair: wait
        };
        if w1 == z2 {
            return false;
        }
        // hyperm-lint: allow(panic-unwrap) — sibling_of returned Some, so z2's zone is not the root and has a parent
        let parent2 = z2_zone.parent().expect("sibling exists");
        // W1 absorbs Z2's zone (and takes over its replicas)…
        *stats += self.transfer_replicas(z2, w1, &z2_zone);
        self.replace_primary(w1, parent2);
        // …and Z2 relocates to fill the vacancy V.
        *stats += self.transfer_replicas(y, z2, v);
        self.drop_fragment(y, v);
        self.relocate_primary(z2, v.clone());
        *stats += OpStats {
            messages: 4,
            bytes: 4 * CTRL_MSG_BYTES,
            ..OpStats::zero()
        };
        let affected = self.nodes_around(&[v.clone(), z2_zone, sib2]);
        self.refresh_neighbours(&affected);
        true
    }

    /// The alive node whose *primary* zone is exactly `z`, if any. Nodes
    /// still holding adopted fragments are skipped: relocating or growing
    /// them mid-repair would compound fragment states.
    fn primary_owner_of(&self, z: &Zone) -> Option<NodeId> {
        let cand = self.box_candidates_around(z);
        cand.into_iter().find(|&c| {
            let n = self.node(c);
            n.adopted.is_empty() && n.zone.same_box(z)
        })
    }

    /// The deepest (smallest-volume) alive node whose primary lies inside
    /// `region` and which holds no fragments of its own; ties break toward
    /// the lower id. `None` if the region is covered only by fragments.
    fn deepest_primary_inside(&self, region: &Zone) -> Option<NodeId> {
        self.box_candidates_around(region)
            .into_iter()
            .filter(|&c| {
                let n = self.node(c);
                n.adopted.is_empty() && region.contains_zone(&n.zone)
            })
            .min_by(|&a, &b| {
                let va = self.node(a).zone.volume();
                let vb = self.node(b).zone.volume();
                // hyperm-lint: allow(panic-unwrap) — zone volumes are finite positive products of box extents; partial_cmp cannot see NaN
                va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
            })
    }

    /// Copy the objects in `from`'s store overlapping `region` into `to`'s
    /// store (deduplicated by object id); returns the message cost.
    fn transfer_replicas(&mut self, from: NodeId, to: NodeId, region: &Zone) -> OpStats {
        if from == to {
            return OpStats::zero();
        }
        let moved: Vec<_> = self
            .node(from)
            .store
            .iter()
            .filter(|o| region.intersects_sphere(&o.centre, o.radius))
            .filter(|o| self.node(to).store.iter().all(|h| h.id != o.id))
            .cloned()
            .collect();
        if moved.is_empty() {
            return OpStats::zero();
        }
        let bytes: u64 = moved.iter().map(|o| o.wire_bytes()).sum();
        self.node_mut(to).store.extend(moved);
        OpStats {
            messages: 1,
            bytes,
            ..OpStats::zero()
        }
    }

    /// Load-relief split: halve the zone covering `point` and grant the
    /// half containing `point` to `to` (GeoP2P-style adaptive
    /// subdivision, driven by the load ledger instead of churn).
    ///
    /// The current owner keeps the other half (its primary shrinks in
    /// place, or the covering fragment is replaced); replicas overlapping
    /// the granted half are copied along, so the flood covering property
    /// — every node whose zone intersects a query ball holds the
    /// overlapping replicas — is preserved and Theorem 4.1 still admits
    /// every true candidate. [`CanOverlay::check_invariants`] holds on
    /// return. Also the join-time placement primitive for virtual nodes:
    /// each extra "virtual zone" of a host is carved out of the covering
    /// owner at a seeded random point.
    ///
    /// Returns the message cost, or `None` when the split is impossible:
    /// `to` is dead, the point is in dead space, `to` already owns the
    /// covering zone, or the zone is too thin to halve meaningfully.
    pub fn split_adopt(&mut self, point: &[f64], to: NodeId) -> Option<OpStats> {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        /// Narrower than this along the split axis stays unsplit: the
        /// midpoint would no longer be strictly between the faces.
        const MIN_SPLIT_EXTENT: f64 = 1e-6;
        if !self.node(to).alive {
            return None;
        }
        let owner = self.try_owner_of(point)?;
        if owner == to {
            return None;
        }
        // The exact covering zone (primary or fragment) of the owner.
        let zone = self
            .node(owner)
            .zones()
            .find(|z| z.contains(point))?
            .clone();
        let axis = zone.longest_dim();
        // hyperm-lint: allow(panic-index) — longest_dim returns an in-bounds axis of this zone
        if zone.hi()[axis] - zone.lo()[axis] < MIN_SPLIT_EXTENT {
            return None;
        }
        let (lo_half, hi_half) = zone.split(axis);
        let (keep, give) = if lo_half.contains(point) {
            (hi_half, lo_half)
        } else {
            (lo_half, hi_half)
        };
        // Shrink the owner onto `keep` (index updated by the primitives).
        if zone.same_box(&self.node(owner).zone) {
            self.replace_primary(owner, keep);
        } else {
            self.drop_fragment(owner, &zone);
            self.add_zone(owner, keep);
        }
        // Replicas overlapping the granted half travel along (copy — the
        // owner keeping spares only ever *adds* candidates).
        let mut stats = self.transfer_replicas(owner, to, &give);
        let merged = self.grant_zone(to, give.clone());
        let mut affected = self.nodes_around(&[zone]);
        affected.push(owner);
        affected.push(to);
        self.refresh_neighbours(&affected);
        let distinct: std::collections::BTreeSet<NodeId> = affected.into_iter().collect();
        // Split handshake + one neighbour update per affected node.
        stats += OpStats {
            messages: 2 + distinct.len() as u64,
            bytes: (2 + distinct.len() as u64) * CTRL_MSG_BYTES,
            ..OpStats::zero()
        };
        let tel = self.recorder();
        if tel.is_enabled() {
            tel.event(
                tel.scope(),
                names::ZONE_SPLIT,
                vec![
                    ("from", owner.0.into()),
                    ("to", to.0.into()),
                    ("axis", axis.into()),
                    ("merged", merged.into()),
                ],
            );
            if merged {
                // The granted half was the beneficiary's dyadic sibling
                // and folded straight into its primary.
                tel.event(
                    tel.scope(),
                    names::ZONE_MERGE,
                    vec![("node", to.0.into()), ("axis", axis.into())],
                );
            }
        }
        Some(stats)
    }

    /// Load-relief migration: move `from`'s largest adopted fragment (a
    /// "virtual zone") to `to`, through the same replica handoff the
    /// leave/takeover machinery uses. [`CanOverlay::check_invariants`]
    /// holds on return.
    ///
    /// Returns the migrated zone and the message cost, or `None` when
    /// either node is dead, `from == to`, or `from` holds no fragments
    /// (the balancer then falls back to [`CanOverlay::split_adopt`] on
    /// the primary).
    pub fn migrate_fragment(&mut self, from: NodeId, to: NodeId) -> Option<(Zone, OpStats)> {
        if from == to || !self.node(from).alive || !self.node(to).alive {
            return None;
        }
        let frag = self
            .node(from)
            .adopted
            .iter()
            .max_by(|a, b| {
                // hyperm-lint: allow(panic-unwrap) — zone volumes are finite positive products of box extents; partial_cmp cannot see NaN
                a.volume().partial_cmp(&b.volume()).unwrap()
            })?
            .clone();
        let mut stats = self.transfer_replicas(from, to, &frag);
        self.drop_fragment(from, &frag);
        let merged = self.grant_zone(to, frag.clone());
        let mut affected = self.nodes_around(std::slice::from_ref(&frag));
        affected.push(from);
        affected.push(to);
        self.refresh_neighbours(&affected);
        let distinct: std::collections::BTreeSet<NodeId> = affected.into_iter().collect();
        stats += OpStats {
            messages: 2 + distinct.len() as u64,
            bytes: (2 + distinct.len() as u64) * CTRL_MSG_BYTES,
            ..OpStats::zero()
        };
        let tel = self.recorder();
        if tel.is_enabled() {
            tel.event(
                tel.scope(),
                names::VNODE_MIGRATE,
                vec![
                    ("from", from.0.into()),
                    ("to", to.0.into()),
                    ("merged", merged.into()),
                ],
            );
            if merged {
                tel.event(tel.scope(), names::ZONE_MERGE, vec![("node", to.0.into())]);
            }
        }
        Some((frag, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::{CanConfig, CanOverlay, RouteOutcome};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn overlay(dim: usize, n: usize, seed: u64) -> CanOverlay {
        CanOverlay::bootstrap(CanConfig::new(dim).with_seed(seed), n)
    }

    #[test]
    fn graceful_leave_keeps_invariants_and_data() {
        let mut o = overlay(2, 16, 1);
        let obj = crate::ops::ObjectRef {
            peer: 0,
            tag: 0,
            items: 1,
        };
        o.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.2, obj, true);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let alive = o.alive_ids();
            let victim = alive[rng.gen_range(0..alive.len())];
            o.leave(victim);
            o.repair_to_quiescence(16);
            o.check_invariants();
        }
        assert_eq!(o.alive_count(), 6);
        // The sphere is still fully replicated over the survivors.
        for n in o.nodes().filter(|n| n.alive) {
            if n.intersects_sphere(&[0.5, 0.5], 0.2) {
                assert!(
                    n.store.iter().any(|s| s.id == 0),
                    "replica missing at {} after leaves",
                    n.id
                );
            }
        }
    }

    #[test]
    fn crash_takeover_keeps_invariants() {
        let mut o = overlay(2, 32, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..12 {
            let alive = o.alive_ids();
            let victim = alive[rng.gen_range(0..alive.len())];
            let out = o.fail(victim);
            assert!(out.takeover_rounds >= DETECT_TICKS);
            assert!(!out.adopters.is_empty());
            o.repair_to_quiescence(16);
            o.check_invariants();
        }
        assert_eq!(o.alive_count(), 20);
        // Routing still reaches an owner from any alive start.
        let alive = o.alive_ids();
        for _ in 0..40 {
            let t = [rng.gen::<f64>(), rng.gen::<f64>()];
            let from = alive[rng.gen_range(0..alive.len())];
            let res = o.route_result(from, &t, 8);
            assert_eq!(res.outcome, RouteOutcome::Delivered);
            assert_eq!(res.node, o.owner_of(&t));
        }
    }

    #[test]
    fn repair_normalises_fragments() {
        let mut o = overlay(2, 24, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..8 {
            let alive = o.alive_ids();
            o.fail(alive[rng.gen_range(0..alive.len())]);
        }
        o.repair_to_quiescence(64);
        o.check_invariants();
        // Quiescent repair leaves at most a handful of stubborn fragments.
        assert!(
            o.fragment_count() <= 2,
            "{} fragments survived repair",
            o.fragment_count()
        );
    }

    #[test]
    fn no_takeover_leaves_explicit_dead_ends() {
        let mut o = overlay(2, 16, 7);
        let hole_centre = o.node(NodeId(3)).zone.centre();
        o.fail_no_takeover(NodeId(3));
        let res = o.route_result(NodeId(0), &hole_centre, 8);
        assert_eq!(res.outcome, RouteOutcome::DeadEnd);
        assert_eq!(res.stats.failed_routes, 1);
        assert!(o.try_owner_of(&hole_centre).is_none());
    }

    #[test]
    fn interleaved_joins_and_failures_stay_sound() {
        let mut o = overlay(2, 8, 8);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..30 {
            if i % 3 == 0 && o.alive_count() > 4 {
                let alive = o.alive_ids();
                let victim = alive[rng.gen_range(0..alive.len())];
                if i % 2 == 0 {
                    o.fail(victim);
                } else {
                    o.leave(victim);
                }
            } else {
                let alive = o.alive_ids();
                let entry = alive[rng.gen_range(0..alive.len())];
                let p = vec![rng.gen::<f64>(), rng.gen::<f64>()];
                o.join(entry, &p);
            }
            o.repair_to_quiescence(16);
            o.check_invariants();
        }
    }

    #[test]
    fn leave_respects_last_node_guard() {
        let mut o = overlay(2, 2, 10);
        o.leave(NodeId(0));
        o.check_invariants();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            o.leave(NodeId(1));
        }));
        assert!(result.is_err(), "last node must not leave");
    }

    #[test]
    fn split_adopt_keeps_invariants_and_replicas() {
        let mut o = overlay(2, 8, 21);
        let obj = crate::ops::ObjectRef {
            peer: 0,
            tag: 0,
            items: 1,
        };
        o.insert_sphere(NodeId(0), vec![0.5, 0.5], 0.3, obj, true);
        let mut rng = StdRng::seed_from_u64(22);
        let mut splits = 0usize;
        for _ in 0..24 {
            let point = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let alive = o.alive_ids();
            let to = alive[rng.gen_range(0..alive.len())];
            if o.split_adopt(&point, to).is_some() {
                splits += 1;
            }
            o.check_invariants();
        }
        assert!(splits > 0, "some splits must land");
        // The covering property survives: every node whose zone overlaps
        // the sphere holds its replica.
        for n in o.nodes().filter(|n| n.alive) {
            if n.intersects_sphere(&[0.5, 0.5], 0.3) {
                assert!(
                    n.store.iter().any(|s| s.id == 0),
                    "replica missing at {} after splits",
                    n.id
                );
            }
        }
        // Range results are a superset of the pre-split candidates: the
        // single inserted sphere is still found from anywhere.
        let out = o.range_query(NodeId(1), &[0.5, 0.5], 0.05);
        assert!(out.matches.iter().any(|m| m.id == 0));
    }

    #[test]
    fn split_adopt_rejects_degenerate_targets() {
        let mut o = overlay(2, 4, 23);
        let owner = o.try_owner_of(&[0.1, 0.1]).unwrap();
        assert!(o.split_adopt(&[0.1, 0.1], owner).is_none(), "self-split");
        let other = o.alive_ids().into_iter().find(|&n| n != owner).unwrap();
        let out = o.fail_no_takeover(other);
        let _ = out;
        assert!(
            o.split_adopt(&[0.9, 0.9], other).is_none(),
            "dead beneficiary"
        );
    }

    #[test]
    fn migrate_fragment_keeps_invariants_and_replicas() {
        let mut o = overlay(2, 12, 25);
        let obj = crate::ops::ObjectRef {
            peer: 1,
            tag: 0,
            items: 1,
        };
        o.insert_sphere(NodeId(0), vec![0.4, 0.6], 0.25, obj, true);
        // Manufacture fragments via splits, then migrate them around.
        let mut rng = StdRng::seed_from_u64(26);
        for _ in 0..8 {
            let point = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let alive = o.alive_ids();
            let to = alive[rng.gen_range(0..alive.len())];
            let _ = o.split_adopt(&point, to);
        }
        o.check_invariants();
        let mut migrated = 0usize;
        for _ in 0..16 {
            let holders: Vec<NodeId> = o
                .nodes()
                .filter(|n| n.alive && !n.adopted.is_empty())
                .map(|n| n.id)
                .collect();
            let Some(&from) = holders.first() else { break };
            let alive = o.alive_ids();
            let to = alive[rng.gen_range(0..alive.len())];
            if let Some((zone, _)) = o.migrate_fragment(from, to) {
                migrated += 1;
                // The new holder owns the zone now.
                assert!(o
                    .node(to)
                    .zones()
                    .any(|z| z.same_box(&zone) || z.contains_zone(&zone)));
            }
            o.check_invariants();
        }
        assert!(migrated > 0, "some migrations must land");
        for n in o.nodes().filter(|n| n.alive) {
            if n.intersects_sphere(&[0.4, 0.6], 0.25) {
                assert!(
                    n.store.iter().any(|s| s.id == 0),
                    "replica missing at {} after migrations",
                    n.id
                );
            }
        }
        // Fragments always merge back to quiescence afterwards.
        o.repair_to_quiescence(32);
        o.check_invariants();
    }

    #[test]
    fn migrate_without_fragments_returns_none() {
        let mut o = overlay(2, 4, 27);
        assert_eq!(o.fragment_count(), 0);
        assert!(o.migrate_fragment(NodeId(0), NodeId(1)).is_none());
    }
}
