//! A Content-Addressable Network (CAN) overlay — Ratnasamy et al.,
//! SIGCOMM 2001 — as used by Hyper-M (ICDE 2007) for cluster publication.
//!
//! CAN partitions a `d`-dimensional unit key space `[0,1)^d` (a torus for
//! routing purposes) into rectangular **zones**, one per node. Routing is
//! greedy: forward to the neighbour whose zone is closest to the target
//! point; joining splits the zone that contains a randomly chosen point.
//!
//! Hyper-M stores *non-zero-sized objects* (cluster spheres) in CAN, which
//! creates the replication problem of the paper's Section 5/Figure 6: a
//! sphere overlapping several zones must be replicated into each, or range
//! queries landing in a different zone would miss it. [`ops`] implements
//! that replication by neighbour-flooding from the centroid owner, and the
//! flooding range query that exploits it.
//!
//! * [`zone`] — rectangular zones, torus point/zone distances, splitting,
//!   sphere-overlap tests;
//! * [`keymap`] — affine mapping between application data space and the CAN
//!   key space (including the "index only the first k dimensions" projection
//!   used by the paper's 2-d CAN baseline);
//! * [`overlay`] — nodes, bootstrap, join/split, neighbour maintenance and
//!   greedy routing;
//! * [`ops`] — point/sphere insertion with replication, point lookup, and
//!   flooding range queries, all returning [`hyperm_sim::OpStats`] cost
//!   records;
//! * [`repair`] — graceful leave, crash-stop failure takeover and the
//!   background fragment-merge loop that restores the one-zone-per-node
//!   partition after churn;
//! * [`codec`] — the actual binary wire format of objects and queries; the
//!   simulators' byte counts equal these encoders' output lengths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod keymap;
pub mod ops;
pub mod overlay;
pub mod repair;
pub mod zone;
pub mod zoneindex;

pub use codec::{
    decode_message, decode_object, decode_query, encode_message, encode_object, encode_query,
    object_wire_len, query_wire_len, CodecError, Message,
};
pub use keymap::KeyMap;
pub use ops::{InsertOutcome, ObjectRef, RangeOutcome, StoredObject};
pub use overlay::{CanConfig, CanNode, CanOverlay, RouteOutcome, RouteResult};
pub use repair::{RepairOutcome, DETECT_TICKS};
pub use zone::Zone;
pub use zoneindex::ZoneIndex;
