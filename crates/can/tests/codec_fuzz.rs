//! Property-based hardening sweep for the wire codec: corrupt, truncated
//! and oversized frames across every message kind must decode to a typed
//! [`CodecError`] — never a panic, never an unbounded allocation.
//!
//! These are the frames a hostile or buggy peer can put on a TCP socket;
//! the decoder is the trust boundary.

use hyperm_can::{
    decode_message, decode_object, decode_query, encode_message, encode_object, encode_query,
    Message, ObjectRef, StoredObject,
};
use hyperm_telemetry::TraceCtx;
use proptest::prelude::*;

fn obj(dim: usize) -> StoredObject {
    StoredObject {
        id: 0xDEAD_BEEF,
        centre: (0..dim).map(|i| i as f64 * 0.125 - 1.0).collect(),
        radius: 0.375,
        payload: ObjectRef {
            peer: 42,
            tag: 7,
            items: 1234,
        },
    }
}

/// One instance of every message kind — the same coverage the unit
/// round-trip test asserts is exhaustive.
fn sample_messages() -> Vec<Message> {
    vec![
        Message::Hello { peer: 9 },
        Message::Join {
            peer: 3,
            dim: 2,
            rows: vec![0.1, 0.2, 0.3, 0.4],
        },
        Message::JoinAck {
            peer: 12,
            members: 13,
        },
        Message::Route {
            level: 1,
            key: vec![0.5, 0.25],
        },
        Message::RouteAck { level: 1, owner: 4 },
        Message::Publish {
            level: 0,
            replicate: true,
            object: obj(4),
            ctx: TraceCtx {
                trace_id: 0xAB,
                parent_span: 3,
            },
        },
        Message::PublishAck {
            level: 0,
            object_id: 77,
            replicas: 3,
            targets: 3,
        },
        Message::Query {
            centre: vec![0.4; 8],
            eps: 0.125,
            budget: u32::MAX,
            ctx: TraceCtx {
                trace_id: u64::MAX,
                parent_span: 1,
            },
        },
        Message::QueryAck {
            items: vec![(0, 5), (2, 9)],
            hops: 17,
            messages: 21,
            bytes: 4096,
        },
        Message::Get {
            level: 2,
            key: vec![0.75],
        },
        Message::GetAck {
            level: 2,
            objects: vec![obj(1), obj(3)],
        },
        Message::Fetch {
            peer: 6,
            centre: vec![0.9, 0.1],
            eps: 0.0,
            ctx: TraceCtx::NONE,
        },
        Message::FetchAck {
            peer: 6,
            indices: vec![0, 4, 9],
        },
        Message::Ack { seq: 8, ok: false },
        Message::Monitor,
        Message::MonitorAck {
            json: "{\"zones\": 4}".to_string(),
        },
        Message::Shutdown,
        Message::Put {
            peer: 2,
            item: vec![0.25, 0.5, 0.75],
            republish: true,
        },
        Message::PutAck { peer: 2, index: 20 },
        Message::Stats,
        Message::StatsAck {
            json: "{\"ops\": 9}".to_string(),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a valid frame of any kind at any boundary decodes to a
    /// typed error (or, for a prefix that happens to be self-consistent,
    /// a valid message) — never a panic.
    #[test]
    fn truncated_frames_of_every_kind_never_panic(
        pick in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let msgs = sample_messages();
        let msg = &msgs[pick.index(msgs.len())];
        let bytes = encode_message(msg).unwrap();
        let cut = cut.index(bytes.len()); // strict prefix
        // Typed result either way; a panic fails the test harness.
        let _ = decode_message(&bytes[..cut]);
    }

    /// Flipping arbitrary bytes in a valid frame of any kind decodes to a
    /// typed error or a different valid message — never a panic.
    #[test]
    fn corrupt_frames_of_every_kind_never_panic(
        pick in any::<prop::sample::Index>(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let msgs = sample_messages();
        let msg = &msgs[pick.index(msgs.len())];
        let mut bytes = encode_message(msg).unwrap();
        for (pos, mask) in &flips {
            let i = pos.index(bytes.len());
            bytes[i] ^= mask | 1; // always a real change
        }
        if let Ok(back) = decode_message(&bytes) {
            // A surviving decode must re-encode: the codec never produces
            // values it would itself reject.
            prop_assert!(encode_message(&back).is_ok());
        }
    }

    /// Appending trailing garbage to a valid frame is always rejected —
    /// frames are exact, not prefixes.
    #[test]
    fn oversized_frames_of_every_kind_are_rejected(
        pick in any::<prop::sample::Index>(),
        tail in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let msgs = sample_messages();
        let msg = &msgs[pick.index(msgs.len())];
        let mut bytes = encode_message(msg).unwrap();
        bytes.extend_from_slice(&tail);
        prop_assert!(decode_message(&bytes).is_err());
    }

    /// Arbitrary garbage through all three decoders: typed errors only.
    /// Byte 0 is drawn from the full u8 range, so unknown kind bytes and
    /// hostile declared lengths are both exercised.
    #[test]
    fn random_buffers_never_panic(buf in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&buf);
        let _ = decode_object(&buf);
        let _ = decode_query(&buf);
    }

    /// Round-trip stability under random valid inputs: encode ∘ decode is
    /// the identity for objects and queries built from finite values.
    #[test]
    fn valid_objects_and_queries_roundtrip(
        dim in 1usize..24,
        coords in prop::collection::vec(-1.0..1.0f64, 24),
        radius in 0.0..2.0f64,
        id in any::<u64>(),
        tag in any::<u64>(),
        items in any::<u32>(),
    ) {
        let object = StoredObject {
            id,
            centre: coords[..dim].to_vec(),
            radius,
            payload: ObjectRef { peer: 7, tag, items },
        };
        let bytes = encode_object(&object).unwrap();
        let back = decode_object(&bytes).unwrap();
        prop_assert_eq!(&back.centre, &object.centre);
        prop_assert_eq!(back.radius.to_bits(), object.radius.to_bits());
        prop_assert_eq!(back.id, object.id);

        let qbytes = encode_query(&object.centre, radius).unwrap();
        let (centre, eps) = decode_query(&qbytes).unwrap();
        prop_assert_eq!(&centre, &object.centre);
        prop_assert_eq!(eps.to_bits(), radius.to_bits());
    }
}
