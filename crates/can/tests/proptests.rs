//! Property-based tests for the CAN overlay invariants.

use hyperm_can::{CanConfig, CanOverlay, ObjectRef};
use hyperm_sim::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zones always tile the key space and neighbour lists stay correct,
    /// for any dimension/size/seed.
    #[test]
    fn bootstrap_invariants(dim in 1usize..6, n in 1usize..48, seed in any::<u64>()) {
        let overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(seed), n);
        overlay.check_invariants();
    }

    /// Greedy routing always reaches the true owner.
    #[test]
    fn routing_is_correct(
        dim in 1usize..5,
        n in 2usize..40,
        seed in any::<u64>(),
        coords in prop::collection::vec(0.0..1.0f64, 5),
        from in any::<prop::sample::Index>(),
    ) {
        let overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(seed), n);
        let target = &coords[..dim];
        let start = NodeId(from.index(overlay.len()));
        let (owner, stats) = overlay.route(start, target, 1);
        prop_assert_eq!(owner, overlay.owner_of(target));
        prop_assert!(stats.hops <= n as u64);
    }

    /// Replication places a sphere in exactly the zones it overlaps, and a
    /// range query over any ball finds it iff the balls intersect.
    #[test]
    fn replication_matches_geometry(
        n in 2usize..40,
        seed in any::<u64>(),
        cx in 0.0..1.0f64,
        cy in 0.0..1.0f64,
        r in 0.0..0.5f64,
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
        qr in 0.0..0.5f64,
    ) {
        let mut overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(seed), n);
        let out = overlay.insert_sphere(
            NodeId(0),
            vec![cx, cy],
            r,
            ObjectRef { peer: 0, tag: 0, items: 1 },
            true,
        );
        let expected: usize = overlay
            .nodes()
            .filter(|node| node.zone.intersects_sphere(&[cx, cy], r))
            .count();
        prop_assert_eq!(out.replicas, expected.max(1));

        let res = overlay.range_query(NodeId(0), &[qx, qy], qr);
        let d = ((cx - qx).powi(2) + (cy - qy).powi(2)).sqrt();
        let should_match = d <= r + qr + 1e-12;
        prop_assert_eq!(!res.matches.is_empty(), should_match,
            "d={} r+qr={}", d, r + qr);
    }
}
