//! Property-based tests for the CAN overlay invariants.

use hyperm_can::{CanConfig, CanOverlay, ObjectRef};
use hyperm_sim::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zones always tile the key space and neighbour lists stay correct,
    /// for any dimension/size/seed.
    #[test]
    fn bootstrap_invariants(dim in 1usize..6, n in 1usize..48, seed in any::<u64>()) {
        let overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(seed), n);
        overlay.check_invariants();
    }

    /// Greedy routing always reaches the true owner.
    #[test]
    fn routing_is_correct(
        dim in 1usize..5,
        n in 2usize..40,
        seed in any::<u64>(),
        coords in prop::collection::vec(0.0..1.0f64, 5),
        from in any::<prop::sample::Index>(),
    ) {
        let overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(seed), n);
        let target = &coords[..dim];
        let start = NodeId(from.index(overlay.len()));
        let (owner, stats) = overlay.route(start, target, 1);
        prop_assert_eq!(owner, overlay.owner_of(target));
        prop_assert!(stats.hops <= n as u64);
    }

    /// Replication places a sphere in exactly the zones it overlaps, and a
    /// range query over any ball finds it iff the balls intersect.
    #[test]
    fn replication_matches_geometry(
        n in 2usize..40,
        seed in any::<u64>(),
        cx in 0.0..1.0f64,
        cy in 0.0..1.0f64,
        r in 0.0..0.5f64,
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
        qr in 0.0..0.5f64,
    ) {
        let mut overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(seed), n);
        let out = overlay.insert_sphere(
            NodeId(0),
            vec![cx, cy],
            r,
            ObjectRef { peer: 0, tag: 0, items: 1 },
            true,
        );
        let expected: usize = overlay
            .nodes()
            .filter(|node| node.zone.intersects_sphere(&[cx, cy], r))
            .count();
        prop_assert_eq!(out.replicas, expected.max(1));

        let res = overlay.range_query(NodeId(0), &[qx, qy], qr);
        let d = ((cx - qx).powi(2) + (cy - qy).powi(2)).sqrt();
        let should_match = d <= r + qr + 1e-12;
        prop_assert_eq!(!res.matches.is_empty(), should_match,
            "d={} r+qr={}", d, r + qr);
    }

    /// Any interleaving of joins, graceful leaves and crash-stop failures
    /// (with takeover + background repair) keeps the partition tiling the
    /// space with exact symmetric neighbour lists — and a sphere published
    /// up front is never false-dismissed over the survivors: every alive
    /// node whose zones overlap it either holds a replica or adopted its
    /// zone post-crash (restored by the next refresh), and a range query
    /// still terminates with an explicit result.
    #[test]
    fn interleaved_churn_keeps_invariants(
        dim in 1usize..4,
        n in 4usize..24,
        seed in any::<u64>(),
        ops in prop::collection::vec((0u8..3, any::<prop::sample::Index>()), 1..24),
    ) {
        let mut overlay = CanOverlay::bootstrap(CanConfig::new(dim).with_seed(seed), n);
        let centre = vec![0.5; dim];
        overlay.insert_sphere(
            NodeId(0),
            centre.clone(),
            0.25,
            ObjectRef { peer: 0, tag: 0, items: 1 },
            true,
        );
        let mut point = vec![0.1; dim];
        for (op, pick) in ops {
            let alive = overlay.alive_ids();
            match op {
                0 => {
                    // Join at a pseudo-random point, entering via an alive node.
                    for (i, x) in point.iter_mut().enumerate() {
                        *x = (*x + 0.37 + 0.11 * i as f64) % 1.0;
                    }
                    let entry = alive[pick.index(alive.len())];
                    overlay.join(entry, &point.clone());
                }
                1 if alive.len() > 2 => {
                    overlay.leave(alive[pick.index(alive.len())]);
                }
                _ if alive.len() > 2 => {
                    overlay.fail(alive[pick.index(alive.len())]);
                }
                _ => {}
            }
            overlay.repair_to_quiescence(32);
            overlay.check_invariants();
        }
        // No false dismissal over alive peers: peer 0 may have died (its
        // object is then legitimately gone), otherwise the query finds it.
        if overlay.is_alive(NodeId(0)) {
            let from = overlay.alive_ids()[0];
            let res = overlay.range_query(from, &centre, 0.01);
            prop_assert_eq!(res.matches.len(), 1, "published sphere false-dismissed");
        }
    }
}
