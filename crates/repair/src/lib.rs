//! Overlay repair engine: churn scheduling, takeover-driven zone repair
//! and soft-state replica refresh for a Hyper-M network.
//!
//! The paper's MANET session is short-lived but not static: devices crash,
//! walk away, and arrive late. [`hyperm_core`] provides the mechanisms —
//! overlay-level crash/leave with CAN zone takeover
//! (`HypermNetwork::crash_peer` / `depart_peer`), background fragment
//! merges (`repair_overlays`) and soft-state summary republish
//! (`refresh_peer_summaries`). This crate provides the *policy* that ties
//! them to simulated time:
//!
//! * [`RepairEngine`] owns a network and a sim clock. Churn events go
//!   through it; with repair enabled it runs the takeover + background
//!   merge after every failure and fires each alive peer's periodic
//!   summary refresh, which restores the replicas lost on crashed zones —
//!   so range-query recall over alive peers' data returns to 1.0.
//! * [`ChurnSchedule`] draws Poisson crash/departure/arrival processes
//!   over a sim-time horizon (exponential inter-arrival times, seeded),
//!   and [`RepairEngine::run_schedule`] executes them in time order,
//!   interleaving the refresh loop.
//!
//! The engine never decides *who* crashes at schedule-build time: victims
//! are sampled at execution among the currently alive, unprotected peers,
//! so a schedule stays valid for any interleaving of joins.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

// hyperm-lint: allow-file(panic-index) — overlay and node indices are dense and validated by the repair planner before use
use hyperm_cluster::Dataset;
use hyperm_core::{ChurnOutcome, HypermNetwork, JoinError, SphereRef};
use hyperm_sim::{FaultConfig, OpStats, PartitionPlan};
use hyperm_telemetry::{counters, names, SpanId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Policy knobs of the repair engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// Master switch: with `false`, crashes leave routing holes (no
    /// takeover) and the refresh loop is off — the paper-faithful baseline
    /// the `churn_failures` experiment compares against.
    pub enabled: bool,
    /// Sim-time ticks between two summary refreshes of the same peer. The
    /// soft-state TTL story: every published sphere is re-inserted at this
    /// period, so replicas lost to a crash are absent for at most one
    /// period (plus the takeover detection time).
    pub refresh_interval: u64,
    /// Budget of background merge passes run after each churn event.
    pub max_repair_passes: usize,
    /// Per-sphere publish attempt budget: a summary whose reliable publish
    /// keeps failing (route dead-ends under loss or a partition) is retried
    /// on each refresh round up to this many attempts, then abandoned with
    /// a `publish_abandoned` trace event.
    pub max_publish_attempts: usize,
    /// Optional message-level fault plan installed on query traffic.
    pub fault_plan: Option<FaultConfig>,
    /// Optional network partition: applied when the clock reaches
    /// `plan.start`, healed at `plan.end`. Healing triggers reconciliation
    /// (background merges + a full re-publication round) when repair is
    /// enabled.
    pub partition_plan: Option<PartitionPlan>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            refresh_interval: 50,
            max_repair_passes: 32,
            max_publish_attempts: 5,
            fault_plan: None,
            partition_plan: None,
        }
    }
}

impl RepairConfig {
    /// Builder-style master switch.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Builder-style refresh period override.
    pub fn with_refresh_interval(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "refresh interval must be positive");
        self.refresh_interval = ticks;
        self
    }

    /// Builder-style fault plan.
    pub fn with_fault_plan(mut self, plan: FaultConfig) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style partition plan.
    pub fn with_partition_plan(mut self, plan: PartitionPlan) -> Self {
        self.partition_plan = Some(plan);
        self
    }

    /// Builder-style publish retry budget.
    pub fn with_max_publish_attempts(mut self, attempts: usize) -> Self {
        assert!(attempts > 0, "at least one publish attempt is required");
        self.max_publish_attempts = attempts;
        self
    }
}

/// Aggregate counters of everything the engine did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairStats {
    /// Crash-stop failures processed.
    pub crashes: u64,
    /// Graceful departures processed.
    pub departures: u64,
    /// Live joins processed.
    pub arrivals: u64,
    /// Summary refreshes fired (one per peer per due period).
    pub refreshes: u64,
    /// Repair-protocol message cost: detection, takeover claims, zone and
    /// replica handoffs, background merges, neighbour updates.
    pub repair: OpStats,
    /// Soft-state republish message cost (invalidations + re-inserts).
    pub refresh: OpStats,
    /// Worst takeover latency observed, in sim ticks (detection timeout +
    /// handshake; the ISSUE's "takeover latency in sim time").
    pub max_takeover_rounds: u64,
    /// Spheres whose reliable publish failed and were queued for retry
    /// (counted once per sphere entering the queue).
    pub publishes_deferred: u64,
    /// Deferred spheres that a later retry or refresh round landed.
    pub publishes_recovered: u64,
    /// Deferred spheres given up on after
    /// [`RepairConfig::max_publish_attempts`].
    pub publishes_abandoned: u64,
}

impl RepairStats {
    /// Total maintenance messages (repair + refresh).
    pub fn total_messages(&self) -> u64 {
        self.repair.messages + self.refresh.messages
    }
}

/// A Hyper-M network plus a sim clock and the repair/refresh policy.
#[derive(Debug)]
pub struct RepairEngine {
    net: HypermNetwork,
    cfg: RepairConfig,
    now: u64,
    /// Per peer: when its summaries were last (re)published.
    last_refresh: Vec<u64>,
    /// Spheres whose reliable publish failed, with attempts spent so far.
    deferred: Vec<(SphereRef, usize)>,
    /// Partition lifecycle: applied at `plan.start`, healed at `plan.end`.
    partition_applied: bool,
    partition_healed: bool,
    partition_span: SpanId,
    stats: RepairStats,
}

impl RepairEngine {
    /// Wrap a freshly built network. Installs the fault plan, if any;
    /// publication time is taken as `t = 0` for every peer's refresh
    /// timer.
    pub fn new(mut net: HypermNetwork, cfg: RepairConfig) -> Self {
        net.set_fault_plan(cfg.fault_plan);
        net.recorder().set_time(0);
        let n = net.len();
        Self {
            net,
            cfg,
            now: 0,
            last_refresh: vec![0; n],
            deferred: Vec::new(),
            partition_applied: false,
            partition_healed: false,
            partition_span: SpanId::NONE,
            stats: RepairStats::default(),
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &HypermNetwork {
        &self.net
    }

    /// Mutable access to the wrapped network (e.g. for queries that need
    /// `&mut`, or manual maintenance).
    pub fn network_mut(&mut self) -> &mut HypermNetwork {
        &mut self.net
    }

    /// Current sim time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> &RepairStats {
        &self.stats
    }

    /// The policy in force.
    pub fn config(&self) -> &RepairConfig {
        &self.cfg
    }

    /// Advance the clock to `t`, firing every engine event that falls due
    /// on the way, in time order: partition transitions (split at
    /// `plan.start`, heal at `plan.end` — these fire even with repair
    /// disabled, they are environment, not policy) and periodic summary
    /// refreshes (repair enabled only). At equal times a transition fires
    /// before a refresh; refreshing peers tie-break by id, so runs are
    /// deterministic.
    pub fn advance_to(&mut self, t: u64) {
        assert!(t >= self.now, "time cannot go backwards");
        loop {
            // Next engine event within [now, t]: (time, priority, peer).
            let mut next: Option<(u64, u8, usize)> = None;
            if let Some(plan) = &self.cfg.partition_plan {
                if !self.partition_applied && plan.start <= t {
                    next = Some((plan.start, 0, usize::MAX));
                } else if self.partition_applied && !self.partition_healed && plan.end <= t {
                    next = Some((plan.end, 0, usize::MAX));
                }
            }
            if self.cfg.enabled {
                let due = (0..self.net.len())
                    .filter(|&p| self.net.is_alive(p))
                    .map(|p| (self.last_refresh[p] + self.cfg.refresh_interval, 1u8, p))
                    .filter(|&(d, _, _)| d <= t)
                    .min();
                next = match (next, due) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some((due_t, prio, peer)) = next else {
                break;
            };
            self.now = self.now.max(due_t);
            self.net.recorder().set_time(self.now);
            if prio == 0 {
                if !self.partition_applied {
                    self.apply_partition();
                } else {
                    self.heal_partition();
                }
            } else {
                self.refresh_peer(peer);
            }
        }
        self.now = t;
        // Trace events fired after this point carry the new sim time.
        self.net.recorder().set_time(self.now);
    }

    /// Install the configured partition on the network: links across
    /// components are severed in every overlay and for phase-2 fetches.
    fn apply_partition(&mut self) {
        // hyperm-lint: allow(panic-unwrap) — apply_partition is only called after the caller checked partition_plan.is_some()
        let plan = self.cfg.partition_plan.as_ref().expect("no partition plan");
        let map = plan.component_map(self.net.len());
        let components = plan.components.len();
        let (start, end) = (plan.start, plan.end);
        self.net.set_partition(Some(map));
        self.partition_applied = true;
        let tel = self.net.recorder();
        if tel.is_enabled() {
            self.partition_span = tel.span(
                SpanId::NONE,
                names::PARTITION,
                vec![
                    ("components", components.into()),
                    ("start", start.into()),
                    ("end", end.into()),
                ],
            );
        }
        if let Some(m) = tel.metrics() {
            m.add(names::PARTITION, 1);
        }
    }

    /// Heal the partition and reconcile: background merges, then a retry
    /// of every deferred publish and a full re-publication round, so
    /// summaries that could not cross the split land again (repair
    /// enabled only).
    fn heal_partition(&mut self) {
        self.net.set_partition(None);
        self.partition_healed = true;
        let tel = self.net.recorder().clone();
        if tel.is_enabled() {
            tel.event(
                self.partition_span,
                names::HEAL,
                vec![("t", self.now.into())],
            );
            tel.end(
                self.partition_span,
                names::PARTITION,
                vec![("healed_at", self.now.into())],
            );
        }
        if let Some(m) = tel.metrics() {
            m.add(names::HEAL, 1);
        }
        if self.cfg.enabled {
            self.stats.repair += self.net.repair_overlays(self.cfg.max_repair_passes);
            self.retry_deferred();
            self.refresh_all();
        }
    }

    /// Republish one peer's summaries now (restores its replicas
    /// everywhere, including zones re-owned after a crash). Spheres whose
    /// fault-aware publish fails are queued for retry on later rounds.
    pub fn refresh_peer(&mut self, peer: usize) {
        let report = self.net.refresh_peer_summaries_report(peer);
        self.stats.refresh += report.stats;
        self.stats.refreshes += 1;
        self.last_refresh[peer] = self.now;
        // The refresh re-publishes the peer's whole summary set, so it
        // supersedes that peer's queue entries: whatever still failed is
        // in `report.deferred`, everything else landed.
        let carried: Vec<(SphereRef, usize)> = self
            .deferred
            .iter()
            .filter(|(d, _)| d.peer == peer)
            .copied()
            .collect();
        self.deferred.retain(|(d, _)| d.peer != peer);
        self.stats.publishes_recovered += carried
            .iter()
            .filter(|(d, _)| !report.deferred.contains(d))
            .count() as u64;
        for s in report.deferred {
            let prev = carried.iter().find(|(d, _)| *d == s).map_or(0, |&(_, a)| a);
            self.note_deferred(s, prev + 1);
        }
    }

    /// Retry every queued publish once, through the fault-aware path.
    /// Spheres that land leave the queue; the rest burn one more attempt
    /// and are abandoned past the budget.
    pub fn retry_deferred(&mut self) {
        let queue = std::mem::take(&mut self.deferred);
        for (s, attempts) in queue {
            if !self.net.is_alive(s.peer) {
                continue; // the publisher is gone, and so is its data
            }
            let tel = self.net.recorder().clone();
            if tel.is_enabled() {
                tel.event(
                    SpanId::NONE,
                    names::PUBLISH_RETRY,
                    vec![
                        ("peer", s.peer.into()),
                        ("level", s.level.into()),
                        ("cluster", s.cluster.into()),
                        ("attempt", (attempts + 1).into()),
                    ],
                );
            }
            if let Some(m) = tel.metrics() {
                m.add(names::PUBLISH_RETRY, 1);
            }
            let (ok, stats) = self.net.publish_sphere(s);
            self.stats.refresh += stats;
            if ok {
                self.stats.publishes_recovered += 1;
            } else {
                self.note_deferred(s, attempts + 1);
            }
        }
    }

    /// Spheres currently awaiting a publish retry.
    pub fn deferred_publishes(&self) -> Vec<SphereRef> {
        self.deferred.iter().map(|&(s, _)| s).collect()
    }

    /// Queue `s` for retry with `attempts` already spent, or abandon it if
    /// the budget is gone.
    fn note_deferred(&mut self, s: SphereRef, attempts: usize) {
        if attempts >= self.cfg.max_publish_attempts {
            self.stats.publishes_abandoned += 1;
            let tel = self.net.recorder();
            if tel.is_enabled() {
                tel.event(
                    SpanId::NONE,
                    names::PUBLISH_ABANDONED,
                    vec![
                        ("peer", s.peer.into()),
                        ("level", s.level.into()),
                        ("cluster", s.cluster.into()),
                        ("attempts", attempts.into()),
                    ],
                );
            }
            if let Some(m) = tel.metrics() {
                m.add(names::PUBLISH_ABANDONED, 1);
            }
            return;
        }
        if let Some(e) = self.deferred.iter_mut().find(|(d, _)| *d == s) {
            e.1 = e.1.max(attempts);
        } else {
            self.deferred.push((s, attempts));
            self.stats.publishes_deferred += 1;
            if let Some(m) = self.net.recorder().metrics() {
                m.add(counters::PUBLISH_DEFERRED, 1);
            }
        }
    }

    /// Republish every alive peer's summaries now — the "one full refresh
    /// period elapsed" fast-forward used by tests and experiments.
    pub fn refresh_all(&mut self) {
        for p in 0..self.net.len() {
            if self.net.is_alive(p) {
                self.refresh_peer(p);
            }
        }
    }

    /// Crash-stop `peer` at the current time. With repair enabled: zone
    /// takeover, then background merges. Returns the churn outcome (the
    /// repair-off baseline only pays detection).
    pub fn crash(&mut self, peer: usize) -> ChurnOutcome {
        let out = self.net.crash_peer(peer, self.cfg.enabled);
        self.stats.crashes += 1;
        self.stats.repair += out.stats;
        self.stats.max_takeover_rounds = self.stats.max_takeover_rounds.max(out.takeover_rounds);
        if self.cfg.enabled {
            self.stats.repair += self.net.repair_overlays(self.cfg.max_repair_passes);
        }
        out
    }

    /// Graceful departure of `peer` at the current time (always performs
    /// the zone/replica handoff — a leaving node cooperates even when the
    /// failure-repair machinery is disabled).
    pub fn depart(&mut self, peer: usize) -> ChurnOutcome {
        let out = self.net.depart_peer(peer);
        self.stats.departures += 1;
        self.stats.repair += out.stats;
        self.stats.max_takeover_rounds = self.stats.max_takeover_rounds.max(out.takeover_rounds);
        self.stats.repair += self.net.repair_overlays(self.cfg.max_repair_passes);
        out
    }

    /// A latecomer joins with its collection (delegates to
    /// [`HypermNetwork::join_peer`]).
    pub fn join(&mut self, items: Dataset) -> Result<usize, JoinError> {
        let report = self.net.join_peer(items)?;
        self.stats.arrivals += 1;
        self.last_refresh.push(self.now);
        let tel = self.net.recorder();
        if tel.is_enabled() {
            tel.event(
                hyperm_telemetry::SpanId::NONE,
                names::JOIN,
                vec![("peer", report.peer.into())],
            );
        }
        Ok(report.peer)
    }

    /// Execute a churn schedule: events fire in time order with the
    /// refresh loop interleaved; victims are drawn uniformly from the
    /// alive peers not in `schedule.protect`. Events that cannot fire
    /// (nobody left to kill, arrival generator exhausted) are skipped and
    /// counted in the report.
    pub fn run_schedule<F>(&mut self, schedule: &ChurnSchedule, mut make_peer: F) -> ScheduleReport
    where
        F: FnMut(usize) -> Option<Dataset>,
    {
        let mut rng = StdRng::seed_from_u64(schedule.seed ^ 0x5eed_c0de);
        let mut report = ScheduleReport::default();
        for ev in &schedule.events {
            self.advance_to(ev.time);
            match ev.kind {
                ChurnEventKind::Crash | ChurnEventKind::Depart => {
                    let victims: Vec<usize> = (0..self.net.len())
                        .filter(|&p| self.net.is_alive(p) && !schedule.protect.contains(&p))
                        .collect();
                    if victims.len() <= 1 || self.net.alive_count() <= 2 {
                        report.skipped += 1;
                        continue;
                    }
                    let victim = victims[rng.gen_range(0..victims.len())];
                    let out = match ev.kind {
                        ChurnEventKind::Crash => {
                            report.crashes += 1;
                            self.crash(victim)
                        }
                        _ => {
                            report.departures += 1;
                            self.depart(victim)
                        }
                    };
                    report.max_takeover_rounds =
                        report.max_takeover_rounds.max(out.takeover_rounds);
                }
                ChurnEventKind::Arrive => match make_peer(self.net.len()) {
                    Some(items) => {
                        if self.join(items).is_ok() {
                            report.arrivals += 1;
                        } else {
                            report.skipped += 1;
                        }
                    }
                    None => report.skipped += 1,
                },
            }
        }
        self.advance_to(schedule.horizon);
        report
    }
}

/// What happened while executing a [`ChurnSchedule`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Crash events executed.
    pub crashes: u64,
    /// Departure events executed.
    pub departures: u64,
    /// Arrival events executed.
    pub arrivals: u64,
    /// Events skipped (no eligible victim / no data for an arrival).
    pub skipped: u64,
    /// Worst takeover latency among the executed events (sim ticks).
    pub max_takeover_rounds: u64,
}

/// Kind of a scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEventKind {
    /// Crash-stop failure of a random alive peer.
    Crash,
    /// Graceful departure of a random alive peer.
    Depart,
    /// A new peer arrives and joins.
    Arrive,
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Sim time at which the event fires.
    pub time: u64,
    /// What happens.
    pub kind: ChurnEventKind,
}

/// A pre-drawn sequence of churn events over a sim-time horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// Events in non-decreasing time order.
    pub events: Vec<ChurnEvent>,
    /// End of the simulated session (the engine advances here after the
    /// last event, letting trailing refreshes fire).
    pub horizon: u64,
    /// Peers never selected as victims (e.g. the querying peer).
    pub protect: Vec<usize>,
    /// Seed for victim selection at execution time.
    pub seed: u64,
}

impl ChurnSchedule {
    /// Draw independent Poisson processes for crashes, departures and
    /// arrivals over `[0, horizon]`. Rates are events per tick; a rate of
    /// 0 disables that process. Inter-arrival gaps are exponential
    /// (`dt = −ln(1−u)/rate`), rounded up to at least one tick.
    pub fn poisson(
        horizon: u64,
        crash_rate: f64,
        depart_rate: f64,
        arrival_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(horizon > 0, "empty horizon");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for (rate, kind) in [
            (crash_rate, ChurnEventKind::Crash),
            (depart_rate, ChurnEventKind::Depart),
            (arrival_rate, ChurnEventKind::Arrive),
        ] {
            assert!(rate >= 0.0 && rate.is_finite(), "bad rate {rate}");
            if rate <= 0.0 {
                continue;
            }
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / rate;
                // `t` can go NaN-free infinite only via ln(0); either way
                // anything not strictly inside the horizon ends the draw.
                if t >= horizon as f64 || !t.is_finite() {
                    break;
                }
                events.push(ChurnEvent {
                    time: (t.ceil() as u64).max(1),
                    kind,
                });
            }
        }
        events.sort_by_key(|e| e.time);
        Self {
            events,
            horizon,
            protect: Vec::new(),
            seed,
        }
    }

    /// Builder-style victim protection list.
    pub fn with_protect(mut self, protect: Vec<usize>) -> Self {
        self.protect = protect;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperm_core::HypermConfig;

    fn data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(8);
        let mut row = [0.0f64; 8];
        let centre: f64 = rng.gen::<f64>() * 0.5;
        for _ in 0..n {
            for x in row.iter_mut() {
                *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
            }
            ds.push_row(&row);
        }
        ds
    }

    fn build(n_peers: usize, seed: u64) -> HypermNetwork {
        let peers: Vec<Dataset> = (0..n_peers)
            .map(|p| data(seed * 100 + p as u64, 20))
            .collect();
        let cfg = HypermConfig::new(8)
            .with_levels(3)
            .with_clusters_per_peer(3)
            .with_seed(seed);
        HypermNetwork::build(peers, cfg).unwrap().0
    }

    #[test]
    fn crash_then_refresh_restores_alive_recall() {
        let mut eng = RepairEngine::new(build(10, 1), RepairConfig::default());
        eng.crash(4);
        eng.crash(7);
        eng.refresh_all();
        let net = eng.network();
        // Every alive item is still found.
        for p in 0..net.len() {
            if !net.is_alive(p) || p == 4 || p == 7 {
                continue;
            }
            let q = net.peer(p).items.row(0).to_vec();
            let res = net.range_query(0, &q, 1e-9, None);
            assert!(res.items.contains(&(p, 0)), "peer {p} item lost");
        }
        assert!(eng.stats().crashes == 2 && eng.stats().refreshes > 0);
        assert!(eng.stats().max_takeover_rounds >= hyperm_can::DETECT_TICKS);
    }

    #[test]
    fn advance_fires_periodic_refreshes() {
        let cfg = RepairConfig::default().with_refresh_interval(10);
        let mut eng = RepairEngine::new(build(4, 2), cfg);
        eng.advance_to(35);
        // 4 peers × 3 due periods (t=10, 20, 30).
        assert_eq!(eng.stats().refreshes, 12);
        assert_eq!(eng.now(), 35);
    }

    #[test]
    fn disabled_engine_skips_refresh_and_takeover() {
        let cfg = RepairConfig::default().with_enabled(false);
        let mut eng = RepairEngine::new(build(6, 3), cfg);
        eng.crash(2);
        eng.advance_to(1_000);
        assert_eq!(eng.stats().refreshes, 0);
        assert_eq!(eng.stats().max_takeover_rounds, 0);
        // The hole is real: overlay invariants are intentionally broken,
        // but queries still terminate (no panic) and may just miss data.
        let net = eng.network();
        let q = net.peer(1).items.row(0).to_vec();
        let _ = net.range_query(0, &q, 0.2, None);
    }

    #[test]
    fn poisson_schedule_is_deterministic_and_ordered() {
        let a = ChurnSchedule::poisson(500, 0.02, 0.01, 0.005, 9);
        let b = ChurnSchedule::poisson(500, 0.02, 0.01, 0.005, 9);
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.events.iter().all(|e| e.time >= 1 && e.time <= 500));
    }

    #[test]
    fn schedule_execution_respects_protection() {
        let net = build(8, 4);
        let mut eng = RepairEngine::new(net, RepairConfig::default());
        let sched = ChurnSchedule::poisson(300, 0.03, 0.01, 0.0, 11).with_protect(vec![0]);
        let report = eng.run_schedule(&sched, |_| None);
        assert!(eng.network().is_alive(0), "protected peer was killed");
        assert!(report.crashes + report.departures > 0);
        assert_eq!(eng.now(), 300);
        // Structure stays sound under repair.
        for l in 0..eng.network().levels() {
            eng.network().overlay(l).check_invariants();
        }
    }

    #[test]
    fn partition_splits_then_heals_with_full_recall() {
        let net = build(10, 6);
        let plan = PartitionPlan::halves(10, 20, 120);
        let cfg = RepairConfig::default()
            .with_refresh_interval(25)
            .with_partition_plan(plan);
        let mut eng = RepairEngine::new(net, cfg);

        // Mid-window the split is in force: cross-component fetches are
        // severed and refreshes from either side defer the spheres whose
        // owner zone sits across the divide.
        eng.advance_to(60);
        assert!(eng.network().partition_active(), "split not applied");
        assert!(!eng.network().peers_connected(0, 9));
        assert!(eng.network().peers_connected(0, 1));

        // Past plan.end the engine heals, reconciles and re-publishes;
        // recall over every alive peer's data is 1.0 again within the
        // bounded repair rounds (here: the heal round itself plus one
        // refresh period).
        eng.advance_to(200);
        assert!(!eng.network().partition_active(), "partition never healed");
        assert!(
            eng.deferred_publishes().is_empty(),
            "deferred queue should drain after healing"
        );
        let net = eng.network();
        for p in 0..net.len() {
            let q = net.peer(p).items.row(0).to_vec();
            let res = net.range_query(0, &q, 1e-9, None);
            assert!(res.items.contains(&(p, 0)), "peer {p} item lost post-heal");
        }
    }

    #[test]
    fn partition_transitions_fire_even_with_repair_disabled() {
        let cfg = RepairConfig::default()
            .with_enabled(false)
            .with_partition_plan(PartitionPlan::halves(6, 10, 30));
        let mut eng = RepairEngine::new(build(6, 7), cfg);
        eng.advance_to(15);
        assert!(eng.network().partition_active());
        eng.advance_to(40);
        assert!(!eng.network().partition_active());
        assert_eq!(eng.stats().refreshes, 0, "refresh loop must stay off");
    }

    #[test]
    fn total_loss_defers_then_abandons_publishes() {
        let cfg = RepairConfig::default()
            .with_refresh_interval(10)
            .with_max_publish_attempts(3)
            .with_fault_plan(FaultConfig::lossy(1.0).with_seed(42));
        let mut eng = RepairEngine::new(build(6, 8), cfg);
        eng.advance_to(60);
        let st = eng.stats();
        assert!(
            st.publishes_deferred > 0,
            "nothing deferred under 100% loss"
        );
        assert!(
            st.publishes_abandoned > 0,
            "attempt budget of 3 should be spent within 6 refresh rounds"
        );
        // Every queued sphere is within its attempt budget.
        assert!(eng
            .deferred_publishes()
            .iter()
            .all(|s| s.peer < eng.network().len()));
    }

    #[test]
    fn arrivals_join_through_schedule() {
        let mut eng = RepairEngine::new(build(5, 5), RepairConfig::default());
        let sched = ChurnSchedule::poisson(200, 0.0, 0.0, 0.02, 13);
        let expected = sched.events.len() as u64;
        let report = eng.run_schedule(&sched, |id| Some(data(900 + id as u64, 10)));
        assert_eq!(report.arrivals, expected);
        assert_eq!(eng.network().len(), 5 + expected as usize);
    }
}
