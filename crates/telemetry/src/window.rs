//! Sliding-window node metrics: fixed-size ring time-series cheap enough
//! to stay on by default in the node runtime.
//!
//! A [`Window`] buckets cost observations by a caller-supplied monotone
//! **tick** — the node runtime uses its frame counter, the simulators can
//! use the sim clock; wall time is never read, so window contents are as
//! deterministic as the clock driving them. Each bucket accumulates the
//! paper's cost axes (ops, hops, messages, bytes, retries, failed routes)
//! plus rejected requests, a log2 latency histogram, and per-level *heat*
//! — how many overlay operations touched each wavelet level (a range
//! query's phase 1 touches every level; publish/get/route touch exactly
//! one). The ring keeps the most recent `buckets` buckets; recording is a
//! few adds under one mutex, and a [`WindowSnapshot`] serialises to the
//! JSON the `Stats` protocol request returns.
//!
//! Snapshots are **mergeable**: the monitor's `--watch` mode sums per-node
//! snapshots into a cluster aggregate (histograms merge bucket-wise, so
//! cluster p50/p99 stay exact with respect to bucket resolution).

use crate::json::{JsonObj, JsonValue};
use crate::metrics::Log2Hist;
use hyperm_sim::OpStats;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Window shape: how many buckets the ring keeps, how many clock ticks
/// each bucket spans, and how many wavelet levels heat is tracked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Ring capacity in buckets.
    pub buckets: usize,
    /// Clock ticks per bucket (≥ 1).
    pub bucket_ticks: u64,
    /// Wavelet levels tracked by the heat series.
    pub levels: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            buckets: 64,
            bucket_ticks: 1,
            levels: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    /// Bucket index: `tick / bucket_ticks`.
    index: u64,
    ops: u64,
    rejected: u64,
    retries: u64,
    failed_routes: u64,
    hops: u64,
    messages: u64,
    bytes: u64,
    latency_us: Log2Hist,
    heat: Vec<u64>,
}

impl Bucket {
    fn new(index: u64, levels: usize) -> Self {
        Self {
            index,
            ops: 0,
            rejected: 0,
            retries: 0,
            failed_routes: 0,
            hops: 0,
            messages: 0,
            bytes: 0,
            latency_us: Log2Hist::default(),
            heat: vec![0; levels],
        }
    }
}

struct Inner {
    tick: u64,
    ring: VecDeque<Bucket>,
}

/// A sliding window of cost buckets. All mutation goes through `&self`;
/// the runtime shares one window across its serve loop.
pub struct Window {
    cfg: WindowConfig,
    inner: Mutex<Inner>,
}

impl Default for Window {
    fn default() -> Self {
        Self::new(WindowConfig::default())
    }
}

impl Window {
    /// An empty window with the given shape (`bucket_ticks` clamps to 1,
    /// `buckets` to ≥ 1).
    pub fn new(mut cfg: WindowConfig) -> Self {
        cfg.buckets = cfg.buckets.max(1);
        cfg.bucket_ticks = cfg.bucket_ticks.max(1);
        Self {
            cfg,
            inner: Mutex::new(Inner {
                tick: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    /// The configured shape.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Advance the window clock to `tick` (monotone; a smaller value is
    /// ignored). Subsequent records land in `tick`'s bucket.
    pub fn advance(&self, tick: u64) {
        let mut inner = self.lock();
        if tick > inner.tick {
            inner.tick = tick;
        }
    }

    fn current<'a>(&self, inner: &'a mut Inner) -> &'a mut Bucket {
        let index = inner.tick / self.cfg.bucket_ticks;
        let fresh = match inner.ring.back() {
            Some(b) => b.index < index,
            None => true,
        };
        if fresh {
            inner.ring.push_back(Bucket::new(index, self.cfg.levels));
            while inner.ring.len() > self.cfg.buckets {
                inner.ring.pop_front();
            }
        }
        inner.ring.back_mut().expect("ring non-empty")
    }

    /// Record one served operation: simulated cost plus host latency.
    pub fn record_op(&self, stats: &OpStats, latency_us: u64) {
        let mut inner = self.lock();
        let b = self.current(&mut inner);
        b.ops += 1;
        b.retries += stats.retries;
        b.failed_routes += stats.failed_routes;
        b.hops += stats.hops;
        b.messages += stats.messages;
        b.bytes += stats.bytes;
        b.latency_us.record(latency_us);
    }

    /// Record a rejected request (failure ack sent).
    pub fn record_rejected(&self) {
        let mut inner = self.lock();
        let b = self.current(&mut inner);
        b.ops += 1;
        b.rejected += 1;
    }

    /// Record one overlay operation touching wavelet level `level`
    /// (levels beyond the configured heat depth are dropped).
    pub fn record_level(&self, level: usize) {
        let mut inner = self.lock();
        let b = self.current(&mut inner);
        if let Some(h) = b.heat.get_mut(level) {
            *h += 1;
        }
    }

    /// Snapshot the window. `node` and `seq` identify the scrape (the
    /// runtime stamps its transport peer id and a monotone sequence).
    pub fn snapshot(&self, node: u64, seq: u64) -> WindowSnapshot {
        let inner = self.lock();
        let mut snap = WindowSnapshot {
            node,
            seq,
            tick: inner.tick,
            bucket_ticks: self.cfg.bucket_ticks,
            capacity: self.cfg.buckets,
            ops: 0,
            rejected: 0,
            retries: 0,
            failed_routes: 0,
            hops: 0,
            messages: 0,
            bytes: 0,
            latency_count: 0,
            latency_sum_us: 0,
            latency_buckets: Vec::new(),
            heat: vec![0; self.cfg.levels],
            series: Vec::new(),
        };
        let mut latency: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
        for b in &inner.ring {
            snap.ops += b.ops;
            snap.rejected += b.rejected;
            snap.retries += b.retries;
            snap.failed_routes += b.failed_routes;
            snap.hops += b.hops;
            snap.messages += b.messages;
            snap.bytes += b.bytes;
            for (acc, &h) in snap.heat.iter_mut().zip(&b.heat) {
                *acc += h;
            }
            snap.latency_count += b.latency_us.count;
            snap.latency_sum_us += b.latency_us.sum;
            for (lo, hi, count) in b.latency_us.nonzero_buckets() {
                latency.entry(lo).or_insert((hi, 0)).1 += count;
            }
            snap.series.push((b.index, b.ops));
        }
        snap.latency_buckets = latency
            .into_iter()
            .map(|(lo, (hi, count))| (lo, hi, count))
            .collect();
        snap
    }
}

/// Serialisable view of a [`Window`]: totals over the retained buckets,
/// the merged latency histogram (as non-empty `[lo, hi, count]` rows, so
/// snapshots merge exactly), the per-level heat totals and the per-bucket
/// ops series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Transport peer id of the scraped node (0 = unknown/aggregate).
    pub node: u64,
    /// Monotone scrape sequence stamped by the serving runtime.
    pub seq: u64,
    /// Window clock (frame count or sim ticks) at snapshot time.
    pub tick: u64,
    /// Clock ticks per bucket.
    pub bucket_ticks: u64,
    /// Ring capacity in buckets.
    pub capacity: usize,
    /// Operations served across retained buckets.
    pub ops: u64,
    /// Requests rejected (failure acks).
    pub rejected: u64,
    /// Simulated retransmissions.
    pub retries: u64,
    /// Simulated failed routing attempts.
    pub failed_routes: u64,
    /// Simulated overlay hops.
    pub hops: u64,
    /// Simulated messages.
    pub messages: u64,
    /// Simulated bytes.
    pub bytes: u64,
    /// Latency samples recorded.
    pub latency_count: u64,
    /// Sum of latency samples, microseconds.
    pub latency_sum_us: u64,
    /// Non-empty log2 latency buckets as `(lo, hi, count)`.
    pub latency_buckets: Vec<(u64, u64, u64)>,
    /// Overlay operations per wavelet level.
    pub heat: Vec<u64>,
    /// Per-bucket `(bucket index, ops)` series, oldest first.
    pub series: Vec<(u64, u64)>,
}

impl WindowSnapshot {
    /// Operations per bucket interval, averaged over the buckets the
    /// series actually spans (0 when empty).
    pub fn qps(&self) -> f64 {
        match (self.series.first(), self.series.last()) {
            (Some(&(first, _)), Some(&(last, _))) => {
                let span = last - first + 1;
                self.ops as f64 / span as f64
            }
            _ => 0.0,
        }
    }

    /// Latency quantile in microseconds: upper bound of the log2 bucket
    /// containing the `q`-quantile sample (0 when no samples).
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.latency_count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.latency_count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(_lo, hi, count) in &self.latency_buckets {
            seen += count;
            if seen >= rank {
                return hi;
            }
        }
        self.latency_buckets.last().map_or(0, |&(_, hi, _)| hi)
    }

    /// Median latency, microseconds.
    pub fn p50_us(&self) -> u64 {
        self.latency_quantile_us(0.50)
    }

    /// 99th-percentile latency, microseconds.
    pub fn p99_us(&self) -> u64 {
        self.latency_quantile_us(0.99)
    }

    /// Hottest level's heat (0 when no levels tracked).
    pub fn heat_max(&self) -> u64 {
        self.heat.iter().copied().max().unwrap_or(0)
    }

    /// Merge per-node snapshots into a cluster aggregate: totals and
    /// histograms sum; `tick` takes the maximum; per-bucket series are
    /// joined on bucket index; `node`/`seq` reset to 0.
    pub fn merge(snaps: &[WindowSnapshot]) -> WindowSnapshot {
        let mut out = WindowSnapshot::default();
        let mut latency: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
        let mut series: std::collections::BTreeMap<u64, u64> = Default::default();
        for s in snaps {
            out.tick = out.tick.max(s.tick);
            out.bucket_ticks = out.bucket_ticks.max(s.bucket_ticks);
            out.capacity = out.capacity.max(s.capacity);
            out.ops += s.ops;
            out.rejected += s.rejected;
            out.retries += s.retries;
            out.failed_routes += s.failed_routes;
            out.hops += s.hops;
            out.messages += s.messages;
            out.bytes += s.bytes;
            out.latency_count += s.latency_count;
            out.latency_sum_us += s.latency_sum_us;
            if out.heat.len() < s.heat.len() {
                out.heat.resize(s.heat.len(), 0);
            }
            for (i, &h) in s.heat.iter().enumerate() {
                out.heat[i] += h;
            }
            for &(lo, hi, count) in &s.latency_buckets {
                let e = latency.entry(lo).or_insert((hi, 0));
                e.1 += count;
            }
            for &(idx, ops) in &s.series {
                *series.entry(idx).or_insert(0) += ops;
            }
        }
        out.latency_buckets = latency
            .into_iter()
            .map(|(lo, (hi, count))| (lo, hi, count))
            .collect();
        out.series = series.into_iter().collect();
        out
    }

    /// Render as a single-line JSON object (what `StatsAck` carries).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .latency_buckets
            .iter()
            .map(|&(lo, hi, c)| format!("[{lo}, {hi}, {c}]"))
            .collect();
        let heat: Vec<String> = self.heat.iter().map(u64::to_string).collect();
        let series: Vec<String> = self
            .series
            .iter()
            .map(|&(idx, ops)| format!("[{idx}, {ops}]"))
            .collect();
        JsonObj::new()
            .u("node", self.node)
            .u("seq", self.seq)
            .u("tick", self.tick)
            .u("bucket_ticks", self.bucket_ticks)
            .u("capacity", self.capacity as u64)
            .u("ops", self.ops)
            .u("rejected", self.rejected)
            .u("retries", self.retries)
            .u("failed_routes", self.failed_routes)
            .u("hops", self.hops)
            .u("messages", self.messages)
            .u("bytes", self.bytes)
            .f("qps", self.qps(), 3)
            .u("p50_us", self.p50_us())
            .u("p99_us", self.p99_us())
            .u("latency_count", self.latency_count)
            .u("latency_sum_us", self.latency_sum_us)
            .raw("latency_buckets", format!("[{}]", buckets.join(", ")))
            .raw("heat", format!("[{}]", heat.join(", ")))
            .raw("series", format!("[{}]", series.join(", ")))
            .render()
    }

    /// Parse a snapshot back from [`WindowSnapshot::to_json`] output.
    /// `None` when required fields are missing or ill-typed (derived
    /// fields like `qps`/`p50_us` are recomputed, not trusted).
    pub fn from_json(v: &JsonValue) -> Option<WindowSnapshot> {
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
        let mut snap = WindowSnapshot {
            node: u("node")?,
            seq: u("seq")?,
            tick: u("tick")?,
            bucket_ticks: u("bucket_ticks")?,
            capacity: usize::try_from(u("capacity")?).ok()?,
            ops: u("ops")?,
            rejected: u("rejected")?,
            retries: u("retries")?,
            failed_routes: u("failed_routes")?,
            hops: u("hops")?,
            messages: u("messages")?,
            bytes: u("bytes")?,
            latency_count: u("latency_count")?,
            latency_sum_us: u("latency_sum_us")?,
            latency_buckets: Vec::new(),
            heat: Vec::new(),
            series: Vec::new(),
        };
        for row in v.get("latency_buckets")?.as_arr()? {
            let row = row.as_arr()?;
            if row.len() != 3 {
                return None;
            }
            snap.latency_buckets
                .push((row[0].as_u64()?, row[1].as_u64()?, row[2].as_u64()?));
        }
        for h in v.get("heat")?.as_arr()? {
            snap.heat.push(h.as_u64()?);
        }
        for row in v.get("series")?.as_arr()? {
            let row = row.as_arr()?;
            if row.len() != 2 {
                return None;
            }
            snap.series.push((row[0].as_u64()?, row[1].as_u64()?));
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(hops: u64, messages: u64, bytes: u64) -> OpStats {
        OpStats {
            hops,
            messages,
            bytes,
            retries: 0,
            failed_routes: 0,
        }
    }

    #[test]
    fn buckets_rotate_and_evict() {
        let w = Window::new(WindowConfig {
            buckets: 3,
            bucket_ticks: 10,
            levels: 2,
        });
        for tick in [0u64, 5, 12, 25, 38, 41] {
            w.advance(tick);
            w.record_op(&op(2, 3, 100), 50);
        }
        let snap = w.snapshot(7, 1);
        // Ticks 0 and 5 share bucket 0; buckets 0 and 1 were evicted when
        // buckets 3 and 4 arrived — the ring keeps the 3 newest.
        assert_eq!(
            snap.series,
            vec![(2, 1), (3, 1), (4, 1)],
            "oldest buckets evicted"
        );
        assert_eq!(snap.ops, 3);
        assert_eq!(snap.hops, 6);
        assert_eq!(snap.node, 7);
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.tick, 41);
    }

    #[test]
    fn clock_is_monotone() {
        let w = Window::default();
        w.advance(10);
        w.advance(3); // ignored
        w.record_op(&op(1, 1, 1), 10);
        let snap = w.snapshot(0, 0);
        assert_eq!(snap.tick, 10);
        assert_eq!(snap.series, vec![(10, 1)]);
    }

    #[test]
    fn quantiles_and_rates() {
        let w = Window::new(WindowConfig {
            buckets: 8,
            bucket_ticks: 1,
            levels: 4,
        });
        for i in 0..100u64 {
            w.advance(i / 25);
            // 99 fast ops and one slow one.
            w.record_op(&op(1, 2, 64), if i == 99 { 100_000 } else { 100 });
        }
        w.record_rejected();
        w.record_level(0);
        w.record_level(0);
        w.record_level(3);
        w.record_level(9); // beyond tracked depth: dropped
        let snap = w.snapshot(1, 2);
        assert_eq!(snap.ops, 101);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.latency_count, 100);
        // p50 falls in the bucket containing 100 (64..127).
        assert_eq!(snap.p50_us(), 127);
        // p99 rank = ceil(0.99*100) = 99 ≤ 99 fast samples → still fast.
        assert_eq!(snap.p99_us(), 127);
        assert_eq!(snap.latency_quantile_us(1.0), 131071);
        assert_eq!(snap.heat, vec![2, 0, 0, 1]);
        assert_eq!(snap.heat_max(), 2);
        // 101 ops over buckets 0..=3 → ~25/bucket.
        assert!((snap.qps() - 101.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let w = Window::new(WindowConfig {
            buckets: 4,
            bucket_ticks: 2,
            levels: 3,
        });
        w.advance(1);
        w.record_op(&op(3, 5, 256), 120);
        w.record_level(1);
        w.advance(5);
        w.record_rejected();
        let snap = w.snapshot(42, 9);
        let json = snap.to_json();
        let parsed = WindowSnapshot::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn merge_aggregates_nodes() {
        let mk = |node: u64, latency: u64, ops: u64| {
            let w = Window::default();
            w.advance(node); // distinct buckets per node
            for _ in 0..ops {
                w.record_op(&op(1, 1, 10), latency);
            }
            w.snapshot(node, 1)
        };
        let a = mk(1, 100, 10);
        let b = mk(2, 100_000, 10);
        let merged = WindowSnapshot::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.ops, 20);
        assert_eq!(merged.bytes, 200);
        assert_eq!(merged.latency_count, 20);
        assert_eq!(merged.node, 0);
        assert_eq!(merged.tick, 2);
        // Half the cluster's samples are slow: p99 must see them.
        assert!(merged.p99_us() >= 65536);
        assert_eq!(merged.p50_us(), a.p50_us());
        assert_eq!(merged.series, vec![(1, 10), (2, 10)]);
        assert_eq!(WindowSnapshot::merge(&[]), WindowSnapshot::default());
    }
}
