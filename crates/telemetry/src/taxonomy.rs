//! The canonical event-name taxonomy.
//!
//! Every span or instant name passed to a [`crate::Recorder`] emit site
//! (`span` / `event` / `end`) and every name the forensics matchers
//! (`spans_named` / `event_count`) look for must come from this module —
//! it is the single source of truth that keeps producers (overlay, query,
//! publish, repair code) and consumers (`trace_query`, metrics dashboards,
//! the integration tests) from drifting apart. `hyperm-lint`'s
//! telemetry-taxonomy pass enforces this statically: a string literal at
//! an emit site that is not in [`names::ALL`] is a lint violation.
//!
//! Naming convention (relied on by the lint's const resolution): each
//! const is the SCREAMING_SNAKE_CASE spelling of its lowercase value,
//! e.g. `names::OVERLAY_LOOKUP == "overlay_lookup"`. The
//! `taxonomy_consts_match_values` test enforces the convention.

/// Canonical span and instant-event names.
pub mod names {
    // ---- spans ----------------------------------------------------------

    /// Root span of one range/knn/point query.
    pub const QUERY: &str = "query";
    /// Per-level overlay range/point lookup inside a query.
    pub const OVERLAY_LOOKUP: &str = "overlay_lookup";
    /// Replica flood of one summary sphere (publish or lookup side).
    pub const FLOOD: &str = "flood";
    /// One peer publishing its per-level summaries.
    pub const PUBLISH: &str = "publish";
    /// One soft-state TTL refresh round.
    pub const REFRESH: &str = "refresh";
    /// One overlay repair step (merge/handoff/relocation round).
    pub const REPAIR_STEP: &str = "repair_step";
    /// Lifetime of an injected underlay partition (ends at heal).
    pub const PARTITION: &str = "partition";
    /// Lifetime of one transport endpoint (bind → close).
    pub const TRANSPORT: &str = "transport";
    /// One request served by a node runtime (recv → reply sent).
    pub const SERVE: &str = "serve";

    // ---- instants -------------------------------------------------------

    /// One greedy CAN routing hop.
    pub const ROUTE_HOP: &str = "route_hop";
    /// A lossy hop was retried.
    pub const RETRY: &str = "retry";
    /// A message was dropped by fault injection.
    pub const DROP: &str = "drop";
    /// Routing reached a dead end (no live neighbour closer to target).
    pub const DEAD_END: &str = "dead_end";
    /// A node was visited during a flood walk.
    pub const VISIT: &str = "visit";
    /// A flood edge was traversed.
    pub const FLOOD_EDGE: &str = "flood_edge";
    /// A replica of a summary sphere was stored.
    pub const REPLICA: &str = "replica";
    /// A k-nn probe radius was evaluated at some level.
    pub const PROBE: &str = "probe";
    /// Per-level score aggregation finished.
    pub const SCORE: &str = "score";
    /// Items fetched from a candidate peer.
    pub const FETCH: &str = "fetch";
    /// A fetch timed out on an unreachable peer.
    pub const FETCH_TIMEOUT: &str = "fetch_timeout";
    /// The fetch window slid past unreachable peers to a fallback.
    pub const FETCH_FALLBACK: &str = "fetch_fallback";
    /// A dead node's zone was taken over during repair.
    pub const TAKEOVER: &str = "takeover";
    /// A peer joined the network (engine-driven arrival).
    pub const JOIN: &str = "join";
    /// An injected partition healed.
    pub const HEAL: &str = "heal";
    /// An unacked publish was re-queued for the next refresh round.
    pub const PUBLISH_RETRY: &str = "publish_retry";
    /// A publish exceeded its attempt budget and was abandoned.
    pub const PUBLISH_ABANDONED: &str = "publish_abandoned";
    /// A frame was sent by a transport endpoint.
    pub const FRAME_TX: &str = "frame_tx";
    /// A frame was received by a transport endpoint.
    pub const FRAME_RX: &str = "frame_rx";
    /// A frame was rejected (undecodable, oversized, or unroutable).
    pub const FRAME_DROP: &str = "frame_drop";
    /// A bounded inbox blocked or refused a sender (backpressure).
    pub const BACKPRESSURE: &str = "backpressure";
    /// A transport connection was established.
    pub const CONNECT: &str = "connect";
    /// A transport connection closed.
    pub const DISCONNECT: &str = "disconnect";
    /// A node runtime relayed a request/reply on behalf of another peer.
    pub const FORWARD: &str = "forward";
    /// A phase-1 level lookup was answered from the popular-summary cache.
    pub const CACHE_HIT: &str = "cache_hit";
    /// A phase-1 level lookup missed the popular-summary cache.
    pub const CACHE_MISS: &str = "cache_miss";
    /// Cached summaries were evicted (TTL expiry on a refresh round).
    pub const CACHE_EVICT: &str = "cache_evict";
    /// A hot zone was split and half granted to a colder host.
    pub const ZONE_SPLIT: &str = "zone_split";
    /// Zone fragments were merged back (load-triggered quiescence pass).
    pub const ZONE_MERGE: &str = "zone_merge";
    /// A virtual zone migrated off an overloaded host.
    pub const VNODE_MIGRATE: &str = "vnode_migrate";
    /// A node runtime served a window-stats scrape request.
    pub const STATS: &str = "stats";
    /// A wire heartbeat request was served.
    pub const PING: &str = "ping";
    /// A wire heartbeat answer was received.
    pub const PONG: &str = "pong";
    /// A peer exceeded its missed-ping threshold and was marked dead.
    pub const PEER_DOWN: &str = "peer_down";
    /// A previously-joined peer re-joined (crash-restart resync) or a
    /// degraded link to the head recovered.
    pub const REJOIN: &str = "rejoin";
    /// A reply to an already-timed-out request arrived and was discarded.
    pub const STALE_REPLY: &str = "stale_reply";
    /// A dropped transport connection was re-established.
    pub const RECONNECT: &str = "reconnect";
    /// A request exhausted its retry budget and failed for good.
    pub const GAVE_UP: &str = "gave_up";

    /// Every canonical name. `hyperm-lint` loads this slice at run time,
    /// so an emit site can only name events listed here.
    pub const ALL: &[&str] = &[
        QUERY,
        OVERLAY_LOOKUP,
        FLOOD,
        PUBLISH,
        REFRESH,
        REPAIR_STEP,
        PARTITION,
        ROUTE_HOP,
        RETRY,
        DROP,
        DEAD_END,
        VISIT,
        FLOOD_EDGE,
        REPLICA,
        PROBE,
        SCORE,
        FETCH,
        FETCH_TIMEOUT,
        FETCH_FALLBACK,
        TAKEOVER,
        JOIN,
        HEAL,
        PUBLISH_RETRY,
        PUBLISH_ABANDONED,
        TRANSPORT,
        SERVE,
        FRAME_TX,
        FRAME_RX,
        FRAME_DROP,
        BACKPRESSURE,
        CONNECT,
        DISCONNECT,
        FORWARD,
        CACHE_HIT,
        CACHE_MISS,
        CACHE_EVICT,
        ZONE_SPLIT,
        ZONE_MERGE,
        VNODE_MIGRATE,
        STATS,
        PING,
        PONG,
        PEER_DOWN,
        REJOIN,
        STALE_REPLY,
        RECONNECT,
        GAVE_UP,
    ];

    /// The span subset of [`ALL`] (everything else is an instant).
    pub const SPANS: &[&str] = &[
        QUERY,
        OVERLAY_LOOKUP,
        FLOOD,
        PUBLISH,
        REFRESH,
        REPAIR_STEP,
        PARTITION,
        TRANSPORT,
        SERVE,
    ];
}

/// Names of metrics-registry counters that are not also event names.
/// Counters named after an event (e.g. `fetch_timeout`) reuse the
/// [`names`] const; only counter-only aggregates live here.
pub mod counters {
    /// Publishes deferred to the next refresh round (unacked spheres).
    pub const PUBLISH_DEFERRED: &str = "publish_deferred";
    /// Queries executed (whole-op counter).
    pub const QUERIES: &str = "queries";
    /// Summaries evicted from the popular-summary cache (aggregate).
    pub const CACHE_EVICTIONS: &str = "cache_evictions";
    /// Virtual-zone migrations executed by the load balancer.
    pub const VNODE_MIGRATIONS: &str = "vnode_migrations";
    /// Window-stats scrapes served by a node runtime (aggregate).
    pub const STATS_SERVED: &str = "stats_served";

    /// Every counter-only name.
    pub const ALL: &[&str] = &[
        PUBLISH_DEFERRED,
        QUERIES,
        CACHE_EVICTIONS,
        VNODE_MIGRATIONS,
        STATS_SERVED,
    ];
}

/// Whether `name` is a canonical event/span name.
pub fn is_canonical(name: &str) -> bool {
    names::ALL.contains(&name)
}

/// Whether `name` is valid as a metrics counter: either a canonical
/// event name or a counter-only aggregate.
pub fn is_canonical_counter(name: &str) -> bool {
    is_canonical(name) || counters::ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_duplicate_free_and_lowercase() {
        let mut seen = std::collections::BTreeSet::new();
        for &n in names::ALL {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "name {n:?} must be lowercase_snake"
            );
            assert!(seen.insert(n), "duplicate taxonomy entry {n:?}");
        }
        for &s in names::SPANS {
            assert!(is_canonical(s), "span {s:?} missing from ALL");
        }
    }

    #[test]
    fn taxonomy_consts_match_values() {
        // The lint resolves `names::IDENT` by lowercasing the ident; this
        // pins the convention for every const referenced from ALL.
        for &n in names::ALL {
            assert_eq!(n, n.to_ascii_lowercase());
        }
        assert_eq!(names::OVERLAY_LOOKUP, "overlay_lookup");
        assert_eq!(names::PUBLISH_ABANDONED, "publish_abandoned");
        assert_eq!(names::ALL.len(), 47);
    }
}
