//! Structured trace events: spans, instants and their field values.
//!
//! Every emission is a flat [`Event`] record; span structure is encoded by
//! the (`span`, `parent`) id pair so streams can be written to JSONL one
//! line at a time and the tree reconstructed later (see
//! [`crate::forensics`]). Timestamps are **sim-clock ticks** (see
//! [`crate::Recorder::set_time`]), never host time, so two runs with the
//! same seed produce identical streams.

use crate::json::JsonObj;

/// Identifier of a span. `SpanId::NONE` (0) means "no span" — used both
/// as the parent of root spans and as the return value of
/// [`crate::Recorder::span`] when tracing is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id (no parent / tracing disabled).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Compact distributed trace context carried inside wire frames
/// (query/fetch/publish) so spans opened on the receiving node can be
/// stitched under the sender's span after the fact.
///
/// `TraceCtx::NONE` (all zeroes) means "untraced": the codec always
/// encodes the two words, so frame layout — and therefore the byte
/// streams the bit-identity tests compare — is independent of whether
/// tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// Identity shared by every span of one distributed operation. 0 =
    /// untraced.
    pub trace_id: u64,
    /// Span id *in the sending node's stream* that the receiver's serve
    /// span should be stitched under. 0 = no parent.
    pub parent_span: u64,
}

impl TraceCtx {
    /// The untraced context (all zeroes on the wire).
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
    };

    /// A context rooted at `parent` within trace `trace_id`.
    pub fn new(trace_id: u64, parent: SpanId) -> Self {
        Self {
            trace_id,
            parent_span: parent.0,
        }
    }

    /// Whether this is the untraced context.
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// This context with the parent span replaced — what a relaying node
    /// does before forwarding a frame, so the next hop parents under the
    /// relay's own serve span.
    pub fn reparent(self, parent: SpanId) -> Self {
        Self {
            trace_id: self.trace_id,
            parent_span: parent.0,
        }
    }
}

/// Whether an event opens a span, closes one, or is instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Opens the span identified by [`Event::span`].
    Start,
    /// Closes the span identified by [`Event::span`]; fields carry the
    /// span's outcome (costs, counts).
    End,
    /// A point event attached to the span identified by [`Event::span`].
    Instant,
}

impl EventClass {
    /// Short stable name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Start => "start",
            EventClass::End => "end",
            EventClass::Instant => "event",
        }
    }
}

/// A field value. Deliberately tiny — telemetry carries counters, ids and
/// the occasional rendered string (zone bounds), not arbitrary payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter / id.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Pre-rendered text (peer names, zone bounds, reasons).
    Str(String),
}

impl Value {
    /// The value as `u64` if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Render for the human-readable route tree (`k=v`).
    pub fn render(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => format!("{v:.4}"),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Field list attached to an event. Keys are static names from the event
/// taxonomy (see DESIGN.md "Observability").
pub type Fields = Vec<(&'static str, Value)>;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number (per recorder).
    pub seq: u64,
    /// Sim-clock ticks at emission.
    pub t: u64,
    /// Start / End / Instant.
    pub class: EventClass,
    /// Event name from the taxonomy (`query`, `overlay_lookup`,
    /// `route_hop`, `drop`, …).
    pub name: &'static str,
    /// Span this record belongs to (its own id for Start/End).
    pub span: SpanId,
    /// Parent span (meaningful on Start and Instant records).
    pub parent: SpanId,
    /// Wavelet level the emitting recorder handle is scoped to, if any.
    pub level: Option<u8>,
    /// Event-specific fields.
    pub fields: Fields,
}

impl Event {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Field as `u64`, if present and unsigned.
    pub fn u64_field(&self, name: &str) -> Option<u64> {
        self.field(name).and_then(Value::as_u64)
    }

    /// Encode as one JSON line (the JSONL sink format).
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObj::new()
            .u("seq", self.seq)
            .u("t", self.t)
            .s("ev", self.class.name())
            .s("name", self.name)
            .u("span", self.span.0)
            .u("parent", self.parent.0);
        if let Some(l) = self.level {
            o = o.u("level", u64::from(l));
        }
        for (k, v) in &self.fields {
            o = match v {
                Value::U64(x) => o.u(k, *x),
                Value::I64(x) => o.i(k, *x),
                Value::F64(x) => o.g(k, *x),
                Value::Bool(x) => o.b(k, *x),
                Value::Str(x) => o.s(k, x),
            };
        }
        o.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_roundtrips_fields() {
        let ev = Event {
            seq: 3,
            t: 17,
            class: EventClass::Instant,
            name: "route_hop",
            span: SpanId(5),
            parent: SpanId(2),
            level: Some(1),
            fields: vec![
                ("from", 4u64.into()),
                ("to", 9u64.into()),
                ("ok", true.into()),
            ],
        };
        let line = ev.to_json_line();
        assert_eq!(
            line,
            r#"{"seq": 3, "t": 17, "ev": "event", "name": "route_hop", "span": 5, "parent": 2, "level": 1, "from": 4, "to": 9, "ok": true}"#
        );
    }

    #[test]
    fn field_lookup() {
        let ev = Event {
            seq: 0,
            t: 0,
            class: EventClass::Start,
            name: "query",
            span: SpanId(1),
            parent: SpanId::NONE,
            level: None,
            fields: vec![("eps", 0.25f64.into()), ("from", 7u64.into())],
        };
        assert_eq!(ev.u64_field("from"), Some(7));
        assert_eq!(ev.field("eps").and_then(Value::as_f64), Some(0.25));
        assert!(ev.field("missing").is_none());
    }
}
