//! Telemetry for Hyper-M: structured event tracing, a per-level metrics
//! registry, and query forensics.
//!
//! The paper's evaluation (Figs. 8–11) is about *where cost goes* — hops
//! per insertion, messages per query, recall per wavelet level. This
//! crate makes those attributions observable on a live network without
//! perturbing the simulation:
//!
//! * [`Recorder`] — a cheap-clone span/event handle threaded through the
//!   CAN overlay, the query layer and the repair engine. The default is
//!   disabled and provably free: the simulated [`hyperm_sim::OpStats`]
//!   are computed identically whether tracing is off, on, or the crate is
//!   unused (asserted by the `telemetry` integration tests). Events are
//!   stamped with the **sim clock** ([`Recorder::set_time`]), not host
//!   time, so equal seeds give equal streams.
//! * [`Metrics`] — named counters plus log2-histogram cells keyed by
//!   `(op kind, wavelet level)` covering hops, messages, bytes, retries,
//!   failed routes and end-to-end latency; [`Metrics::snapshot`] yields a
//!   serialisable [`MetricsSnapshot`].
//! * [`forensics`] — rebuilds a span tree from a flat event stream; the
//!   `trace_query` bin (in `hyperm-bench`) uses it to print a query's
//!   full per-level route tree and per-phase cost breakdown. With
//!   [`forensics::merge_streams`] it also stitches per-node JSONL streams
//!   from a live cluster into one cross-process tree, joined on the
//!   [`TraceCtx`] carried inside wire frames.
//! * [`window`] — fixed-size sliding-window time series (qps, latency
//!   quantiles, bytes, retries, per-level heat) cheap enough to stay on
//!   by default in every node runtime; [`slo`] evaluates declarative
//!   rules (`p99_ms < 50, failed_routes == 0`) over its snapshots.
//! * [`json`] — the tiny JSON writer (and, for scrape pipelines, a
//!   bounded-depth reader) shared with the bench bins (the workspace has
//!   no serde).
//!
//! Event taxonomy and span hierarchy are documented in DESIGN.md
//! ("Observability"); sink formats in EXPERIMENTS.md.
//!
//! No external dependencies: like the rest of the workspace this builds
//! offline (see `vendor/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod forensics;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod slo;
pub mod taxonomy;
pub mod window;

pub use event::{Event, EventClass, Fields, SpanId, TraceCtx, Value};
pub use forensics::{merge_streams, parse_jsonl, PhaseTotal, SpanNode, Trace};
pub use json::{JsonError, JsonObj, JsonValue};
pub use metrics::{CellSnapshot, HistSnapshot, Log2Hist, Metrics, MetricsSnapshot};
pub use recorder::{JsonlSink, Recorder, RingHandle, Sink, TeeSink};
pub use slo::{CmpOp, SloCheck, SloReport, SloRule};
pub use taxonomy::{counters, names};
pub use window::{Window, WindowConfig, WindowSnapshot};

// Re-exported so downstream crates can key metrics without an extra
// `hyperm-sim` import at the call site.
pub use hyperm_sim::OpKind;
