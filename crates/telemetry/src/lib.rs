//! Telemetry for Hyper-M: structured event tracing, a per-level metrics
//! registry, and query forensics.
//!
//! The paper's evaluation (Figs. 8–11) is about *where cost goes* — hops
//! per insertion, messages per query, recall per wavelet level. This
//! crate makes those attributions observable on a live network without
//! perturbing the simulation:
//!
//! * [`Recorder`] — a cheap-clone span/event handle threaded through the
//!   CAN overlay, the query layer and the repair engine. The default is
//!   disabled and provably free: the simulated [`hyperm_sim::OpStats`]
//!   are computed identically whether tracing is off, on, or the crate is
//!   unused (asserted by the `telemetry` integration tests). Events are
//!   stamped with the **sim clock** ([`Recorder::set_time`]), not host
//!   time, so equal seeds give equal streams.
//! * [`Metrics`] — named counters plus log2-histogram cells keyed by
//!   `(op kind, wavelet level)` covering hops, messages, bytes, retries,
//!   failed routes and end-to-end latency; [`Metrics::snapshot`] yields a
//!   serialisable [`MetricsSnapshot`].
//! * [`forensics`] — rebuilds a span tree from a flat event stream; the
//!   `trace_query` bin (in `hyperm-bench`) uses it to print a query's
//!   full per-level route tree and per-phase cost breakdown.
//! * [`json`] — the tiny JSON writer shared with the bench bins (the
//!   workspace has no serde).
//!
//! Event taxonomy and span hierarchy are documented in DESIGN.md
//! ("Observability"); sink formats in EXPERIMENTS.md.
//!
//! No external dependencies: like the rest of the workspace this builds
//! offline (see `vendor/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod forensics;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod taxonomy;

pub use event::{Event, EventClass, Fields, SpanId, Value};
pub use forensics::{PhaseTotal, SpanNode, Trace};
pub use json::JsonObj;
pub use metrics::{CellSnapshot, HistSnapshot, Log2Hist, Metrics, MetricsSnapshot};
pub use recorder::{JsonlSink, Recorder, RingHandle, Sink, TeeSink};
pub use taxonomy::{counters, names};

// Re-exported so downstream crates can key metrics without an extra
// `hyperm-sim` import at the call site.
pub use hyperm_sim::OpKind;
