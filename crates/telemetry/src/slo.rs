//! Declarative SLO rules over window snapshots.
//!
//! `hyperm-monitor --watch` scrapes every node's [`crate::WindowSnapshot`],
//! merges them into a cluster aggregate, and evaluates a comma-separated
//! rule list against it — making the monitor both a live dashboard and the
//! assertion engine CI smokes fail loudly on.
//!
//! Rule grammar (whitespace-insensitive):
//!
//! ```text
//! rules  := rule ("," rule)*
//! rule   := metric op value
//! op     := "<" | "<=" | ">" | ">=" | "==" | "!="
//! metric := qps | p50_us | p99_us | p50_ms | p99_ms | ops | rejected
//!         | retries | failed_routes | hops | messages | bytes | heat_max
//! value  := decimal literal
//! ```
//!
//! Example: `p99_ms < 50, failed_routes == 0, qps > 1`.

use crate::json::JsonObj;
use crate::window::WindowSnapshot;

/// Metric names a rule may reference (matching [`metric_of`]).
pub const METRICS: &[&str] = &[
    "qps",
    "p50_us",
    "p99_us",
    "p50_ms",
    "p99_ms",
    "ops",
    "rejected",
    "retries",
    "failed_routes",
    "hops",
    "messages",
    "bytes",
    "heat_max",
];

/// Read `metric` off a snapshot (`None` for unknown names).
pub fn metric_of(snap: &WindowSnapshot, metric: &str) -> Option<f64> {
    Some(match metric {
        "qps" => snap.qps(),
        "p50_us" => snap.p50_us() as f64,
        "p99_us" => snap.p99_us() as f64,
        "p50_ms" => snap.p50_us() as f64 / 1000.0,
        "p99_ms" => snap.p99_us() as f64 / 1000.0,
        "ops" => snap.ops as f64,
        "rejected" => snap.rejected as f64,
        "retries" => snap.retries as f64,
        "failed_routes" => snap.failed_routes as f64,
        "hops" => snap.hops as f64,
        "messages" => snap.messages as f64,
        "bytes" => snap.bytes as f64,
        "heat_max" => snap.heat_max() as f64,
        _ => return None,
    })
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    fn holds(self, actual: f64, bound: f64) -> bool {
        match self {
            CmpOp::Lt => actual < bound,
            CmpOp::Le => actual <= bound,
            CmpOp::Gt => actual > bound,
            CmpOp::Ge => actual >= bound,
            CmpOp::Eq => actual == bound,
            CmpOp::Ne => actual != bound,
        }
    }
}

/// One parsed rule: `metric op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Metric name (one of [`METRICS`]).
    pub metric: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Bound the metric is compared against.
    pub value: f64,
}

impl SloRule {
    /// Parse one rule. Unknown metrics and malformed syntax are errors —
    /// a typo'd rule must not silently always pass.
    pub fn parse(src: &str) -> Result<SloRule, String> {
        let s = src.trim();
        // Two-character operators first so "<=" does not parse as "<".
        let ops: [(&str, CmpOp); 6] = [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ];
        let (at, (sym, op)) = ops
            .iter()
            .filter_map(|&(sym, op)| s.find(sym).map(|at| (at, (sym, op))))
            .min_by_key(|&(at, (sym, _))| (at, std::cmp::Reverse(sym.len())))
            .ok_or_else(|| format!("rule {s:?}: no comparison operator"))?;
        let metric = s[..at].trim();
        let value_src = s[at + sym.len()..].trim();
        if !METRICS.contains(&metric) {
            return Err(format!(
                "rule {s:?}: unknown metric {metric:?} (expected one of {METRICS:?})"
            ));
        }
        let value: f64 = value_src
            .parse()
            .map_err(|_| format!("rule {s:?}: bad value {value_src:?}"))?;
        if !value.is_finite() {
            return Err(format!("rule {s:?}: non-finite value"));
        }
        Ok(SloRule {
            metric: metric.to_string(),
            op,
            value,
        })
    }

    /// Parse a comma-separated rule list (empty input = no rules).
    pub fn parse_list(src: &str) -> Result<Vec<SloRule>, String> {
        src.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(SloRule::parse)
            .collect()
    }

    /// Render the rule as it would be written.
    pub fn render(&self) -> String {
        format!("{} {} {}", self.metric, self.op.symbol(), self.value)
    }
}

/// One evaluated rule: the bound, the observed value, and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheck {
    /// The rule evaluated.
    pub rule: SloRule,
    /// Observed metric value.
    pub actual: f64,
    /// Whether the rule held.
    pub ok: bool,
}

/// Verdict over a whole rule list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloReport {
    /// Per-rule outcomes, in rule order.
    pub checks: Vec<SloCheck>,
}

impl SloReport {
    /// Evaluate `rules` against a (typically cluster-aggregate) snapshot.
    pub fn evaluate(rules: &[SloRule], snap: &WindowSnapshot) -> SloReport {
        let checks = rules
            .iter()
            .map(|rule| {
                let actual =
                    metric_of(snap, &rule.metric).expect("parse validated the metric name");
                SloCheck {
                    rule: rule.clone(),
                    actual,
                    ok: rule.op.holds(actual, rule.value),
                }
            })
            .collect();
        SloReport { checks }
    }

    /// Whether every rule held.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The rules that failed.
    pub fn breaches(&self) -> Vec<&SloCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }

    /// Structured JSON report: overall verdict plus one row per rule.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                JsonObj::new()
                    .s("rule", &c.rule.render())
                    .s("metric", &c.rule.metric)
                    .g("bound", c.rule.value)
                    .f("actual", c.actual, 3)
                    .b("ok", c.ok)
                    .render()
            })
            .collect();
        JsonObj::new()
            .b("ok", self.ok())
            .u("breaches", self.breaches().len() as u64)
            .arr("checks", &rows)
            .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(ops: u64, rejected: u64) -> WindowSnapshot {
        WindowSnapshot {
            ops,
            rejected,
            series: vec![(0, ops)],
            latency_count: 1,
            latency_sum_us: 100,
            latency_buckets: vec![(64, 127, 1)],
            ..Default::default()
        }
    }

    #[test]
    fn rules_parse_and_render() {
        let r = SloRule::parse(" p99_ms<=50 ").unwrap();
        assert_eq!(r.metric, "p99_ms");
        assert_eq!(r.op, CmpOp::Le);
        assert_eq!(r.value, 50.0);
        assert_eq!(r.render(), "p99_ms <= 50");
        let list = SloRule::parse_list("qps > 0.5, failed_routes == 0, rejected != 1").unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[1].op, CmpOp::Eq);
        assert_eq!(list[2].op, CmpOp::Ne);
        assert!(SloRule::parse_list("").unwrap().is_empty());
        assert!(SloRule::parse_list(" , ").unwrap().is_empty());
    }

    #[test]
    fn bad_rules_are_errors() {
        assert!(SloRule::parse("p99_ms").is_err());
        assert!(SloRule::parse("bogus_metric < 1").is_err());
        assert!(SloRule::parse("qps < banana").is_err());
        assert!(SloRule::parse("qps < inf").is_err());
        assert!(SloRule::parse_list("qps > 1, nope < 2").is_err());
    }

    #[test]
    fn evaluation_flags_breaches() {
        let rules = SloRule::parse_list("rejected == 0, ops >= 5, p99_us < 1000").unwrap();
        let good = SloReport::evaluate(&rules, &snap(10, 0));
        assert!(good.ok());
        assert!(good.breaches().is_empty());
        let bad = SloReport::evaluate(&rules, &snap(3, 2));
        assert!(!bad.ok());
        let breached: Vec<&str> = bad
            .breaches()
            .iter()
            .map(|c| c.rule.metric.as_str())
            .collect();
        assert_eq!(breached, vec!["rejected", "ops"]);
        let json = bad.to_json();
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"breaches\": 2"));
        assert!(json.contains("\"rule\": \"rejected == 0\""));
    }

    #[test]
    fn every_listed_metric_is_readable() {
        let s = snap(1, 0);
        for m in METRICS {
            assert!(metric_of(&s, m).is_some(), "metric {m} unreadable");
        }
        assert!(metric_of(&s, "nope").is_none());
    }
}
