//! Query forensics: reconstruct the span tree from a flat event stream
//! and render it for humans.
//!
//! Used by the `trace_query` bin: capture a query's events in a ring
//! buffer, [`Trace::from_events`] them back into a tree, then
//! [`Trace::render`] the per-level route tree and
//! [`Trace::phase_totals`] the per-phase cost breakdown.

use crate::event::{Event, EventClass, SpanId, Value};
use std::collections::BTreeMap;

/// A reconstructed span: its start record, optional end record, child
/// spans and attached instant events, in emission order.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span id.
    pub id: SpanId,
    /// Span name (from the start record).
    pub name: &'static str,
    /// Level tag of the emitting handle, if any.
    pub level: Option<u8>,
    /// The opening record (carries the input fields).
    pub start: Event,
    /// The closing record (carries the outcome fields), if seen.
    pub end: Option<Event>,
    /// Indices into [`Trace::spans`] of child spans.
    pub children: Vec<usize>,
    /// Instant events attached to this span.
    pub events: Vec<Event>,
}

/// A reconstructed trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, in start order.
    pub spans: Vec<SpanNode>,
    /// Indices of root spans (parent [`SpanId::NONE`] or unseen).
    pub roots: Vec<usize>,
    /// Instant events whose parent span was never started (e.g. scope
    /// left unset), in emission order.
    pub orphans: Vec<Event>,
}

/// One row of the per-phase breakdown: how many spans/events of a given
/// name were seen and the numeric fields they carried, summed.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotal {
    /// Span or event name.
    pub name: &'static str,
    /// Number of spans (counted at end) or instant events.
    pub count: u64,
    /// Sum per numeric field name, over end-record fields (spans) or
    /// event fields (instants).
    pub fields: BTreeMap<&'static str, f64>,
}

impl Trace {
    /// Rebuild the tree from a flat stream (as drained from a ring
    /// buffer or parsed off JSONL).
    pub fn from_events(events: &[Event]) -> Trace {
        let mut trace = Trace::default();
        let mut index: BTreeMap<SpanId, usize> = BTreeMap::new();
        for ev in events {
            match ev.class {
                EventClass::Start => {
                    let idx = trace.spans.len();
                    trace.spans.push(SpanNode {
                        id: ev.span,
                        name: ev.name,
                        level: ev.level,
                        start: ev.clone(),
                        end: None,
                        children: Vec::new(),
                        events: Vec::new(),
                    });
                    index.insert(ev.span, idx);
                    match index.get(&ev.parent) {
                        Some(&p) if !ev.parent.is_none() => trace.spans[p].children.push(idx),
                        _ => trace.roots.push(idx),
                    }
                }
                EventClass::End => {
                    if let Some(&idx) = index.get(&ev.span) {
                        trace.spans[idx].end = Some(ev.clone());
                    } else {
                        trace.orphans.push(ev.clone());
                    }
                }
                EventClass::Instant => match index.get(&ev.span) {
                    Some(&idx) => trace.spans[idx].events.push(ev.clone()),
                    None => trace.orphans.push(ev.clone()),
                },
            }
        }
        trace
    }

    /// Aggregate spans and events by name: the per-phase cost breakdown.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut totals: BTreeMap<&'static str, PhaseTotal> = BTreeMap::new();
        let mut fold = |name: &'static str, fields: &[(&'static str, Value)]| {
            let row = totals.entry(name).or_insert_with(|| PhaseTotal {
                name,
                count: 0,
                fields: BTreeMap::new(),
            });
            row.count += 1;
            for (k, v) in fields {
                if let Some(x) = v.as_f64() {
                    *row.fields.entry(k).or_insert(0.0) += x;
                }
            }
        };
        for s in &self.spans {
            match &s.end {
                Some(end) => fold(s.name, &end.fields),
                None => fold(s.name, &s.start.fields),
            }
            for ev in &s.events {
                fold(ev.name, &ev.fields);
            }
        }
        for ev in &self.orphans {
            fold(ev.name, &ev.fields);
        }
        totals.into_values().collect()
    }

    /// Render the tree as indented text: one line per span (inputs, then
    /// `=> outcome` fields) and per instant event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.render_span(r, 0, &mut out);
        }
        if !self.orphans.is_empty() {
            out.push_str("(unparented)\n");
            for ev in &self.orphans {
                out.push_str(&format!("  {}\n", render_line(ev)));
            }
        }
        out
    }

    fn render_span(&self, idx: usize, depth: usize, out: &mut String) {
        let s = &self.spans[idx];
        let pad = "  ".repeat(depth);
        let mut line = format!("{pad}{}", s.name);
        if let Some(l) = s.level {
            line.push_str(&format!(" level={l}"));
        }
        for (k, v) in &s.start.fields {
            line.push_str(&format!(" {k}={}", v.render()));
        }
        if let Some(end) = &s.end {
            if !end.fields.is_empty() {
                line.push_str(" =>");
                for (k, v) in &end.fields {
                    line.push_str(&format!(" {k}={}", v.render()));
                }
            }
        }
        out.push_str(&line);
        out.push('\n');
        // Interleave events and child spans in emission order (seq).
        let mut items: Vec<(u64, Result<usize, &Event>)> = Vec::new();
        for &c in &s.children {
            items.push((self.spans[c].start.seq, Ok(c)));
        }
        for ev in &s.events {
            items.push((ev.seq, Err(ev)));
        }
        items.sort_by_key(|(seq, _)| *seq);
        for (_, item) in items {
            match item {
                Ok(c) => self.render_span(c, depth + 1, out),
                Err(ev) => {
                    out.push_str(&format!("{}{}\n", "  ".repeat(depth + 1), render_line(ev)));
                }
            }
        }
    }

    /// All spans named `name`, in start order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanNode> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Count of instant events named `name` anywhere in the trace.
    pub fn event_count(&self, name: &str) -> usize {
        self.spans
            .iter()
            .flat_map(|s| s.events.iter())
            .chain(self.orphans.iter())
            .filter(|e| e.name == name)
            .count()
    }
}

fn render_line(ev: &Event) -> String {
    let mut line = ev.name.to_string();
    if let Some(l) = ev.level {
        line.push_str(&format!(" level={l}"));
    }
    for (k, v) in &ev.fields {
        line.push_str(&format!(" {k}={}", v.render()));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn tree_reconstruction_and_breakdown() {
        let (rec, ring) = Recorder::ring(64);
        let q = rec.span(SpanId::NONE, "query", vec![("eps", 0.2f64.into())]);
        let l0 = rec.scoped(0);
        let look = l0.span(q, "overlay_lookup", vec![]);
        l0.event(
            look,
            "route_hop",
            vec![("from", 0u64.into()), ("to", 2u64.into())],
        );
        l0.event(
            look,
            "route_hop",
            vec![("from", 2u64.into()), ("to", 5u64.into())],
        );
        l0.end(look, "overlay_lookup", vec![("hops", 2u64.into())]);
        rec.event(
            q,
            "fetch",
            vec![("peer", 5u64.into()), ("bytes", 128u64.into())],
        );
        rec.end(q, "query", vec![("hops", 4u64.into())]);
        let trace = Trace::from_events(&ring.events());

        assert_eq!(trace.roots.len(), 1);
        let root = &trace.spans[trace.roots[0]];
        assert_eq!(root.name, "query");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.events.len(), 1);
        let child = &trace.spans[root.children[0]];
        assert_eq!(child.name, "overlay_lookup");
        assert_eq!(child.level, Some(0));
        assert_eq!(child.events.len(), 2);
        assert!(child.end.is_some());
        assert!(trace.orphans.is_empty());

        let totals = trace.phase_totals();
        let hops_row = totals.iter().find(|t| t.name == "route_hop").unwrap();
        assert_eq!(hops_row.count, 2);
        let lookup_row = totals.iter().find(|t| t.name == "overlay_lookup").unwrap();
        assert_eq!(lookup_row.fields.get("hops"), Some(&2.0));
        assert_eq!(trace.event_count("route_hop"), 2);
        assert_eq!(trace.spans_named("overlay_lookup").len(), 1);

        let text = trace.render();
        assert!(text.starts_with("query eps=0.2"));
        assert!(text.contains("\n  overlay_lookup level=0 => hops=2\n"));
        assert!(text.contains("\n    route_hop level=0 from=0 to=2\n"));
        assert!(text.contains("\n  fetch peer=5 bytes=128\n"));
    }

    #[test]
    fn orphans_are_kept() {
        let (rec, ring) = Recorder::ring(8);
        rec.event(SpanId(99), "drop", vec![]);
        let trace = Trace::from_events(&ring.events());
        assert_eq!(trace.orphans.len(), 1);
        assert_eq!(trace.event_count("drop"), 1);
        assert!(trace.render().contains("(unparented)"));
    }
}
