//! Query forensics: reconstruct the span tree from a flat event stream
//! and render it for humans.
//!
//! Used by the `trace_query` bin: capture a query's events in a ring
//! buffer, [`Trace::from_events`] them back into a tree, then
//! [`Trace::render`] the per-level route tree and
//! [`Trace::phase_totals`] the per-phase cost breakdown.
//!
//! The cluster observability plane (PR 8) added the cross-process side:
//! [`parse_jsonl`] reads a node's JSONL sink back into events, and
//! [`merge_streams`] stitches several nodes' streams into ONE route tree.
//! Stitching keys off the wire-level trace context: a serve span whose
//! start record carries `ctx_span > 0` is re-parented under span
//! `ctx_span` of the stream belonging to the peer named by its `from`
//! field. Span ids are remapped to a fresh namespace (per-node allocators
//! all start at 1), and every span gains a `node` field naming its origin.

use crate::event::{Event, EventClass, SpanId, Value};
use crate::json::JsonValue;
use crate::taxonomy;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A reconstructed span: its start record, optional end record, child
/// spans and attached instant events, in emission order.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span id.
    pub id: SpanId,
    /// Span name (from the start record).
    pub name: &'static str,
    /// Level tag of the emitting handle, if any.
    pub level: Option<u8>,
    /// The opening record (carries the input fields).
    pub start: Event,
    /// The closing record (carries the outcome fields), if seen.
    pub end: Option<Event>,
    /// Indices into [`Trace::spans`] of child spans.
    pub children: Vec<usize>,
    /// Instant events attached to this span.
    pub events: Vec<Event>,
}

/// A reconstructed trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, in start order.
    pub spans: Vec<SpanNode>,
    /// Indices of root spans (parent [`SpanId::NONE`] or unseen).
    pub roots: Vec<usize>,
    /// Instant events whose parent span was never started (e.g. scope
    /// left unset), in emission order.
    pub orphans: Vec<Event>,
}

/// One row of the per-phase breakdown: how many spans/events of a given
/// name were seen and the numeric fields they carried, summed.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotal {
    /// Span or event name.
    pub name: &'static str,
    /// Number of spans (counted at end) or instant events.
    pub count: u64,
    /// Sum per numeric field name, over end-record fields (spans) or
    /// event fields (instants).
    pub fields: BTreeMap<&'static str, f64>,
}

impl Trace {
    /// Rebuild the tree from a flat stream (as drained from a ring
    /// buffer or parsed off JSONL).
    pub fn from_events(events: &[Event]) -> Trace {
        let mut trace = Trace::default();
        let mut index: BTreeMap<SpanId, usize> = BTreeMap::new();
        for ev in events {
            match ev.class {
                EventClass::Start => {
                    let idx = trace.spans.len();
                    trace.spans.push(SpanNode {
                        id: ev.span,
                        name: ev.name,
                        level: ev.level,
                        start: ev.clone(),
                        end: None,
                        children: Vec::new(),
                        events: Vec::new(),
                    });
                    index.insert(ev.span, idx);
                    match index.get(&ev.parent) {
                        Some(&p) if !ev.parent.is_none() => trace.spans[p].children.push(idx),
                        _ => trace.roots.push(idx),
                    }
                }
                EventClass::End => {
                    if let Some(&idx) = index.get(&ev.span) {
                        trace.spans[idx].end = Some(ev.clone());
                    } else {
                        trace.orphans.push(ev.clone());
                    }
                }
                EventClass::Instant => match index.get(&ev.span) {
                    Some(&idx) => trace.spans[idx].events.push(ev.clone()),
                    None => trace.orphans.push(ev.clone()),
                },
            }
        }
        trace
    }

    /// Aggregate spans and events by name: the per-phase cost breakdown.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut totals: BTreeMap<&'static str, PhaseTotal> = BTreeMap::new();
        let mut fold = |name: &'static str, fields: &[(&'static str, Value)]| {
            let row = totals.entry(name).or_insert_with(|| PhaseTotal {
                name,
                count: 0,
                fields: BTreeMap::new(),
            });
            row.count += 1;
            for (k, v) in fields {
                if let Some(x) = v.as_f64() {
                    *row.fields.entry(k).or_insert(0.0) += x;
                }
            }
        };
        for s in &self.spans {
            match &s.end {
                Some(end) => fold(s.name, &end.fields),
                None => fold(s.name, &s.start.fields),
            }
            for ev in &s.events {
                fold(ev.name, &ev.fields);
            }
        }
        for ev in &self.orphans {
            fold(ev.name, &ev.fields);
        }
        totals.into_values().collect()
    }

    /// Render the tree as indented text: one line per span (inputs, then
    /// `=> outcome` fields) and per instant event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.render_span(r, 0, &mut out);
        }
        if !self.orphans.is_empty() {
            out.push_str("(unparented)\n");
            for ev in &self.orphans {
                out.push_str(&format!("  {}\n", render_line(ev)));
            }
        }
        out
    }

    fn render_span(&self, idx: usize, depth: usize, out: &mut String) {
        let s = &self.spans[idx];
        let pad = "  ".repeat(depth);
        let mut line = format!("{pad}{}", s.name);
        if let Some(l) = s.level {
            line.push_str(&format!(" level={l}"));
        }
        for (k, v) in &s.start.fields {
            line.push_str(&format!(" {k}={}", v.render()));
        }
        if let Some(end) = &s.end {
            if !end.fields.is_empty() {
                line.push_str(" =>");
                for (k, v) in &end.fields {
                    line.push_str(&format!(" {k}={}", v.render()));
                }
            }
        }
        out.push_str(&line);
        out.push('\n');
        // Interleave events and child spans in emission order (seq).
        let mut items: Vec<(u64, Result<usize, &Event>)> = Vec::new();
        for &c in &s.children {
            items.push((self.spans[c].start.seq, Ok(c)));
        }
        for ev in &s.events {
            items.push((ev.seq, Err(ev)));
        }
        items.sort_by_key(|(seq, _)| *seq);
        for (_, item) in items {
            match item {
                Ok(c) => self.render_span(c, depth + 1, out),
                Err(ev) => {
                    out.push_str(&format!("{}{}\n", "  ".repeat(depth + 1), render_line(ev)));
                }
            }
        }
    }

    /// All spans named `name`, in start order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanNode> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Count of instant events named `name` anywhere in the trace.
    pub fn event_count(&self, name: &str) -> usize {
        self.spans
            .iter()
            .flat_map(|s| s.events.iter())
            .chain(self.orphans.iter())
            .filter(|e| e.name == name)
            .count()
    }
}

/// Intern a string so it can live in [`Event::name`] / field keys
/// (`&'static str`). Canonical taxonomy names resolve without leaking;
/// anything else leaks once per distinct string, bounded by the
/// vocabulary of the parsed streams.
fn intern(s: &str) -> &'static str {
    for &n in taxonomy::names::ALL {
        if n == s {
            return n;
        }
    }
    for &n in taxonomy::counters::ALL {
        if n == s {
            return n;
        }
    }
    static CACHE: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut cache = match CACHE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(&hit) = cache.iter().find(|&&c| c == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    cache.push(leaked);
    leaked
}

/// Decode one JSONL line (as written by [`Event::to_json_line`]) back
/// into an [`Event`]. `None` when required keys are missing/ill-typed.
fn event_from_json(v: &JsonValue) -> Option<Event> {
    let fields_in = v.as_obj()?;
    let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
    let class = match v.get("ev")?.as_str()? {
        "start" => EventClass::Start,
        "end" => EventClass::End,
        "event" => EventClass::Instant,
        _ => return None,
    };
    let level = match v.get("level") {
        Some(l) => Some(u8::try_from(l.as_u64()?).ok()?),
        None => None,
    };
    let mut ev = Event {
        seq: u("seq")?,
        t: u("t")?,
        class,
        name: intern(v.get("name")?.as_str()?),
        span: SpanId(u("span")?),
        parent: SpanId(u("parent")?),
        level,
        fields: Vec::new(),
    };
    for (k, val) in fields_in {
        if matches!(
            k.as_str(),
            "seq" | "t" | "ev" | "name" | "span" | "parent" | "level"
        ) {
            continue;
        }
        let value = match val {
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Str(s) => Value::Str(s.clone()),
            JsonValue::Num(n) => match val.as_u64() {
                Some(x) => Value::U64(x),
                None if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                    Value::I64(*n as i64)
                }
                None => Value::F64(*n),
            },
            // Events never carry nested containers; tolerate and skip.
            _ => continue,
        };
        ev.fields.push((intern(k), value));
    }
    Some(ev)
}

/// Parse a JSONL sink's contents back into events. Blank lines are
/// skipped; a malformed line is an error naming its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(event_from_json(&v).ok_or_else(|| format!("line {}: not an event", i + 1))?);
    }
    Ok(out)
}

/// Merge per-node event streams — `(node id, events)` pairs, where the
/// node id is the peer's **transport id** (what `from`/`ctx` fields on
/// the wire refer to) — into one cross-process [`Trace`].
///
/// Unlike [`Trace::from_events`], linking is order-independent: a child
/// span is attached to its parent even when the parent's start appears
/// later in the merged order (per-node clocks are not synchronised).
pub fn merge_streams(streams: &[(u64, Vec<Event>)]) -> Trace {
    // Pass 1: give every span a fresh id unique across nodes.
    let mut id_map: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut next = 1u64;
    for (node, events) in streams {
        for ev in events {
            if ev.class == EventClass::Start && id_map.insert((*node, ev.span.0), next).is_none() {
                next += 1;
            }
        }
    }
    // Pass 2: rewrite events — remapped ids, a global seq preserving
    // per-stream order, cross-process re-parenting, and a `node` tag.
    let mut merged = Vec::new();
    let mut seq = 0u64;
    for (node, events) in streams {
        for ev in events {
            let mut out = ev.clone();
            out.seq = seq;
            seq += 1;
            out.span = SpanId(id_map.get(&(*node, ev.span.0)).copied().unwrap_or(0));
            out.parent = SpanId(id_map.get(&(*node, ev.parent.0)).copied().unwrap_or(0));
            if ev.class == EventClass::Start {
                // Wire trace context: re-parent under the sender's span.
                if out.parent.is_none() {
                    if let (Some(ctx_span), Some(sender)) =
                        (ev.u64_field("ctx_span"), ev.u64_field("from"))
                    {
                        if let Some(&p) = id_map.get(&(sender, ctx_span)) {
                            out.parent = SpanId(p);
                        }
                    }
                }
                if ev.field("node").is_none() {
                    out.fields.push(("node", Value::U64(*node)));
                }
            }
            merged.push(out);
        }
    }
    link_events(&merged)
}

/// Order-independent tree build: create every span first, then attach
/// ends/instants and link children (sorted by start seq).
fn link_events(events: &[Event]) -> Trace {
    let mut trace = Trace::default();
    let mut index: BTreeMap<SpanId, usize> = BTreeMap::new();
    for ev in events {
        if ev.class == EventClass::Start {
            let idx = trace.spans.len();
            trace.spans.push(SpanNode {
                id: ev.span,
                name: ev.name,
                level: ev.level,
                start: ev.clone(),
                end: None,
                children: Vec::new(),
                events: Vec::new(),
            });
            index.insert(ev.span, idx);
        }
    }
    for ev in events {
        match ev.class {
            EventClass::Start => {}
            EventClass::End => match index.get(&ev.span) {
                Some(&idx) => {
                    // First end wins (a well-formed stream has one).
                    if trace.spans[idx].end.is_none() {
                        trace.spans[idx].end = Some(ev.clone());
                    }
                }
                None => trace.orphans.push(ev.clone()),
            },
            EventClass::Instant => match index.get(&ev.span) {
                Some(&idx) => trace.spans[idx].events.push(ev.clone()),
                None => trace.orphans.push(ev.clone()),
            },
        }
    }
    for idx in 0..trace.spans.len() {
        let parent = trace.spans[idx].start.parent;
        match index.get(&parent) {
            Some(&p) if !parent.is_none() && p != idx => trace.spans[p].children.push(idx),
            _ => trace.roots.push(idx),
        }
    }
    // Span indices ascend in start order, so sorted children render in
    // merged-stream order.
    for s in &mut trace.spans {
        s.children.sort_unstable();
    }
    trace
}

fn render_line(ev: &Event) -> String {
    let mut line = ev.name.to_string();
    if let Some(l) = ev.level {
        line.push_str(&format!(" level={l}"));
    }
    for (k, v) in &ev.fields {
        line.push_str(&format!(" {k}={}", v.render()));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn tree_reconstruction_and_breakdown() {
        let (rec, ring) = Recorder::ring(64);
        let q = rec.span(SpanId::NONE, "query", vec![("eps", 0.2f64.into())]);
        let l0 = rec.scoped(0);
        let look = l0.span(q, "overlay_lookup", vec![]);
        l0.event(
            look,
            "route_hop",
            vec![("from", 0u64.into()), ("to", 2u64.into())],
        );
        l0.event(
            look,
            "route_hop",
            vec![("from", 2u64.into()), ("to", 5u64.into())],
        );
        l0.end(look, "overlay_lookup", vec![("hops", 2u64.into())]);
        rec.event(
            q,
            "fetch",
            vec![("peer", 5u64.into()), ("bytes", 128u64.into())],
        );
        rec.end(q, "query", vec![("hops", 4u64.into())]);
        let trace = Trace::from_events(&ring.events());

        assert_eq!(trace.roots.len(), 1);
        let root = &trace.spans[trace.roots[0]];
        assert_eq!(root.name, "query");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.events.len(), 1);
        let child = &trace.spans[root.children[0]];
        assert_eq!(child.name, "overlay_lookup");
        assert_eq!(child.level, Some(0));
        assert_eq!(child.events.len(), 2);
        assert!(child.end.is_some());
        assert!(trace.orphans.is_empty());

        let totals = trace.phase_totals();
        let hops_row = totals.iter().find(|t| t.name == "route_hop").unwrap();
        assert_eq!(hops_row.count, 2);
        let lookup_row = totals.iter().find(|t| t.name == "overlay_lookup").unwrap();
        assert_eq!(lookup_row.fields.get("hops"), Some(&2.0));
        assert_eq!(trace.event_count("route_hop"), 2);
        assert_eq!(trace.spans_named("overlay_lookup").len(), 1);

        let text = trace.render();
        assert!(text.starts_with("query eps=0.2"));
        assert!(text.contains("\n  overlay_lookup level=0 => hops=2\n"));
        assert!(text.contains("\n    route_hop level=0 from=0 to=2\n"));
        assert!(text.contains("\n  fetch peer=5 bytes=128\n"));
    }

    #[test]
    fn orphans_are_kept() {
        let (rec, ring) = Recorder::ring(8);
        rec.event(SpanId(99), "drop", vec![]);
        let trace = Trace::from_events(&ring.events());
        assert_eq!(trace.orphans.len(), 1);
        assert_eq!(trace.event_count("drop"), 1);
        assert!(trace.render().contains("(unparented)"));
    }

    #[test]
    fn jsonl_roundtrips_through_parser() {
        let (rec, ring) = Recorder::ring(16);
        rec.set_time(5);
        let q = rec.span(SpanId::NONE, "query", vec![("eps", 0.25f64.into())]);
        let l1 = rec.scoped(1);
        l1.event(
            q,
            "route_hop",
            vec![
                ("from", 2u64.into()),
                ("ok", true.into()),
                ("why", "detour".into()),
                ("bias", (-3i64).into()),
            ],
        );
        rec.end(q, "query", vec![("hops", 1u64.into())]);
        let events = ring.events();
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json_line()))
            .collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
        // Interning is stable: parsing twice yields pointer-equal names.
        let again = parse_jsonl(&text).unwrap();
        assert!(std::ptr::eq(parsed[0].name, again[0].name));
        assert!(parse_jsonl("{\"seq\": 1}\n").is_err());
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn merge_stitches_streams_via_trace_ctx() {
        // Member node 20: a serve span that forwarded a query.
        let (mrec, mring) = Recorder::ring(16);
        let mserve = mrec.span(
            SpanId::NONE,
            "serve",
            vec![("from", 99u64.into()), ("kind", "query".into())],
        );
        mrec.event(mserve, "forward", vec![("kind", "query".into())]);
        mrec.end(mserve, "serve", vec![]);

        // Head node 10: its serve span carries the member's trace context
        // (ctx_span = member serve span id, from = member's peer id), and
        // the query span nests under the serve span in the same stream.
        let (hrec, hring) = Recorder::ring(16);
        let hserve = hrec.span(
            SpanId::NONE,
            "serve",
            vec![
                ("from", 20u64.into()),
                ("kind", "query".into()),
                ("ctx_trace", 42u64.into()),
                ("ctx_span", mserve.0.into()),
            ],
        );
        let q = hrec.span(hserve, "query", vec![("eps", 0.2f64.into())]);
        hrec.end(q, "query", vec![("hops", 3u64.into())]);
        hrec.end(hserve, "serve", vec![]);

        // Head stream listed FIRST: linking must not depend on order.
        let trace = merge_streams(&[(10, hring.events()), (20, mring.events())]);
        assert_eq!(
            trace.roots.len(),
            1,
            "one stitched tree:\n{}",
            trace.render()
        );
        let root = &trace.spans[trace.roots[0]];
        assert_eq!(root.name, "serve");
        assert_eq!(root.start.u64_field("node"), Some(20));
        assert_eq!(root.children.len(), 1);
        let head_serve = &trace.spans[root.children[0]];
        assert_eq!(head_serve.name, "serve");
        assert_eq!(head_serve.start.u64_field("node"), Some(10));
        assert_eq!(head_serve.start.u64_field("ctx_trace"), Some(42));
        assert_eq!(head_serve.children.len(), 1);
        let query = &trace.spans[head_serve.children[0]];
        assert_eq!(query.name, "query");
        assert!(query.end.is_some());
        assert!(trace.orphans.is_empty());
        // Remapped ids are unique.
        let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), trace.spans.len());
    }

    #[test]
    fn merge_without_ctx_keeps_streams_as_separate_roots() {
        let mk = |name: &'static str| {
            let (rec, ring) = Recorder::ring(8);
            let s = rec.span(SpanId::NONE, name, vec![]);
            rec.end(s, name, vec![]);
            ring.events()
        };
        let trace = merge_streams(&[(1, mk("query")), (2, mk("publish"))]);
        assert_eq!(trace.roots.len(), 2);
        assert_eq!(trace.spans.len(), 2);
    }
}
