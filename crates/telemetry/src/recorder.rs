//! The [`Recorder`] handle and its sinks.
//!
//! A `Recorder` is a cheap-clone handle threaded through the overlay,
//! query, and repair code. The default (`Recorder::disabled`) carries no
//! allocation and every method is a branch on `None` — provably free for
//! the simulation: telemetry only *observes* host-side, it never touches
//! the simulated [`OpStats`] accounting (asserted by the integration
//! tests).
//!
//! Sinks receive the flat [`Event`] records:
//! * [`RingHandle`] — bounded in-memory buffer, drained by the forensics
//!   tooling;
//! * [`JsonlSink`] — one JSON object per line, appended to a file;
//! * the no-op default — no sink at all.
//!
//! Handles can be *scoped* to a wavelet level ([`Recorder::scoped`]):
//! scoped clones share the sink, metrics, clock and id allocator but tag
//! every event with their level and carry their own *scope* slot — the
//! span that overlay-internal events attach to. The per-level CAN
//! overlays each own a scoped handle; the query layer points each level's
//! scope at the current `overlay_lookup` span before calling into the
//! overlay. Scope slots are per level, so the level-parallel query path
//! stays race-free; tracing *concurrent queries on one network* (the
//! batch engine with several workers) is not supported — trace one query
//! at a time.

use crate::event::{Event, EventClass, Fields, SpanId};
use crate::metrics::Metrics;
use hyperm_sim::{OpKind, OpStats};
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Receiver of trace events. Implementations must be `Send`: the
/// recorder is shared across per-level query threads behind a mutex.
pub trait Sink: Send {
    /// Consume one event.
    fn record(&mut self, ev: &Event);
    /// Flush buffered output (file sinks).
    fn flush(&mut self) {}
}

struct RingBuf {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

/// Shared handle onto a ring-buffer sink: clone it, hand one clone to
/// [`Recorder::with_sink`] via [`RingHandle::sink`], keep the other to
/// read the captured events back.
#[derive(Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<RingBuf>>,
}

impl RingHandle {
    /// New ring buffer keeping the most recent `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Arc::new(Mutex::new(RingBuf {
                cap: cap.max(1),
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    /// A [`Sink`] feeding this buffer.
    pub fn sink(&self) -> Box<dyn Sink> {
        Box::new(RingSink {
            buf: self.buf.clone(),
        })
    }

    /// Copy out the buffered events (oldest first).
    pub fn events(&self) -> Vec<Event> {
        let buf = self.buf.lock().expect("ring poisoned");
        buf.events.iter().cloned().collect()
    }

    /// Drain the buffer, returning the events (oldest first).
    pub fn drain(&self) -> Vec<Event> {
        let mut buf = self.buf.lock().expect("ring poisoned");
        buf.events.drain(..).collect()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("ring poisoned").dropped
    }
}

struct RingSink {
    buf: Arc<Mutex<RingBuf>>,
}

impl Sink for RingSink {
    fn record(&mut self, ev: &Event) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if buf.events.len() == buf.cap {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(ev.clone());
    }
}

/// File sink writing one JSON object per line.
pub struct JsonlSink {
    out: BufWriter<std::fs::File>,
    lines: u64,
}

impl JsonlSink {
    /// Create (truncate) `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(std::fs::File::create(path)?),
            lines: 0,
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, ev: &Event) {
        // Benchmark-grade best effort: an I/O error on a telemetry line
        // must not abort the traced operation.
        if writeln!(self.out, "{}", ev.to_json_line()).is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A sink that forwards to two others (e.g. ring buffer + JSONL file).
pub struct TeeSink(Box<dyn Sink>, Box<dyn Sink>);

impl TeeSink {
    /// Forward every event to both `a` and `b`.
    pub fn new(a: Box<dyn Sink>, b: Box<dyn Sink>) -> Self {
        Self(a, b)
    }
}

impl Sink for TeeSink {
    fn record(&mut self, ev: &Event) {
        self.0.record(ev);
        self.1.record(ev);
    }

    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

struct Inner {
    sink: Mutex<Box<dyn Sink>>,
    metrics: Metrics,
    next_span: AtomicU64,
    seq: AtomicU64,
    clock: AtomicU64,
}

/// Cheap-clone tracing + metrics handle. See the module docs.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    level: Option<u8>,
    scope: Arc<AtomicU64>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.is_some())
            .field("level", &self.level)
            .finish()
    }
}

impl Recorder {
    /// The no-op default: every method is free.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Recorder feeding `sink`.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(sink),
                metrics: Metrics::new(),
                next_span: AtomicU64::new(1),
                seq: AtomicU64::new(0),
                clock: AtomicU64::new(0),
            })),
            level: None,
            scope: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Recorder with a ring-buffer sink; returns the read handle too.
    pub fn ring(cap: usize) -> (Self, RingHandle) {
        let handle = RingHandle::new(cap);
        (Self::with_sink(handle.sink()), handle)
    }

    /// Recorder writing JSONL to `path` (truncates).
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(JsonlSink::create(path)?)))
    }

    /// Whether tracing is on. Call sites guard field construction with
    /// this so the disabled path allocates nothing.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A clone tagged with wavelet level `level`, with its own scope
    /// slot. Shares sink, metrics, clock and id allocator.
    pub fn scoped(&self, level: usize) -> Recorder {
        Recorder {
            inner: self.inner.clone(),
            level: Some(level.min(u8::MAX as usize) as u8),
            scope: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Point this handle's scope at `span`: events emitted through this
    /// handle with [`Recorder::scope`] as parent attach there.
    pub fn set_scope(&self, span: SpanId) {
        self.scope.store(span.0, Ordering::Relaxed);
    }

    /// Current scope span.
    pub fn scope(&self) -> SpanId {
        SpanId(self.scope.load(Ordering::Relaxed))
    }

    /// Set the sim clock; subsequent events are stamped with `t`.
    pub fn set_time(&self, t: u64) {
        if let Some(inner) = &self.inner {
            inner.clock.store(t, Ordering::Relaxed);
        }
    }

    /// Current sim-clock reading.
    pub fn time(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.clock.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn emit(
        &self,
        class: EventClass,
        name: &'static str,
        span: SpanId,
        parent: SpanId,
        fields: Fields,
    ) {
        let Some(inner) = &self.inner else { return };
        let ev = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            t: inner.clock.load(Ordering::Relaxed),
            class,
            name,
            span,
            parent,
            level: self.level,
            fields,
        };
        inner.sink.lock().expect("sink poisoned").record(&ev);
    }

    /// Open a span under `parent` (use [`SpanId::NONE`] for a root).
    /// Returns [`SpanId::NONE`] when disabled.
    pub fn span(&self, parent: SpanId, name: &'static str, fields: Fields) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        self.emit(EventClass::Start, name, id, parent, fields);
        id
    }

    /// Close `span`; `fields` carry its outcome. No-op when disabled or
    /// `span` is [`SpanId::NONE`].
    pub fn end(&self, span: SpanId, name: &'static str, fields: Fields) {
        if span.is_none() {
            return;
        }
        self.emit(EventClass::End, name, span, SpanId::NONE, fields);
    }

    /// Emit an instantaneous event under `parent`.
    pub fn event(&self, parent: SpanId, name: &'static str, fields: Fields) {
        if self.inner.is_none() {
            return;
        }
        self.emit(EventClass::Instant, name, parent, parent, fields);
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Record an operation's cost into the metrics registry (no-op when
    /// disabled).
    pub fn record_op(&self, kind: OpKind, level: Option<usize>, stats: OpStats) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_op(kind, level, stats);
        }
    }

    /// Record an operation's host latency (no-op when disabled).
    pub fn record_latency_s(&self, kind: OpKind, level: Option<usize>, secs: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_latency_s(kind, level, secs);
        }
    }

    /// Flush the sink (file sinks buffer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            // hyperm-lint: allow(conc-blocking-hold) — the sink lock exists precisely to serialize sink IO; flush must run under it or it races concurrent record() writes
            inner.sink.lock().expect("sink poisoned").flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let s = rec.span(SpanId::NONE, "query", vec![]);
        assert!(s.is_none());
        rec.event(s, "route_hop", vec![("from", 1u64.into())]);
        rec.end(s, "query", vec![]);
        rec.record_op(OpKind::RangeQuery, None, OpStats::one_hop(8));
        rec.set_time(42);
        assert_eq!(rec.time(), 0);
        assert!(rec.metrics().is_none());
    }

    #[test]
    fn ring_captures_span_tree_and_clock() {
        let (rec, ring) = Recorder::ring(16);
        rec.set_time(7);
        let q = rec.span(SpanId::NONE, "query", vec![("eps", 0.1f64.into())]);
        let lrec = rec.scoped(2);
        lrec.set_scope(q);
        lrec.event(
            lrec.scope(),
            "route_hop",
            vec![("from", 0u64.into()), ("to", 3u64.into())],
        );
        rec.set_time(9);
        rec.end(q, "query", vec![("hops", 1u64.into())]);
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].class, EventClass::Start);
        assert_eq!(evs[0].span, q);
        assert_eq!(evs[0].t, 7);
        assert_eq!(evs[1].name, "route_hop");
        assert_eq!(evs[1].parent, q);
        assert_eq!(evs[1].level, Some(2));
        assert_eq!(evs[2].class, EventClass::End);
        assert_eq!(evs[2].t, 9);
        assert_eq!(ring.dropped(), 0);
        // Sequence numbers are dense from 0.
        assert_eq!(evs.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let (rec, ring) = Recorder::ring(2);
        for _ in 0..5 {
            rec.event(SpanId::NONE, "tick", vec![]);
        }
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.events().is_empty());
    }

    #[test]
    fn scoped_handles_share_ids_but_not_scope() {
        let (rec, ring) = Recorder::ring(16);
        let a = rec.scoped(0);
        let b = rec.scoped(1);
        let sa = a.span(SpanId::NONE, "overlay_lookup", vec![]);
        let sb = b.span(SpanId::NONE, "overlay_lookup", vec![]);
        assert_ne!(sa, sb, "span ids must be globally unique");
        a.set_scope(sa);
        b.set_scope(sb);
        assert_eq!(a.scope(), sa);
        assert_eq!(b.scope(), sb);
        assert_eq!(rec.scope(), SpanId::NONE, "parent handle scope untouched");
        let levels: Vec<_> = ring.events().iter().map(|e| e.level).collect();
        assert_eq!(levels, vec![Some(0), Some(1)]);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir =
            std::env::temp_dir().join(format!("hyperm-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let rec = Recorder::jsonl(&path).unwrap();
            let s = rec.span(SpanId::NONE, "query", vec![]);
            rec.event(s, "route_hop", vec![("from", 1u64.into())]);
            rec.end(s, "query", vec![]);
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"seq\": 0"));
        assert!(lines[1].contains("\"name\": \"route_hop\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
