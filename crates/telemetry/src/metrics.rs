//! Metrics registry: named counters plus per-`(op kind, wavelet level)`
//! cost cells with fixed-bucket log2 histograms.
//!
//! Every cell covers the paper's cost axes — hops, messages, bytes,
//! retries, failed routes — plus host-side end-to-end latency. Histograms
//! are power-of-two bucketed (`bucket 0` = value 0, `bucket i` = values in
//! `[2^(i-1), 2^i)`), so recording is two instructions and the snapshot is
//! bounded regardless of sample count. Level `None` rows aggregate a whole
//! operation (route + flood + fetch); `Some(l)` rows cover only the
//! overlay work on wavelet level `l` — so the per-level rows do *not* sum
//! to the whole-op row, which additionally counts fetch traffic.

use crate::json::JsonObj;
use hyperm_sim::{OpKind, OpStats};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets: one for zero plus one per possible
/// `u64` bit length.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Log2Hist {
    /// Bucket index for a value: 0 for 0, else its bit length.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 1u64 << (i - 1),
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_hi(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` ranges.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_hi(i), c))
            .collect()
    }
}

/// One `(op kind, level)` cell of the registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Cell {
    ops: u64,
    retries: u64,
    failed_routes: u64,
    hops: Log2Hist,
    messages: Log2Hist,
    bytes: Log2Hist,
    latency_us: Log2Hist,
}

/// Level key inside the registry: `-1` aggregates the whole operation,
/// `0..` is a wavelet level.
type LevelKey = i16;

const WHOLE_OP: LevelKey = -1;

fn level_key(level: Option<usize>) -> LevelKey {
    level.map(|l| l as LevelKey).unwrap_or(WHOLE_OP)
}

/// Thread-safe metrics registry. Owned by the recorder; all mutation goes
/// through `&self` so parallel per-level query threads can record
/// concurrently.
#[derive(Debug, Default)]
pub struct Metrics {
    cells: Mutex<BTreeMap<(usize, LevelKey), Cell>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation's cost into the `(kind, level)` cell.
    pub fn record_op(&self, kind: OpKind, level: Option<usize>, stats: OpStats) {
        let mut cells = self.cells.lock().expect("metrics poisoned");
        let cell = cells.entry((kind.index(), level_key(level))).or_default();
        cell.ops += 1;
        cell.retries += stats.retries;
        cell.failed_routes += stats.failed_routes;
        cell.hops.record(stats.hops);
        cell.messages.record(stats.messages);
        cell.bytes.record(stats.bytes);
    }

    /// Record one operation's host-side end-to-end latency (microsecond
    /// resolution in the histogram).
    pub fn record_latency_s(&self, kind: OpKind, level: Option<usize>, secs: f64) {
        let us = (secs * 1e6).max(0.0).round() as u64;
        let mut cells = self.cells.lock().expect("metrics poisoned");
        let cell = cells.entry((kind.index(), level_key(level))).or_default();
        cell.latency_us.record(us);
    }

    /// Bump a named counter by `v`.
    pub fn add(&self, name: &str, v: u64) {
        let mut counters = self.counters.lock().expect("metrics poisoned");
        *counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Read a named counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.cells.lock().expect("metrics poisoned");
        let counters = self.counters.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            cells: cells
                .iter()
                .map(|(&(kind_idx, lvl), cell)| CellSnapshot {
                    op: OpKind::ALL[kind_idx].name(),
                    level: if lvl < 0 { None } else { Some(lvl as usize) },
                    ops: cell.ops,
                    retries: cell.retries,
                    failed_routes: cell.failed_routes,
                    hops: HistSnapshot::of(&cell.hops),
                    messages: HistSnapshot::of(&cell.messages),
                    bytes: HistSnapshot::of(&cell.bytes),
                    latency_us: HistSnapshot::of(&cell.latency_us),
                })
                .collect(),
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean (0 when empty).
    pub mean: f64,
    /// Non-empty buckets as `(lo, hi, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistSnapshot {
    fn of(h: &Log2Hist) -> Self {
        Self {
            count: h.count,
            sum: h.sum,
            mean: h.mean(),
            buckets: h.nonzero_buckets(),
        }
    }

    fn to_json(&self) -> JsonObj {
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .map(|&(lo, hi, c)| format!("[{lo}, {hi}, {c}]"))
            .collect();
        JsonObj::new()
            .u("count", self.count)
            .u("sum", self.sum)
            .f("mean", self.mean, 3)
            .raw("buckets", format!("[{}]", buckets.join(", ")))
    }
}

/// Snapshot of one `(op kind, level)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSnapshot {
    /// Operation kind name (`publish`, `range_query`, …).
    pub op: &'static str,
    /// Wavelet level, or `None` for the whole-operation aggregate.
    pub level: Option<usize>,
    /// Operations recorded.
    pub ops: u64,
    /// Total retransmissions.
    pub retries: u64,
    /// Total failed routing attempts.
    pub failed_routes: u64,
    /// Hops per operation.
    pub hops: HistSnapshot,
    /// Messages per operation.
    pub messages: HistSnapshot,
    /// Bytes per operation.
    pub bytes: HistSnapshot,
    /// Host end-to-end latency per operation, microseconds.
    pub latency_us: HistSnapshot,
}

/// Serialisable report of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Cells sorted by (kind, level) with whole-op rows first.
    pub cells: Vec<CellSnapshot>,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.cells.is_empty()
    }

    /// The cell for `(op, level)` if recorded.
    pub fn cell(&self, op: OpKind, level: Option<usize>) -> Option<&CellSnapshot> {
        self.cells
            .iter()
            .find(|c| c.op == op.name() && c.level == level)
    }

    /// Render as a pretty JSON report (one counter object plus one array
    /// entry per cell).
    pub fn to_json(&self) -> String {
        let mut counters = JsonObj::new();
        for (k, v) in &self.counters {
            counters = counters.u(k, *v);
        }
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                let mut o = JsonObj::new().s("op", c.op);
                o = match c.level {
                    Some(l) => o.u("level", l as u64),
                    None => o.raw("level", "null"),
                };
                o.u("ops", c.ops)
                    .u("retries", c.retries)
                    .u("failed_routes", c.failed_routes)
                    .obj("hops", c.hops.to_json())
                    .obj("messages", c.messages.to_json())
                    .obj("bytes", c.bytes.to_json())
                    .obj("latency_us", c.latency_us.to_json())
                    .render()
            })
            .collect();
        JsonObj::new()
            .obj("counters", counters)
            .arr("cells", &cells)
            .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(Log2Hist::bucket_of(Log2Hist::bucket_lo(i)), i);
            assert_eq!(Log2Hist::bucket_of(Log2Hist::bucket_hi(i)), i);
        }
    }

    #[test]
    fn hist_records_and_means() {
        let mut h = Log2Hist::default();
        for v in [0, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 13);
        assert!((h.mean() - 2.6).abs() < 1e-12);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 1)]
        );
    }

    #[test]
    fn registry_cells_keyed_by_kind_and_level() {
        let m = Metrics::new();
        let op = OpStats {
            hops: 5,
            messages: 9,
            bytes: 512,
            retries: 1,
            failed_routes: 0,
        };
        m.record_op(OpKind::RangeQuery, Some(0), op);
        m.record_op(OpKind::RangeQuery, Some(1), op);
        m.record_op(OpKind::RangeQuery, None, op);
        m.record_op(OpKind::Publish, Some(0), op);
        m.record_latency_s(OpKind::RangeQuery, None, 0.0025);
        m.add("queries", 1);
        m.add("queries", 2);
        let snap = m.snapshot();
        assert_eq!(snap.cells.len(), 4);
        assert_eq!(snap.counters, vec![("queries".to_string(), 3)]);
        let whole = snap.cell(OpKind::RangeQuery, None).unwrap();
        assert_eq!(whole.ops, 1);
        assert_eq!(whole.hops.sum, 5);
        assert_eq!(whole.latency_us.count, 1);
        assert_eq!(whole.latency_us.sum, 2500);
        let l1 = snap.cell(OpKind::RangeQuery, Some(1)).unwrap();
        assert_eq!(l1.messages.sum, 9);
        assert_eq!(l1.retries, 1);
        assert!(snap.cell(OpKind::KnnQuery, None).is_none());
        // Whole-op rows sort before per-level rows within a kind.
        let range_rows: Vec<_> = snap
            .cells
            .iter()
            .filter(|c| c.op == "range_query")
            .map(|c| c.level)
            .collect();
        assert_eq!(range_rows, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn snapshot_json_is_nonempty_and_structured() {
        let m = Metrics::new();
        m.record_op(OpKind::KnnQuery, Some(2), OpStats::one_hop(64));
        let json = m.snapshot().to_json();
        assert!(json.contains("\"op\": \"knn_query\""));
        assert!(json.contains("\"level\": 2"));
        assert!(json.contains("\"buckets\": [[1, 1, 1]]"));
        assert!(MetricsSnapshot::default().is_empty());
    }
}
