//! A tiny JSON writer and parser.
//!
//! The workspace has no serde (no crates.io access), and the bench bins
//! used to hand-roll their `BENCH_*.json` reports with `format!`. This
//! module centralises that: a composable object builder with *per-field*
//! number formatting control, because the bench schemas fix the number of
//! decimals per key (`"qps": {:.2}`, `"recall": {:.6}`, …) and the ported
//! bins must stay byte-compatible with the old output.
//!
//! Two render modes:
//! * [`JsonObj::render`] — single line, `{"k": v, "k2": v2}`;
//! * [`JsonObj::render_pretty`] — top-level keys one per line at 2-space
//!   indent, closing `}` and trailing newline, matching the historical
//!   `BENCH_*.json` layout. Nested objects stay inline; arrays added with
//!   [`JsonObj::arr`] put one element per line at 4-space indent.
//!
//! The observability plane (PR 8) added the read side: [`JsonValue`] is a
//! recursive-descent parser for the documents this workspace itself
//! produces — telemetry JSONL streams, node stats snapshots, and the
//! `BENCH_*.json` reports the bench guard validates. Objects preserve key
//! order (the JSONL event decoder relies on field order).

/// Escape a string for a JSON string literal (quotes added by caller).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An ordered JSON object under construction. Values are rendered at
/// insertion time, so each field picks its own formatting.
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pre-rendered JSON value verbatim.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Unsigned integer field.
    pub fn u(self, key: &str, v: u64) -> Self {
        self.raw(key, v.to_string())
    }

    /// Signed integer field.
    pub fn i(self, key: &str, v: i64) -> Self {
        self.raw(key, v.to_string())
    }

    /// Boolean field.
    pub fn b(self, key: &str, v: bool) -> Self {
        self.raw(key, v.to_string())
    }

    /// Float field in `Display` format (`0.25` → `0.25`), as the old
    /// reports did for workload parameters.
    pub fn g(self, key: &str, v: f64) -> Self {
        self.raw(key, format!("{v}"))
    }

    /// Float field with a fixed number of decimals (`{:.prec$}`).
    pub fn f(self, key: &str, v: f64, prec: usize) -> Self {
        self.raw(key, format!("{v:.prec$}"))
    }

    /// Escaped string field.
    pub fn s(self, key: &str, v: &str) -> Self {
        self.raw(key, format!("\"{}\"", escape(v)))
    }

    /// Nested object, rendered inline.
    pub fn obj(self, key: &str, o: JsonObj) -> Self {
        let rendered = o.render();
        self.raw(key, rendered)
    }

    /// Array of pre-rendered values, one element per line at 4-space
    /// indent (the `"sweep": [...]` layout). Empty arrays render `[]`.
    pub fn arr(self, key: &str, items: &[String]) -> Self {
        if items.is_empty() {
            return self.raw(key, "[]");
        }
        let body = items
            .iter()
            .map(|it| format!("    {it}"))
            .collect::<Vec<_>>()
            .join(",\n");
        self.raw(key, format!("[\n{body}\n  ]"))
    }

    /// Single-line rendering: `{"k": v, "k2": v2}`.
    pub fn render(&self) -> String {
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{body}}}")
    }

    /// Report rendering: top-level keys one per line at 2-space indent,
    /// trailing newline.
    pub fn render_pretty(&self) -> String {
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("  \"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n}}\n")
    }
}

/// A parse error: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document. Numbers are `f64` (every number this
/// workspace writes fits: counters stay below 2^53 in practice), object
/// keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as the ordered field list if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Nested lookup: `get(a).get(b)…` over a key path.
    pub fn path(&self, keys: &[&str]) -> Option<&JsonValue> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }
}

/// Nesting depth bound: hostile input must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate halves render as U+FFFD: the writer
                            // never emits them, so only hostile input hits
                            // this.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bytes
                    // are valid UTF-8; find the scalar's byte length).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let v: f64 = s.parse().map_err(|_| self.err("invalid number"))?;
        if !v.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(JsonValue::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_matches_handrolled() {
        let got = JsonObj::new()
            .f("total_s", 1.25, 6)
            .f("qps", 160.0, 2)
            .f("p50_ms", 6.1, 4)
            .render();
        let want = format!(
            "{{\"total_s\": {:.6}, \"qps\": {:.2}, \"p50_ms\": {:.4}}}",
            1.25, 160.0, 6.1
        );
        assert_eq!(got, want);
    }

    #[test]
    fn pretty_matches_handrolled_layout() {
        let got = JsonObj::new()
            .obj("workload", JsonObj::new().u("peers", 120).g("eps", 0.25))
            .u("cores", 4)
            .f("recall", 1.0, 6)
            .render_pretty();
        let want = "{\n  \"workload\": {\"peers\": 120, \"eps\": 0.25},\n  \"cores\": 4,\n  \"recall\": 1.000000\n}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn array_layout_and_empty() {
        let items = vec!["{\"a\": 1}".to_string(), "{\"a\": 2}".to_string()];
        let got = JsonObj::new().arr("sweep", &items).render_pretty();
        let want = "{\n  \"sweep\": [\n    {\"a\": 1},\n    {\"a\": 2}\n  ]\n}\n";
        assert_eq!(got, want);
        assert_eq!(JsonObj::new().arr("sweep", &[]).render(), "{\"sweep\": []}");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(
            JsonObj::new().s("k", "x\"y").render(),
            "{\"k\": \"x\\\"y\"}"
        );
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let doc = JsonObj::new()
            .obj("workload", JsonObj::new().u("peers", 120).g("eps", 0.25))
            .u("cores", 4)
            .i("delta", -3)
            .b("ok", true)
            .raw("nothing", "null")
            .s("name", "a\"b\nc")
            .arr("sweep", &["{\"a\": 1}".to_string(), "[1, 2]".to_string()])
            .f("recall", 1.0, 6)
            .render_pretty();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.path(&["workload", "peers"]).unwrap().as_u64(), Some(120));
        assert_eq!(v.path(&["workload", "eps"]).unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("cores").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("delta").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("nothing"), Some(&JsonValue::Null));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\nc"));
        let sweep = v.get("sweep").unwrap().as_arr().unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].get("a").unwrap().as_u64(), Some(1));
        assert_eq!(sweep[1].as_arr().unwrap().len(), 2);
        assert_eq!(v.get("recall").unwrap().as_f64(), Some(1.0));
        // Key order is preserved.
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys[0], "workload");
        assert_eq!(keys[keys.len() - 1], "recall");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\": }",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "1e999",
            "nul",
            "\"bad \\q escape\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is an error, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn parser_handles_unicode_and_escapes() {
        let v = JsonValue::parse(r#"{"k": "café → done", "t": "\ttab"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("café → done"));
        assert_eq!(v.get("t").unwrap().as_str(), Some("\ttab"));
    }

    #[test]
    fn u64_extraction_guards_domain() {
        assert_eq!(JsonValue::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1.5").unwrap().as_f64(), Some(1.5));
    }
}
