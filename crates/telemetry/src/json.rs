//! A tiny JSON writer.
//!
//! The workspace has no serde (no crates.io access), and the bench bins
//! used to hand-roll their `BENCH_*.json` reports with `format!`. This
//! module centralises that: a composable object builder with *per-field*
//! number formatting control, because the bench schemas fix the number of
//! decimals per key (`"qps": {:.2}`, `"recall": {:.6}`, …) and the ported
//! bins must stay byte-compatible with the old output.
//!
//! Two render modes:
//! * [`JsonObj::render`] — single line, `{"k": v, "k2": v2}`;
//! * [`JsonObj::render_pretty`] — top-level keys one per line at 2-space
//!   indent, closing `}` and trailing newline, matching the historical
//!   `BENCH_*.json` layout. Nested objects stay inline; arrays added with
//!   [`JsonObj::arr`] put one element per line at 4-space indent.

/// Escape a string for a JSON string literal (quotes added by caller).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An ordered JSON object under construction. Values are rendered at
/// insertion time, so each field picks its own formatting.
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pre-rendered JSON value verbatim.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Unsigned integer field.
    pub fn u(self, key: &str, v: u64) -> Self {
        self.raw(key, v.to_string())
    }

    /// Signed integer field.
    pub fn i(self, key: &str, v: i64) -> Self {
        self.raw(key, v.to_string())
    }

    /// Boolean field.
    pub fn b(self, key: &str, v: bool) -> Self {
        self.raw(key, v.to_string())
    }

    /// Float field in `Display` format (`0.25` → `0.25`), as the old
    /// reports did for workload parameters.
    pub fn g(self, key: &str, v: f64) -> Self {
        self.raw(key, format!("{v}"))
    }

    /// Float field with a fixed number of decimals (`{:.prec$}`).
    pub fn f(self, key: &str, v: f64, prec: usize) -> Self {
        self.raw(key, format!("{v:.prec$}"))
    }

    /// Escaped string field.
    pub fn s(self, key: &str, v: &str) -> Self {
        self.raw(key, format!("\"{}\"", escape(v)))
    }

    /// Nested object, rendered inline.
    pub fn obj(self, key: &str, o: JsonObj) -> Self {
        let rendered = o.render();
        self.raw(key, rendered)
    }

    /// Array of pre-rendered values, one element per line at 4-space
    /// indent (the `"sweep": [...]` layout). Empty arrays render `[]`.
    pub fn arr(self, key: &str, items: &[String]) -> Self {
        if items.is_empty() {
            return self.raw(key, "[]");
        }
        let body = items
            .iter()
            .map(|it| format!("    {it}"))
            .collect::<Vec<_>>()
            .join(",\n");
        self.raw(key, format!("[\n{body}\n  ]"))
    }

    /// Single-line rendering: `{"k": v, "k2": v2}`.
    pub fn render(&self) -> String {
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{body}}}")
    }

    /// Report rendering: top-level keys one per line at 2-space indent,
    /// trailing newline.
    pub fn render_pretty(&self) -> String {
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("  \"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n}}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_matches_handrolled() {
        let got = JsonObj::new()
            .f("total_s", 1.25, 6)
            .f("qps", 160.0, 2)
            .f("p50_ms", 6.1, 4)
            .render();
        let want = format!(
            "{{\"total_s\": {:.6}, \"qps\": {:.2}, \"p50_ms\": {:.4}}}",
            1.25, 160.0, 6.1
        );
        assert_eq!(got, want);
    }

    #[test]
    fn pretty_matches_handrolled_layout() {
        let got = JsonObj::new()
            .obj("workload", JsonObj::new().u("peers", 120).g("eps", 0.25))
            .u("cores", 4)
            .f("recall", 1.0, 6)
            .render_pretty();
        let want = "{\n  \"workload\": {\"peers\": 120, \"eps\": 0.25},\n  \"cores\": 4,\n  \"recall\": 1.000000\n}\n";
        assert_eq!(got, want);
    }

    #[test]
    fn array_layout_and_empty() {
        let items = vec!["{\"a\": 1}".to_string(), "{\"a\": 2}".to_string()];
        let got = JsonObj::new().arr("sweep", &items).render_pretty();
        let want = "{\n  \"sweep\": [\n    {\"a\": 1},\n    {\"a\": 2}\n  ]\n}\n";
        assert_eq!(got, want);
        assert_eq!(JsonObj::new().arr("sweep", &[]).render(), "{\"sweep\": []}");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(
            JsonObj::new().s("k", "x\"y").render(),
            "{\"k\": \"x\\\"y\"}"
        );
    }
}
