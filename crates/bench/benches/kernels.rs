//! Criterion micro-benchmarks for Hyper-M's hot kernels.
//!
//! These complement the figure binaries (which measure simulated message
//! counts): here we measure the *wall-clock* cost of the algorithmic
//! pieces a real device would execute — DWT decomposition, per-level
//! k-means, sphere-intersection scoring, the Eq. 8 radius solver, CAN
//! routing and the end-to-end build/query paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperm_baton::{BatonConfig, BatonOverlay};
use hyperm_can::{CanConfig, CanOverlay, ObjectRef};
use hyperm_cluster::kmeans::kmeans;
use hyperm_cluster::{Dataset, KMeansConfig};
use hyperm_core::{HypermConfig, HypermNetwork, KnnOptions, QueryEngine};
use hyperm_datagen::{generate_markov, MarkovConfig};
use hyperm_geometry::{intersection_fraction, solve_epsilon_for_k, ClusterView};
use hyperm_sim::NodeId;
use hyperm_wavelet::{decompose, Normalization};
use std::hint::black_box;

fn bench_dwt(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwt_decompose");
    for dim in [64usize, 512] {
        let v: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &v, |b, v| {
            b.iter(|| decompose(black_box(v), Normalization::PaperAverage).unwrap())
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_peer_level");
    group.sample_size(20);
    // A peer's level view: 1000 items in low-dimensional subspaces.
    for dim in [1usize, 4] {
        let data = generate_markov(&MarkovConfig {
            count: 1000,
            dim: 64,
            max_step_cap: 0.05,
            seed: 1,
        });
        let mut view = Dataset::new(dim);
        for row in data.rows() {
            view.push_row(&row[..dim]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(dim), &view, |b, view| {
            b.iter(|| kmeans(black_box(view), &KMeansConfig::new(10).with_seed(2)))
        });
    }
    group.finish();
}

fn bench_geometry(c: &mut Criterion) {
    c.bench_function("intersection_fraction_d4", |b| {
        b.iter(|| {
            intersection_fraction(
                black_box(4),
                black_box(0.3),
                black_box(0.25),
                black_box(0.4),
            )
        })
    });
    let clusters: Vec<ClusterView> = (0..50)
        .map(|i| ClusterView {
            centre_dist: 0.1 + i as f64 * 0.02,
            radius: 0.05 + (i % 7) as f64 * 0.01,
            items: 20.0,
        })
        .collect();
    c.bench_function("solve_epsilon_for_k", |b| {
        b.iter(|| solve_epsilon_for_k(black_box(4), black_box(&clusters), black_box(100.0), 1e-6))
    });
}

fn bench_can(c: &mut Criterion) {
    let overlay = CanOverlay::bootstrap(CanConfig::new(2).with_seed(3), 100);
    c.bench_function("can_route_100n_2d", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B97F4A7C15);
            let x = (i >> 11) as f64 / (1u64 << 53) as f64;
            let y = ((i.wrapping_mul(31)) >> 11) as f64 / (1u64 << 53) as f64;
            overlay.route(NodeId((i % 100) as usize), black_box(&[x, y]), 64)
        })
    });
    c.bench_function("can_insert_sphere_100n_2d", |b| {
        b.iter_batched(
            || overlay.clone(),
            |mut ov| {
                ov.insert_sphere(
                    NodeId(0),
                    vec![0.4, 0.6],
                    0.05,
                    ObjectRef {
                        peer: 0,
                        tag: 0,
                        items: 10,
                    },
                    true,
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_alternative_substrates(c: &mut Criterion) {
    let baton = BatonOverlay::bootstrap(BatonConfig::new(1), 100);
    c.bench_function("baton_route_100n_1d", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B97F4A7C15);
            let key = (i >> 11) as f64 / (1u64 << 53) as f64;
            baton.route_1d(hyperm_sim::NodeId((i % 100) as usize), black_box(key), 64)
        })
    });
    let vbi = hyperm_vbi::VbiOverlay::bootstrap(hyperm_vbi::VbiConfig::new(2), 100);
    c.bench_function("vbi_route_100n_2d", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B97F4A7C15);
            let x = (i >> 11) as f64 / (1u64 << 53) as f64;
            let y = ((i.wrapping_mul(31)) >> 11) as f64 / (1u64 << 53) as f64;
            vbi.route_point(
                hyperm_sim::NodeId((i % 100) as usize),
                black_box(&[x, y]),
                64,
            )
        })
    });
}

fn bench_local_index(c: &mut Criterion) {
    use hyperm_cluster::KdTree;
    let data = generate_markov(&MarkovConfig {
        count: 2000,
        dim: 64,
        max_step_cap: 0.05,
        seed: 9,
    });
    let tree = KdTree::build(&data);
    let q: Vec<f64> = data.row(17).to_vec();
    c.bench_function("local_knn_kdtree_2000x64", |b| {
        b.iter(|| tree.knn(&data, black_box(&q), 10))
    });
    c.bench_function("local_knn_linear_2000x64", |b| {
        b.iter(|| {
            let mut all: Vec<(usize, f64)> = data
                .rows()
                .enumerate()
                .map(|(i, row)| {
                    let d: f64 = row
                        .iter()
                        .zip(&q)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    (i, d)
                })
                .collect();
            all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            all.truncate(10);
            all
        })
    });
}

fn bench_wavelet_variants(c: &mut Criterion) {
    let v: Vec<f64> = (0..512).map(|i| (i as f64 * 0.11).sin()).collect();
    c.bench_function("cdf53_decompose_512", |b| {
        b.iter(|| hyperm_wavelet::cdf53_decompose(black_box(&v)))
    });
    c.bench_function("d4_decompose_512", |b| {
        b.iter(|| hyperm_wavelet::d4_decompose(black_box(&v)))
    });
    let img = hyperm_wavelet::Image::from_flat(
        (0..32 * 32).map(|i| (i % 17) as f64 / 17.0).collect(),
        32,
        32,
    );
    c.bench_function("dwt2_pyramid_32x32_l3", |b| {
        b.iter(|| hyperm_wavelet::dwt2_pyramid(black_box(&img), 3, Normalization::PaperAverage))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperm_end_to_end");
    group.sample_size(10);
    let data = generate_markov(&MarkovConfig {
        count: 2000,
        dim: 64,
        max_step_cap: 0.05,
        seed: 5,
    });
    let peers: Vec<Dataset> = (0..20)
        .map(|p| data.select(&(p * 100..(p + 1) * 100).collect::<Vec<_>>()))
        .collect();
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(7);

    group.bench_function("build_20peers_x100items_64d", |b| {
        b.iter(|| HypermNetwork::build(black_box(peers.clone()), cfg.clone()).unwrap())
    });

    let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let q = peers[3].row(0).to_vec();
    group.bench_function("range_query", |b| {
        b.iter(|| net.range_query(0, black_box(&q), 0.2, None))
    });
    group.bench_function("knn_query_k10", |b| {
        b.iter(|| net.knn_query(0, black_box(&q), 10, KnnOptions::default()))
    });
    group.finish();
}

fn bench_query_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_engine");
    group.sample_size(10);
    let data = generate_markov(&MarkovConfig {
        count: 2000,
        dim: 64,
        max_step_cap: 0.05,
        seed: 11,
    });
    let peers: Vec<Dataset> = (0..20)
        .map(|p| data.select(&(p * 100..(p + 1) * 100).collect::<Vec<_>>()))
        .collect();
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(13)
        .with_parallel_query(false);
    let (serial_net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let mut parallel_net = serial_net.clone();
    parallel_net.config.parallel_query = true;
    let queries: Vec<Vec<f64>> = (0..32).map(|i| peers[i % 20].row(i).to_vec()).collect();

    group.bench_function("serial_32_range_queries", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(serial_net.range_query(0, black_box(q), 0.2, None));
            }
        })
    });
    group.bench_function("parallel_levels_32_range_queries", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(parallel_net.range_query(0, black_box(q), 0.2, None));
            }
        })
    });
    let engine = QueryEngine::new(&serial_net);
    group.bench_function("engine_batch_32_range_queries", |b| {
        b.iter(|| black_box(engine.range_batch(0, black_box(&queries), 0.2, None)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dwt,
    bench_kmeans,
    bench_geometry,
    bench_can,
    bench_alternative_substrates,
    bench_local_index,
    bench_wavelet_variants,
    bench_end_to_end,
    bench_query_engine
);
criterion_main!(benches);
