//! Shared infrastructure for the experiment binaries.
//!
//! Every figure/table of the paper has a binary in `src/bin/` that prints
//! the same series the paper plots (see DESIGN.md's experiment index).
//! Binaries run at a laptop-friendly **quick** scale by default; set
//! `HYPERM_SCALE=full` to reproduce the paper's full workload sizes
//! (100 nodes × 1000 items × 512-d for dissemination; 12,000 histograms
//! over 50 nodes for retrieval).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hyperm_cluster::Dataset;
use hyperm_datagen::{
    distribute_by_clusters, generate_aloi_like, generate_markov, AloiConfig, DistributeConfig,
    MarkovConfig,
};

/// Experiment scale, controlled by the `HYPERM_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes; every binary finishes in seconds.
    Quick,
    /// The paper's workload sizes.
    Full,
}

impl Scale {
    /// Read `HYPERM_SCALE` (default quick).
    pub fn from_env() -> Scale {
        match std::env::var("HYPERM_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// Parameters of the Section-5 dissemination workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisseminationWorkload {
    /// Network size (paper: 100).
    pub nodes: usize,
    /// Items per node (paper: 1000).
    pub items_per_node: usize,
    /// Dimensionality (paper: 512).
    pub dim: usize,
}

impl DisseminationWorkload {
    /// Workload for the given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                nodes: 100,
                items_per_node: 400,
                dim: 512,
            },
            Scale::Full => Self {
                nodes: 100,
                items_per_node: 1000,
                dim: 512,
            },
        }
    }

    /// Generate the Markov corpus and deal it onto peers the paper's way
    /// (global k-means classes spread over 8–10 nodes each).
    pub fn build_peers(&self, seed: u64) -> Vec<Dataset> {
        let total = self.nodes * self.items_per_node;
        let data = generate_markov(&MarkovConfig {
            count: total,
            dim: self.dim,
            max_step_cap: 0.05,
            seed,
        });
        let mut peers = distribute_by_clusters(
            &data,
            &DistributeConfig {
                peers: self.nodes,
                classes: (self.nodes / 4).max(2),
                peers_per_class: (8, 10),
                minibatch: true,
                seed: seed.wrapping_add(1),
            },
        );
        // The class spread can leave a few peers empty; backfill one item
        // each from the largest peer so every node participates.
        backfill_empty_peers(&mut peers);
        peers
    }
}

/// Parameters of the Section-6 retrieval workload (ALOI substitute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalWorkload {
    /// Network size (paper: 50).
    pub nodes: usize,
    /// Object classes.
    pub classes: usize,
    /// Views per class (classes × views = corpus size; paper: 12,000).
    pub views_per_class: usize,
}

impl RetrievalWorkload {
    /// Workload for the given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                nodes: 50,
                classes: 40,
                views_per_class: 30,
            },
            Scale::Full => Self {
                nodes: 50,
                classes: 100,
                views_per_class: 120,
            },
        }
    }

    /// Generate histograms and deal classes onto peers (each class's views
    /// spread over a few peers, mimicking shared interests).
    pub fn build_peers(&self, seed: u64) -> Vec<Dataset> {
        let corpus = generate_aloi_like(&AloiConfig {
            classes: self.classes,
            views_per_class: self.views_per_class,
            bins: 64,
            view_jitter: 0.15,
            seed,
        });
        let mut peers = distribute_by_clusters(
            &corpus.data,
            &DistributeConfig {
                peers: self.nodes,
                classes: self.classes,
                peers_per_class: (3, 6),
                minibatch: true,
                seed: seed.wrapping_add(1),
            },
        );
        backfill_empty_peers(&mut peers);
        peers
    }
}

fn backfill_empty_peers(peers: &mut [Dataset]) {
    let donor = (0..peers.len())
        .max_by_key(|&i| peers[i].len())
        .expect("at least one peer");
    let donor_rows: Vec<Vec<f64>> = peers[donor].rows().map(<[f64]>::to_vec).collect();
    let mut next = 0usize;
    for peer in peers.iter_mut() {
        if peer.is_empty() {
            peer.push_row(&donor_rows[next % donor_rows.len()]);
            next += 1;
        }
    }
}

/// Print an aligned table: header row then data rows (also valid CSV when
/// pasted, commas included).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_build() {
        let w = DisseminationWorkload {
            nodes: 10,
            items_per_node: 20,
            dim: 32,
        };
        let peers = w.build_peers(1);
        assert_eq!(peers.len(), 10);
        assert!(peers.iter().all(|p| !p.is_empty()));
        assert!(peers.iter().map(Dataset::len).sum::<usize>() >= 200);
    }

    #[test]
    fn retrieval_workload_builds() {
        let w = RetrievalWorkload {
            nodes: 8,
            classes: 5,
            views_per_class: 10,
        };
        let peers = w.build_peers(2);
        assert_eq!(peers.len(), 8);
        assert!(peers.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn scale_parses_env_values() {
        assert_eq!(Scale::from_env(), Scale::Quick); // default in tests
    }
}
