//! Figure 9: data distribution among nodes under skewed data.
//!
//! "The CAN overlay of the dimensionality of the original dataset performs
//! among the worst, having most of the data on a very small number of
//! nodes. The absolute worst case … occurs with the usage of only the
//! approximation level. However, as detail levels are added, the nodes used
//! turn out to be from different parts of the overlay due to the
//! orthogonality of the spaces."
//!
//! For skewed corpora (2–5 dense clusters) we report, per overlay, how
//! concentrated the stored summaries' item mass is (non-empty nodes, share
//! of the top 10% of nodes, Gini coefficient), plus the paper's headline
//! number: the average count of peers holding data across all overlays.

use hyperm_baseline::{distribution_stats, insert_all_items, PerItemCanConfig};
use hyperm_bench::{f3, print_table, Scale};
use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork};
use hyperm_datagen::{generate_skewed, SkewedConfig};

fn occupancy_stats(items_per_node: &[u64]) -> (usize, f64, f64) {
    let s = distribution_stats(items_per_node);
    (s.nonempty, s.top10_share, s.gini)
}

fn main() {
    let scale = Scale::from_env();
    let nodes = 100usize;
    let dim = 512usize;
    let count = match scale {
        Scale::Quick => 5_000,
        Scale::Full => 20_000,
    };
    println!("Figure 9 — data distribution under skew ({nodes} nodes, {dim}-d, {count} items, scale {scale:?})");

    for blobs in 2..=5usize {
        let corpus = generate_skewed(&SkewedConfig {
            blobs,
            count,
            dim,
            spread: 0.02,
            seed: 21,
        });
        // Deal items round-robin onto peers (skew is in the data, not the
        // peer assignment).
        let mut peers: Vec<Dataset> = (0..nodes).map(|_| Dataset::new(dim)).collect();
        for (i, row) in corpus.data.rows().enumerate() {
            peers[i % nodes].push_row(row);
        }

        // Hyper-M with 4 levels.
        let cfg = HypermConfig::new(dim)
            .with_levels(4)
            .with_clusters_per_peer(10)
            .with_seed(23);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();

        // Per-item CAN in the original space, for the "original" line.
        let can_full = insert_all_items(&peers, &PerItemCanConfig::full_dim(nodes, dim, 23));

        let mut rows = Vec::new();
        let (ne, top10, gini) = occupancy_stats(&can_full.overlay.stored_items_per_node());
        rows.push(vec![
            "original 512-d (per item)".into(),
            ne.to_string(),
            f3(top10),
            f3(gini),
        ]);
        let mut nonempty_sum = 0usize;
        let mut combined = vec![0u64; nodes];
        for l in 0..net.levels() {
            let occ = net.overlay(l).stored_items_per_node();
            for (c, o) in combined.iter_mut().zip(&occ) {
                *c += o;
            }
            let (ne, top10, gini) = occupancy_stats(&occ);
            nonempty_sum += ne;
            let label = match net.subspace(l) {
                hyperm_wavelet::Subspace::Approx => "Hyper-M: A (approx only)".to_string(),
                hyperm_wavelet::Subspace::Detail(d) => format!("Hyper-M: D_{d}"),
            };
            rows.push(vec![label, ne.to_string(), f3(top10), f3(gini)]);
        }
        // The paper's headline effect: each overlay loads *different*
        // devices (orthogonal subspaces place the same data independently),
        // so the per-device load summed across all levels is far better
        // spread than any single space.
        let (ne, top10, gini) = occupancy_stats(&combined);
        rows.push(vec![
            "Hyper-M: all levels combined (per device)".into(),
            ne.to_string(),
            f3(top10),
            f3(gini),
        ]);
        rows.push(vec![
            "Hyper-M: avg peers holding data (per level)".into(),
            format!("{:.1}", nonempty_sum as f64 / net.levels() as f64),
            String::new(),
            String::new(),
        ]);
        print_table(
            &format!("{blobs} dense clusters"),
            &["overlay", "non-empty nodes", "top-10% share", "Gini"],
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper): the original-space overlay and the approximation-only\n\
         overlay concentrate data on few nodes (high Gini); adding detail levels\n\
         spreads load because the wavelet subspaces are orthogonal."
    );
}
