//! Energy and MANET-underlay analysis (the abstract's "energy and time
//! efficient" claim, quantified).
//!
//! The paper measures overlay hops only; this binary expands each overlay
//! message across a unit-disk MANET underlay (average physical path
//! length) and applies the Bluetooth-class radio energy model, comparing
//! Hyper-M against per-item CAN dissemination. It also reports the
//! parallel makespan, the paper's implicit "time" axis.

use hyperm_baseline::{insert_all_items, PerItemCanConfig};
use hyperm_bench::{f1, f3, print_table, DisseminationWorkload, Scale};
use hyperm_core::{HypermConfig, HypermNetwork};
use hyperm_sim::{EnergyModel, Underlay, UnderlayConfig};

fn main() {
    let scale = Scale::from_env();
    let w = DisseminationWorkload::at(scale);
    println!(
        "Energy / MANET analysis ({} nodes x {} items, {}-d, scale {scale:?})",
        w.nodes, w.items_per_node, w.dim
    );
    let peers = w.build_peers(81);
    let energy = EnergyModel::bluetooth_class2();
    let underlay = Underlay::random(UnderlayConfig {
        nodes: w.nodes,
        seed: 83,
        ..Default::default()
    });
    let stretch = underlay.mean_path_hops();
    println!(
        "underlay: {} devices, radio range {:.1} m, mean physical path {:.2} hops",
        underlay.len(),
        underlay.config().radio_range,
        stretch
    );

    let cfg = HypermConfig::new(w.dim)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(85);
    let (_, hyperm) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let can_full = insert_all_items(&peers, &PerItemCanConfig::full_dim(w.nodes, w.dim, 85));

    let mut rows = Vec::new();
    for (name, stats, makespan) in [
        (
            "Hyper-M (4 levels)",
            hyperm.insertion,
            hyperm.makespan_rounds,
        ),
        ("CAN 512-d per item", can_full.totals, can_full.totals.hops),
    ] {
        // Every overlay message crosses `stretch` physical links on average.
        let phys_msgs = (stats.messages as f64 * stretch).round() as u64;
        let phys = hyperm_sim::OpStats {
            hops: phys_msgs,
            messages: phys_msgs,
            bytes: (stats.bytes as f64 * stretch) as u64,
            ..hyperm_sim::OpStats::zero()
        };
        rows.push(vec![
            name.into(),
            stats.messages.to_string(),
            f1(stats.bytes as f64 / 1024.0),
            phys_msgs.to_string(),
            f3(energy.op_joules(phys)),
            makespan.to_string(),
        ]);
    }
    let j_h: f64 = rows[0][4].parse().unwrap();
    let j_c: f64 = rows[1][4].parse().unwrap();
    print_table(
        "dissemination cost",
        &[
            "system",
            "overlay msgs",
            "KiB",
            "radio msgs",
            "energy (J)",
            "makespan (rounds)",
        ],
        &rows,
    );
    println!(
        "\nenergy ratio (CAN / Hyper-M): {:.1}x",
        j_c / j_h.max(1e-12)
    );
    println!(
        "Expected shape: Hyper-M an order of magnitude cheaper in messages, bytes\n\
         and Joules, with a makespan bounded by the busiest peer's few cluster\n\
         insertions rather than its thousand item insertions."
    );
}
