//! Figure 8c: average insertion hops per item vs number of overlay layers.
//!
//! "We see that Hyper-M greatly reduces the number of hops required to
//! publish each item when compared to the CAN approach in the original
//! vector space … some values for the average number of hops are smaller
//! than 1 because we are averaging over the number of items on a peer, but
//! insert only cluster centroids." (Plotted on a log scale in the paper.)

use hyperm_baseline::{insert_all_items, PerItemCanConfig};
use hyperm_bench::{f3, print_table, DisseminationWorkload, Scale};
use hyperm_core::{HypermConfig, HypermNetwork};

fn main() {
    let scale = Scale::from_env();
    let w = DisseminationWorkload::at(scale);
    println!(
        "Figure 8c — avg hops per item vs overlay layers ({} nodes x {} items, {}-d, scale {scale:?})",
        w.nodes, w.items_per_node, w.dim
    );
    let peers = w.build_peers(13);

    // Baselines (flat lines in the paper's plot).
    let can_full = insert_all_items(&peers, &PerItemCanConfig::full_dim(w.nodes, w.dim, 9));
    let can_2d = insert_all_items(&peers, &PerItemCanConfig::two_dim(w.nodes, 9));

    let mut rows = Vec::new();
    for layers in 1..=6usize {
        let cfg = HypermConfig::new(w.dim)
            .with_levels(layers)
            .with_clusters_per_peer(10)
            .with_seed(17);
        let (_, report) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        rows.push(vec![
            layers.to_string(),
            f3(report.avg_hops_per_item()),
            f3(report.avg_hops_per_item().log10()),
            report.makespan_hops.to_string(),
            report.makespan_rounds.to_string(),
        ]);
    }
    print_table(
        "Hyper-M: avg insertion hops per item vs layers",
        &[
            "layers",
            "hops/item",
            "log10(hops/item)",
            "makespan hops",
            "makespan rounds",
        ],
        &rows,
    );
    print_table(
        "per-item CAN baselines (flat reference lines)",
        &["system", "hops/item", "log10"],
        &[
            vec![
                "CAN 512-d".into(),
                f3(can_full.avg_hops_per_item()),
                f3(can_full.avg_hops_per_item().log10()),
            ],
            vec![
                "CAN 2-d".into(),
                f3(can_2d.avg_hops_per_item()),
                f3(can_2d.avg_hops_per_item().log10()),
            ],
        ],
    );
    println!(
        "\nExpected shape (paper): Hyper-M's per-item hops sit well below 1 and grow\n\
         roughly linearly with the layer count, staying an order of magnitude below\n\
         per-item CAN even at 4+ layers."
    );
}
