//! Churn resilience (extension experiment; DESIGN.md).
//!
//! The paper's short-lived MANET implicitly assumes everyone stays for the
//! session; in reality devices walk away. With a fraction `f` of peers
//! fail-stopped after the overlay is built:
//!
//! * recall against **all** originally published data should track `1 − f`
//!   (the departed items are physically gone);
//! * recall against the **alive** peers' data should stay at 1.0 — the
//!   no-false-dismissal property is churn-independent, because the
//!   summaries of alive peers remain replicated in the overlay.

use hyperm_bench::{f1, f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{HypermConfig, HypermNetwork};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!("Churn resilience ({} nodes, scale {scale:?})", w.nodes);
    let peers = w.build_peers(111);
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(113);

    let mut rows = Vec::new();
    for fail_frac in [0.0f64, 0.1, 0.2, 0.3, 0.5] {
        let (mut net, _) = HypermNetwork::build(peers.clone(), cfg.clone()).unwrap();
        // Fail a random subset, but keep peer 0 alive (it issues queries).
        let mut rng = StdRng::seed_from_u64(117);
        let mut ids: Vec<usize> = (1..net.len()).collect();
        ids.shuffle(&mut rng);
        let n_fail = (fail_frac * net.len() as f64).round() as usize;
        for &p in ids.iter().take(n_fail) {
            net.fail_peer(p);
        }

        // Queries from items held by alive peers.
        let mut recalls_all = Vec::new();
        let mut recalls_alive = Vec::new();
        let mut msgs = 0.0;
        for _ in 0..25 {
            let (p, i) = loop {
                let p = rng.gen_range(0..net.len());
                if net.is_alive(p) {
                    break (p, rng.gen_range(0..net.peer(p).len()));
                }
            };
            let q = net.peer(p).items.row(i).to_vec();
            // Truth sets by direct scan.
            let eps = {
                // 25th-NN distance over all data.
                let mut d: Vec<f64> = (0..net.len())
                    .flat_map(|pp| {
                        let peer = net.peer(pp);
                        peer.items
                            .rows()
                            .map(|row| {
                                row.iter()
                                    .zip(&q)
                                    .map(|(a, b)| (a - b) * (a - b))
                                    .sum::<f64>()
                                    .sqrt()
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect();
                d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                d[25.min(d.len() - 1)]
            };
            let mut truth_all = 0usize;
            let mut truth_alive = 0usize;
            for pp in 0..net.len() {
                let hits = net.peer(pp).local_range(&q, eps).len();
                truth_all += hits;
                if net.is_alive(pp) {
                    truth_alive += hits;
                }
            }
            let res = net.range_query(0, &q, eps, None);
            msgs += res.stats.messages as f64;
            recalls_all.push(res.items.len() as f64 / truth_all.max(1) as f64);
            recalls_alive.push(res.items.len() as f64 / truth_alive.max(1) as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        rows.push(vec![
            format!("{:.0}%", fail_frac * 100.0),
            n_fail.to_string(),
            f3(mean(&recalls_all)),
            f3(mean(&recalls_alive)),
            f1(msgs / 25.0),
        ]);
    }
    print_table(
        "range recall under fail-stop churn",
        &[
            "failed",
            "peers down",
            "recall vs all data",
            "recall vs alive data",
            "msgs/query",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the all-data column tracks the surviving fraction; the\n\
         alive-data column stays at 1.000 — no-false-dismissal is churn-independent."
    );
}
