//! Churn resilience with the overlay repair engine (extension experiment;
//! DESIGN.md "Repair protocol").
//!
//! The paper's short-lived MANET implicitly assumes everyone stays for the
//! session; in reality devices crash, walk away and arrive late. This
//! experiment crash-stops a fraction `f` of peers and compares the
//! paper-faithful baseline (no repair: failures leave routing holes)
//! against the repair engine (zone takeover + background merges + one
//! soft-state refresh period):
//!
//! * recall against **all** originally published data tracks `1 − f`
//!   regardless of repair — the departed items are physically gone;
//! * recall against the **alive** peers' data stays at 1.0 with repair on:
//!   takeover re-owns the crashed zones and the refresh loop re-inserts
//!   the replicas that died with them. With repair off it degrades and
//!   queries report explicit failed routes instead of hanging.
//!
//! Two extra sections exercise the rest of the subsystem: queries over
//! lossy links (message-level fault injection with bounded retry) and a
//! Poisson churn schedule (crashes, departures and arrivals interleaved
//! with the refresh loop over sim time). Emits `BENCH_churn.json`.
//!
//! A final sweep crosses lossy publish (reliable ack/retransmit path)
//! with partition injection/healing, self-asserts the recovery bounds
//! (the CI chaos smoke), and emits `BENCH_faults.json`.

use hyperm_bench::{f1, f3, print_table, RetrievalWorkload, Scale};
use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, QueryBudget};
use hyperm_repair::{ChurnSchedule, RepairConfig, RepairEngine};
use hyperm_sim::{Backoff, FaultConfig, PartitionPlan};
use hyperm_telemetry::JsonObj;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const REFRESH_INTERVAL: u64 = 50;
const QUERIES: usize = 25;

/// Query workload drawn from the items of alive peers only, with truth
/// sets computed by direct scan. Reused verbatim across repair on/off so
/// the comparison is paired.
struct QuerySpec {
    q: Vec<f64>,
    eps: f64,
    truth_all: usize,
    truth_alive: usize,
}

fn draw_queries(net: &HypermNetwork, seed: u64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..QUERIES)
        .map(|_| {
            let (p, i) = loop {
                let p = rng.gen_range(0..net.len());
                if net.is_alive(p) {
                    break (p, rng.gen_range(0..net.peer(p).len()));
                }
            };
            let q = net.peer(p).items.row(i).to_vec();
            // 25th-NN distance over the full corpus as the radius.
            let mut d: Vec<f64> = (0..net.len())
                .flat_map(|pp| {
                    net.peer(pp)
                        .items
                        .rows()
                        .map(|row| {
                            row.iter()
                                .zip(&q)
                                .map(|(a, b)| (a - b) * (a - b))
                                .sum::<f64>()
                                .sqrt()
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let eps = d[25.min(d.len() - 1)];
            let mut truth_all = 0usize;
            let mut truth_alive = 0usize;
            for pp in 0..net.len() {
                let hits = net.peer(pp).local_range(&q, eps).len();
                truth_all += hits;
                if net.is_alive(pp) {
                    truth_alive += hits;
                }
            }
            QuerySpec {
                q,
                eps,
                truth_all,
                truth_alive,
            }
        })
        .collect()
}

#[derive(Default)]
struct CellReport {
    recall_all: f64,
    recall_alive: f64,
    msgs_per_query: f64,
    failed_routes: u64,
    repair_msgs: u64,
    repair_bytes: u64,
    refresh_msgs: u64,
    takeover_rounds: u64,
}

impl CellReport {
    fn json(&self) -> JsonObj {
        JsonObj::new()
            .f("recall_all", self.recall_all, 4)
            .f("recall_alive", self.recall_alive, 4)
            .f("msgs_per_query", self.msgs_per_query, 1)
            .u("failed_routes", self.failed_routes)
            .u("repair_messages", self.repair_msgs)
            .u("repair_bytes", self.repair_bytes)
            .u("refresh_messages", self.refresh_msgs)
            .u("takeover_rounds", self.takeover_rounds)
    }
}

/// Crash `victims`, let one refresh period elapse, then run the paired
/// query workload from peer 0 (never a victim).
fn run_cell(
    base: &HypermNetwork,
    victims: &[usize],
    repair: bool,
    specs: &[QuerySpec],
) -> CellReport {
    let cfg = RepairConfig::default()
        .with_enabled(repair)
        .with_refresh_interval(REFRESH_INTERVAL);
    let mut eng = RepairEngine::new(base.clone(), cfg);
    for &v in victims {
        eng.crash(v);
    }
    eng.advance_to(REFRESH_INTERVAL);
    let mut out = CellReport {
        repair_msgs: eng.stats().repair.messages,
        repair_bytes: eng.stats().repair.bytes,
        refresh_msgs: eng.stats().refresh.messages,
        takeover_rounds: eng.stats().max_takeover_rounds,
        ..CellReport::default()
    };
    let net = eng.network();
    let mut msgs = 0u64;
    for s in specs {
        let res = net.range_query(0, &s.q, s.eps, None);
        msgs += res.stats.messages;
        out.failed_routes += res.stats.failed_routes;
        out.recall_all += res.items.len() as f64 / s.truth_all.max(1) as f64;
        out.recall_alive += res.items.len() as f64 / s.truth_alive.max(1) as f64;
    }
    out.recall_all /= specs.len() as f64;
    out.recall_alive /= specs.len() as f64;
    out.msgs_per_query = msgs as f64 / specs.len() as f64;
    if repair {
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
        }
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Churn resilience with overlay repair ({} nodes, scale {scale:?})",
        w.nodes
    );
    let peers = w.build_peers(111);
    let dim = peers[0].dim();
    let cfg = HypermConfig::new(dim)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(113)
        .with_parallel_query(false);
    let (base, _) = HypermNetwork::build(peers, cfg.clone()).unwrap();

    // --- Sweep: fail fraction × repair on/off (paired victims/queries). ---
    let mut rows = Vec::new();
    let mut sweep_json = Vec::new();
    for fail_frac in [0.0f64, 0.1, 0.2, 0.3] {
        let mut rng = StdRng::seed_from_u64(117);
        let mut ids: Vec<usize> = (1..base.len()).collect();
        ids.shuffle(&mut rng);
        let n_fail = (fail_frac * base.len() as f64).round() as usize;
        let victims = &ids[..n_fail];

        // Truth over the post-crash alive set (same for both cells).
        let mut dead_net = base.clone();
        for &v in victims {
            dead_net.fail_peer(v);
        }
        let specs = draw_queries(&dead_net, 119);

        let on = run_cell(&base, victims, true, &specs);
        let off = run_cell(&base, victims, false, &specs);
        for (label, cell) in [("repair", &on), ("none", &off)] {
            rows.push(vec![
                format!("{:.0}%", fail_frac * 100.0),
                label.to_string(),
                f3(cell.recall_all),
                f3(cell.recall_alive),
                f1(cell.msgs_per_query),
                cell.failed_routes.to_string(),
                cell.repair_msgs.to_string(),
                cell.takeover_rounds.to_string(),
            ]);
        }
        sweep_json.push(
            JsonObj::new()
                .f("fail_frac", fail_frac, 2)
                .u("failed", n_fail as u64)
                .obj("repair", on.json())
                .obj("no_repair", off.json())
                .render(),
        );
    }
    print_table(
        "range recall under crash-stop churn (25 queries, paired)",
        &[
            "failed",
            "mode",
            "recall all",
            "recall alive",
            "msgs/query",
            "failed routes",
            "repair msgs",
            "takeover rounds",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: recall-vs-all tracks the surviving fraction in both\n\
         modes (dead items are gone); recall-vs-alive stays 1.000 with repair on\n\
         and degrades without it, where queries report explicit failed routes."
    );

    // --- Lossy links: fault injection with bounded retry, repair on. ---
    let drop_prob = 0.15;
    let fault_cfg = RepairConfig::default()
        .with_refresh_interval(REFRESH_INTERVAL)
        .with_fault_plan(
            FaultConfig::lossy(drop_prob)
                .with_seed(131)
                .with_dead_prob(0.02),
        );
    let mut eng = RepairEngine::new(base.clone(), fault_cfg);
    let mut rng = StdRng::seed_from_u64(117);
    let mut ids: Vec<usize> = (1..base.len()).collect();
    ids.shuffle(&mut rng);
    let victims = &ids[..(0.2 * base.len() as f64).round() as usize];
    for &v in victims {
        eng.crash(v);
    }
    eng.advance_to(REFRESH_INTERVAL);
    let specs = draw_queries(eng.network(), 119);
    let (mut rec, mut retries, mut failed) = (0.0f64, 0u64, 0u64);
    for s in &specs {
        let res = eng.network().range_query(0, &s.q, s.eps, None);
        rec += res.items.len() as f64 / s.truth_alive.max(1) as f64;
        retries += res.stats.retries;
        failed += res.stats.failed_routes;
    }
    rec /= specs.len() as f64;
    let report = eng.network().fault_report().unwrap_or_default();
    println!(
        "\nlossy links (drop {drop_prob}, dead 0.02, 20% crashed, repair on): \
         recall alive {}, {} retries, {} failed routes, injector: {} attempts / {} drops / {} dead hops",
        f3(rec),
        retries,
        failed,
        report.attempts,
        report.drops,
        report.dead_hops
    );
    let faults_json = JsonObj::new()
        .g("drop_prob", drop_prob)
        .g("dead_prob", 0.02)
        .g("fail_frac", 0.2)
        .f("recall_alive", rec, 4)
        .u("retries", retries)
        .u("failed_routes", failed)
        .u("attempts", report.attempts)
        .u("drops", report.drops)
        .u("dead_hops", report.dead_hops);

    // --- Poisson schedule: crashes, departures and arrivals over time. ---
    let horizon = 400u64;
    let mut eng = RepairEngine::new(
        base.clone(),
        RepairConfig::default().with_refresh_interval(REFRESH_INTERVAL),
    );
    let sched = ChurnSchedule::poisson(horizon, 0.01, 0.005, 0.005, 137).with_protect(vec![0]);
    let mut arrival_rng = StdRng::seed_from_u64(139);
    let srep = eng.run_schedule(&sched, |_| {
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0; dim];
        for _ in 0..20 {
            for x in row.iter_mut() {
                *x = arrival_rng.gen::<f64>();
            }
            ds.push_row(&row);
        }
        Some(ds)
    });
    for l in 0..eng.network().levels() {
        eng.network().overlay(l).check_invariants();
    }
    let specs = draw_queries(eng.network(), 119);
    let mut rec = 0.0f64;
    for s in &specs {
        let res = eng.network().range_query(0, &s.q, s.eps, None);
        rec += res.items.len() as f64 / s.truth_alive.max(1) as f64;
    }
    rec /= specs.len() as f64;
    println!(
        "\npoisson schedule over {horizon} ticks: {} crashes, {} departures, {} arrivals, \
         {} skipped; {} alive of {}; recall alive {}, max takeover {} rounds, {} maintenance msgs",
        srep.crashes,
        srep.departures,
        srep.arrivals,
        srep.skipped,
        eng.network().alive_count(),
        eng.network().len(),
        f3(rec),
        eng.stats().max_takeover_rounds,
        eng.stats().total_messages()
    );
    let poisson_json = JsonObj::new()
        .u("horizon", horizon)
        .u("crashes", srep.crashes)
        .u("departures", srep.departures)
        .u("arrivals", srep.arrivals)
        .u("skipped", srep.skipped)
        .u("alive", eng.network().alive_count() as u64)
        .u("peers", eng.network().len() as u64)
        .f("recall_alive", rec, 4)
        .u("max_takeover_rounds", eng.stats().max_takeover_rounds)
        .u("maintenance_messages", eng.stats().total_messages());

    let json = JsonObj::new()
        .obj(
            "workload",
            JsonObj::new()
                .u("nodes", base.len() as u64)
                .u("dim", dim as u64)
                .u("levels", 4)
                .u("queries", QUERIES as u64)
                .u("refresh_interval", REFRESH_INTERVAL),
        )
        .arr("sweep", &sweep_json)
        .obj("lossy_links", faults_json)
        .obj("poisson", poisson_json)
        .render_pretty();
    std::fs::write("BENCH_churn.json", &json).expect("write BENCH_churn.json");
    println!("wrote BENCH_churn.json");

    // --- Data-plane fault tolerance: lossy publish × partition sweep. ---
    //
    // Reliable publish (ack/retransmit + exponential backoff, residual
    // per-hop loss drop^9) and failure-aware budgeted fetches, crossed
    // with a half/half partition injected at t=20 and healed at t=120.
    // Mid-window the far component is dark so alive-peer recall dips; the
    // heal round's reconciliation plus bounded deferred-retry rounds must
    // bring it back to exactly 1.0. Every bound is asserted, so a plain
    // run doubles as the CI chaos smoke. Emits `BENCH_faults.json`.
    let specs = draw_queries(&base, 149);
    let n = base.len();
    let budget = QueryBudget::default();
    let measure = |net: &HypermNetwork| -> (f64, f64, f64) {
        let (mut rec, mut msgs, mut hops) = (0.0f64, 0u64, 0u64);
        for s in &specs {
            let res = net.range_query_budgeted(0, &s.q, s.eps, None, budget);
            rec += res.items.len() as f64 / s.truth_alive.max(1) as f64;
            msgs += res.stats.messages;
            hops += res.stats.hops;
        }
        let q = specs.len() as f64;
        (rec / q, msgs as f64 / q, hops as f64 / q)
    };
    let mut fault_rows = Vec::new();
    let mut fault_cells = Vec::new();
    for &drop in &[0.0f64, 0.1, 0.3] {
        for &split in &[false, true] {
            let mut cfg = RepairConfig::default().with_refresh_interval(REFRESH_INTERVAL);
            if drop > 0.0 {
                cfg = cfg.with_fault_plan(
                    FaultConfig::lossy(drop)
                        .with_seed(151 + (drop * 10.0) as u64)
                        .with_max_retries(8)
                        .with_backoff(Backoff::exponential(1, 8).with_jitter(1, 157)),
                );
            }
            if split {
                cfg = cfg.with_partition_plan(PartitionPlan::halves(n, 20, 120));
            }
            let mut eng = RepairEngine::new(base.clone(), cfg);
            eng.advance_to(70); // mid-window: one lossy refresh behind us
            let (rec_mid, msgs_mid, _) = measure(eng.network());
            eng.advance_to(150); // past the heal and one more refresh
            let mut drain_rounds = 0u64;
            while !eng.deferred_publishes().is_empty() && drain_rounds < 10 {
                eng.retry_deferred();
                drain_rounds += 1;
            }
            assert!(
                eng.deferred_publishes().is_empty(),
                "deferred publishes must drain within bounded retry rounds \
                 (drop {drop}, partition {split})"
            );
            let (rec_fin, msgs_fin, hops_fin) = measure(eng.network());
            assert!(
                rec_fin >= 0.999,
                "alive-peer recall must return to 1.0 after heal + drain \
                 (drop {drop}, partition {split}, got {rec_fin})"
            );
            if split {
                assert!(
                    rec_mid < 0.999,
                    "a live partition must dent mid-window recall (drop {drop}, got {rec_mid})"
                );
            }
            let report = eng.network().fault_report().unwrap_or_default();
            if drop > 0.0 {
                assert!(report.drops > 0, "the injector must have been exercised");
            }
            let st = eng.stats();
            fault_rows.push(vec![
                format!("{:.0}%", drop * 100.0),
                if split { "halves" } else { "none" }.to_string(),
                f3(rec_mid),
                f3(rec_fin),
                f1(msgs_mid),
                f1(msgs_fin),
                f1(hops_fin),
                st.publishes_deferred.to_string(),
                drain_rounds.to_string(),
            ]);
            fault_cells.push(
                JsonObj::new()
                    .g("drop_prob", drop)
                    .b("partition", split)
                    .f("recall_mid", rec_mid, 4)
                    .f("recall_final", rec_fin, 4)
                    .f("msgs_per_query_mid", msgs_mid, 1)
                    .f("msgs_per_query_final", msgs_fin, 1)
                    .f("hops_per_query_final", hops_fin, 1)
                    .u("publishes_deferred", st.publishes_deferred)
                    .u("publishes_recovered", st.publishes_recovered)
                    .u("publishes_abandoned", st.publishes_abandoned)
                    .u("drain_rounds", drain_rounds)
                    .u("injector_attempts", report.attempts)
                    .u("injector_drops", report.drops)
                    .u("injector_exhausted", report.exhausted)
                    .render(),
            );
        }
    }
    print_table(
        "data-plane fault tolerance: drop × partition (budgeted queries, paired)",
        &[
            "drop",
            "partition",
            "recall mid",
            "recall final",
            "msgs/q mid",
            "msgs/q final",
            "hops/q final",
            "deferred",
            "drain rounds",
        ],
        &fault_rows,
    );
    println!(
        "\nExpected shape: mid-window recall dips only in partition cells (the far\n\
         half is dark); after the heal round and bounded deferred retries every\n\
         cell is back to alive-peer recall 1.000 — asserted above."
    );
    let faults = JsonObj::new()
        .obj(
            "workload",
            JsonObj::new()
                .u("nodes", n as u64)
                .u("dim", dim as u64)
                .u("queries", QUERIES as u64)
                .u("refresh_interval", REFRESH_INTERVAL)
                .u("partition_start", 20)
                .u("partition_end", 120),
        )
        .arr("cells", &fault_cells)
        .render_pretty();
    std::fs::write("BENCH_faults.json", &faults).expect("write BENCH_faults.json");
    println!("wrote BENCH_faults.json");
}
