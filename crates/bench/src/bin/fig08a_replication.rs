//! Figure 8a: cluster replication overhead.
//!
//! "Figure 8a shows the average number of hops for different cluster sizes.
//! As expected, if the clustering is finer, the number of hops approaches
//! the no-replication standard" — finer clusters (more clusters per peer)
//! have smaller radii, overlap fewer CAN zones, and replicate less.
//!
//! Series printed: average hops per *cluster insertion* with replication,
//! without replication, and the replication factor (replicas per cluster).

use hyperm_bench::{f1, f3, print_table, DisseminationWorkload, Scale};
use hyperm_core::{HypermConfig, HypermNetwork};

fn main() {
    let scale = Scale::from_env();
    let w = DisseminationWorkload::at(scale);
    println!(
        "Figure 8a — replication overhead ({} nodes x {} items, {}-d, scale {scale:?})",
        w.nodes, w.items_per_node, w.dim
    );
    let peers = w.build_peers(7);

    let cluster_counts = [5usize, 10, 20, 50, 100];
    let mut rows = Vec::new();
    for &k in &cluster_counts {
        let base = HypermConfig::new(w.dim)
            .with_levels(4)
            .with_clusters_per_peer(k)
            .with_seed(3);
        let (_, with_rep) =
            HypermNetwork::build(peers.clone(), base.clone().with_replication(true)).unwrap();
        let (_, no_rep) =
            HypermNetwork::build(peers.clone(), base.with_replication(false)).unwrap();
        rows.push(vec![
            k.to_string(),
            f3(with_rep.insertion.hops as f64 / with_rep.clusters_published as f64),
            f3(no_rep.insertion.hops as f64 / no_rep.clusters_published as f64),
            f3(with_rep.replicas as f64 / with_rep.clusters_published as f64),
            f1(with_rep.insertion.hops as f64),
            f1(no_rep.insertion.hops as f64),
        ]);
    }
    print_table(
        "avg hops per cluster insertion vs clusters per peer",
        &[
            "clusters/peer",
            "hops/cluster (replication)",
            "hops/cluster (no replication)",
            "replicas/cluster",
            "total hops (rep)",
            "total hops (no rep)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): with finer clustering (more clusters/peer), the\n\
         replication column approaches the no-replication standard."
    );
}
