//! Query forensics: trace one query end-to-end and print its route tree.
//!
//! Builds a small traced network, runs a single query (range by default;
//! pass `knn` or `point` as the first argument or via
//! `HYPERM_TRACE_KIND`), and prints the reconstructed span tree — the
//! per-level `overlay_lookup` spans with their route hops, floods and
//! fetches — plus a per-phase cost breakdown folded over the event
//! stream. Artifacts:
//!
//! * `TRACE_query.jsonl` — every event of the traced query, one JSON
//!   object per line (build-phase events included, before the marker
//!   printed on stdout);
//! * `TRACE_metrics.json` — the metrics registry snapshot, keyed by
//!   `(op kind, wavelet level)`.
//!
//! The bin self-asserts (non-empty stream, per-level lookup spans,
//! populated metrics cells), so CI can use a plain run as a telemetry
//! smoke test.
//!
//! `trace_query cluster` replays a query against a **live loopback
//! cluster** instead: a head and a member node served over real TCP
//! frames, each tracing to its own JSONL stream
//! (`TRACE_node_head.jsonl` / `TRACE_node_member.jsonl`). A client
//! queries *via the member* with a wire-level trace context; afterwards
//! the per-node streams are parsed back and stitched with
//! [`merge_streams`] into ONE cross-process route tree (member serve →
//! head serve → overlay query), printed and self-asserted.

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, KnnOptions, QueryBudget};
use hyperm_telemetry::{
    merge_streams, names, parse_jsonl, Event, EventClass, JsonlSink, OpKind, Recorder, RingHandle,
    TeeSink, Trace, TraceCtx,
};
use hyperm_transport::{Client, NodeRuntime, Role, TcpEndpoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const PEERS: usize = 24;
const ITEMS: usize = 30;
const DIM: usize = 16;
const LEVELS: usize = 4;

fn build_peers(seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PEERS)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(DIM);
            let mut row = vec![0.0; DIM];
            for _ in 0..ITEMS {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

fn main() {
    let kind = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("HYPERM_TRACE_KIND").ok())
        .unwrap_or_else(|| "range".to_string());
    assert!(
        matches!(kind.as_str(), "range" | "knn" | "point" | "cluster"),
        "usage: trace_query [range|knn|point|cluster]"
    );
    if kind == "cluster" {
        cluster_replay();
        return;
    }

    // Ring buffer for offline reconstruction + JSONL file for the raw
    // stream; the recorder tees into both.
    let ring = RingHandle::new(1 << 16);
    let jsonl = JsonlSink::create("TRACE_query.jsonl").expect("create TRACE_query.jsonl");
    let rec = Recorder::with_sink(Box::new(TeeSink::new(ring.sink(), Box::new(jsonl))));

    let peers = build_peers(41);
    let cfg = HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(43)
        .with_parallel_query(false); // serial => deterministic event order
    let (mut net, report) = HypermNetwork::build_traced(peers.clone(), cfg, rec.clone()).unwrap();
    let build_events = ring.drain();
    println!(
        "built: {PEERS} peers x {ITEMS} items, {DIM}-d, {LEVELS} levels — {} clusters published, {} replicas, {} build events",
        report.clusters_published,
        report.replicas,
        build_events.len()
    );
    assert!(
        !build_events.is_empty(),
        "publication must emit trace events"
    );

    // Query point: a stored row, so every query kind has hits.
    let mut rng = StdRng::seed_from_u64(47);
    let p = rng.gen_range(0..peers.len());
    let q = peers[p].row(rng.gen_range(0..peers[p].len())).to_vec();

    let (expect_kind, victim) = match kind.as_str() {
        "range" => {
            let res = net.range_query(0, &q, 0.25, None);
            println!(
                "range query: {} items from {} peers ({} hops, {} messages)",
                res.items.len(),
                res.peers_contacted,
                res.stats.hops,
                res.stats.messages
            );
            let victim = res.ranked.first().map(|s| s.peer);
            (OpKind::RangeQuery, victim)
        }
        "knn" => {
            let res = net.knn_query(0, &q, 5, KnnOptions::default());
            println!(
                "knn query: {} of k=5 items ({} hops, {} messages)",
                res.topk.len(),
                res.stats.hops,
                res.stats.messages
            );
            let victim = res.ranked.first().map(|s| s.peer);
            (OpKind::KnnQuery, victim)
        }
        _ => {
            let res = net.point_query(0, &q);
            println!(
                "point query: {} items ({} hops, {} messages)",
                res.matches.len(),
                res.stats.hops,
                res.stats.messages
            );
            let victim = res.candidates.first().copied();
            (OpKind::PointQuery, victim)
        }
    };
    rec.flush();

    let events = ring.drain();
    assert!(!events.is_empty(), "query must emit trace events");
    let trace = Trace::from_events(&events);
    assert_eq!(
        trace.spans_named(names::OVERLAY_LOOKUP).len(),
        LEVELS,
        "one overlay_lookup span per wavelet level"
    );

    println!("\n== route tree ({} events) ==", events.len());
    print!("{}", trace.render());

    println!("== per-phase cost breakdown ==");
    for phase in trace.phase_totals() {
        let fields: Vec<String> = phase
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "{:>16} x{:<5} {}",
            phase.name,
            phase.count,
            fields.join("  ")
        );
    }

    let snapshot = rec.metrics().expect("recorder enabled").snapshot();
    assert!(
        snapshot.cell(expect_kind, None).is_some(),
        "whole-op metrics cell must exist"
    );
    for l in 0..LEVELS {
        assert!(
            snapshot.cell(expect_kind, Some(l)).is_some(),
            "per-level metrics cell for level {l} must exist"
        );
        assert!(
            snapshot.cell(OpKind::Publish, Some(l)).is_some(),
            "publish metrics cell for level {l} must exist"
        );
    }
    std::fs::write("TRACE_metrics.json", snapshot.to_json()).expect("write TRACE_metrics.json");
    println!(
        "\nwrote TRACE_query.jsonl ({} query events) and TRACE_metrics.json ({} cells)",
        events.len(),
        snapshot.cells.len()
    );

    // Degraded replay: crash the top-scored answering peer and rerun the
    // same query with a failure-tolerance budget. The route tree now
    // carries the data-plane fault events — `fetch_timeout` on the dead
    // peer and (range/knn) `fetch_fallback` where the contact window slid
    // to the next-scored candidate.
    let victim = victim.expect("query found no answering peers");
    net.fail_peer(victim);
    let from = usize::from(victim == 0); // querier must stay alive
    let budget = QueryBudget::default();
    match expect_kind {
        OpKind::RangeQuery => {
            let res = net.range_query_budgeted(from, &q, 0.25, Some(4), budget);
            println!(
                "\ndegraded range query (peer {victim} crashed): {} items from {} peers, truncated={}",
                res.items.len(),
                res.peers_contacted,
                res.truncated
            );
        }
        OpKind::KnnQuery => {
            // A peer budget below the candidate count leaves next-scored
            // peers for the fallback window to slide onto.
            let opts = KnnOptions {
                peer_budget: Some(1),
                ..KnnOptions::default()
            };
            let res = net.knn_query_budgeted(from, &q, 5, opts, budget);
            println!(
                "\ndegraded knn query (peer {victim} crashed): {} of k=5 items, truncated={}",
                res.topk.len(),
                res.truncated
            );
        }
        _ => {
            let res = net.point_query_budgeted(from, &q, budget);
            println!(
                "\ndegraded point query (peer {victim} crashed): {} items, truncated={}",
                res.matches.len(),
                res.truncated
            );
        }
    }
    rec.flush();
    let degraded = ring.drain();
    let dtrace = Trace::from_events(&degraded);
    println!("== degraded route tree ({} events) ==", degraded.len());
    print!("{}", dtrace.render());
    assert!(
        dtrace.event_count(names::FETCH_TIMEOUT) >= 1,
        "crashed peer must surface as a fetch_timeout in the route tree"
    );
    if matches!(expect_kind, OpKind::RangeQuery | OpKind::KnnQuery) {
        assert!(
            dtrace.event_count(names::FETCH_FALLBACK) >= 1,
            "the contact window must slide past the crashed peer"
        );
    }
    let m = rec.metrics().expect("recorder enabled");
    assert!(
        m.counter(names::FETCH_TIMEOUT) >= 1,
        "fetch_timeout must be counted in the metrics registry"
    );
}

/// Replay a traced query against a live loopback cluster: head + member
/// over real TCP frames, one JSONL stream per node, stitched offline
/// into a single cross-process route tree.
fn cluster_replay() {
    const HEAD: u64 = 0;
    const MEMBER: u64 = 1;
    const TRACE_ID: u64 = 0x00C0_FFEE;

    let peers = build_peers(41);
    let cfg = HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(43)
        .with_parallel_query(false);
    let (head_rec, head_ring) = Recorder::ring(1 << 16);
    let (net, report) = HypermNetwork::build_traced(peers.clone(), cfg, head_rec.clone()).unwrap();
    println!(
        "built: {PEERS} peers x {ITEMS} items, {DIM}-d, {LEVELS} levels — {} clusters published",
        report.clusters_published
    );

    let head_ep = TcpEndpoint::bind(HEAD, "127.0.0.1:0").expect("bind head");
    let head_addr = head_ep.local_addr();
    let mut head_rt =
        NodeRuntime::new(head_ep, Role::Head(Box::new(net))).with_recorder(head_rec.clone());
    let head_thread = std::thread::spawn(move || head_rt.serve_until_shutdown());

    let member_ep = TcpEndpoint::bind(MEMBER, "127.0.0.1:0").expect("bind member");
    member_ep
        .connect(HEAD, head_addr)
        .expect("member reaches head");
    let member_addr = member_ep.local_addr();
    let (member_rec, member_ring) = Recorder::ring(1 << 16);
    let mut member_rt = NodeRuntime::new(
        member_ep,
        Role::Member {
            head: HEAD,
            peer: None,
        },
    )
    .with_recorder(member_rec.clone());
    let member_data = build_peers(91).swap_remove(0);
    let joined = member_rt
        .join_network(&member_data, Duration::from_secs(30))
        .expect("member joins the overlay");
    println!("member joined as overlay peer {joined}");
    let member_thread = std::thread::spawn(move || member_rt.serve_until_shutdown());

    // Build + join noise stays out of the stitched artifact: the streams
    // under study start at the traced query.
    let _ = head_ring.drain();
    let _ = member_ring.drain();

    // The traced query, relayed: client -> member -> head.
    let client_ep = TcpEndpoint::bind(99, "127.0.0.1:0").expect("bind client");
    client_ep
        .connect(MEMBER, member_addr)
        .expect("client reaches member");
    let client = Client::new(client_ep, MEMBER).with_trace(TraceCtx {
        trace_id: TRACE_ID,
        parent_span: 0,
    });
    let q = peers[3].row(0).to_vec();
    let (items, (hops, messages, bytes)) = client.query(&q, 0.25, None).expect("relayed query");
    println!(
        "relayed range query: {} items ({hops} hops, {messages} messages, {bytes} bytes)",
        items.len()
    );
    assert!(!items.is_empty(), "stored row must match its own query");

    // Serve spans end just after the reply frame leaves, so the streams
    // may trail the client's return by a beat.
    let head_events = wait_for_serve_end(&head_ring);
    let member_events = wait_for_serve_end(&member_ring);

    client.shutdown().expect("member shutdown");
    let head_stop_ep = TcpEndpoint::bind(98, "127.0.0.1:0").expect("bind shutdown client");
    head_stop_ep.connect(HEAD, head_addr).expect("reach head");
    Client::new(head_stop_ep, HEAD)
        .shutdown()
        .expect("head shutdown");
    head_thread
        .join()
        .expect("head thread")
        .expect("head serve loop");
    member_thread
        .join()
        .expect("member thread")
        .expect("member serve loop");

    // Round-trip each node's stream through its JSONL artifact, exactly
    // as an operator scraping `hyperm-node --trace` files would.
    let streams = [
        ("TRACE_node_head.jsonl", HEAD, &head_events),
        ("TRACE_node_member.jsonl", MEMBER, &member_events),
    ];
    let mut parsed: Vec<(u64, Vec<Event>)> = Vec::new();
    for (path, node, events) in streams {
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json_line()))
            .collect();
        std::fs::write(path, &text).expect("write per-node trace artifact");
        parsed.push((node, parse_jsonl(&text).expect("parse per-node JSONL")));
    }
    // Member stream first: the stitch is order-independent, and leading
    // with the relay proves it.
    parsed.reverse();
    let stitched = merge_streams(&parsed);

    println!("\n== stitched cross-process route tree ==");
    print!("{}", stitched.render());

    assert_eq!(
        stitched.roots.len(),
        1,
        "the relayed query must stitch into ONE route tree"
    );
    let root = &stitched.spans[stitched.roots[0]];
    assert_eq!(root.name, names::SERVE, "root is the member's serve span");
    assert_eq!(root.start.u64_field("node"), Some(MEMBER));
    assert_eq!(root.start.u64_field("ctx_trace"), Some(TRACE_ID));
    let head_serve = root
        .children
        .iter()
        .map(|&c| &stitched.spans[c])
        .find(|s| s.name == names::SERVE)
        .expect("head serve span nested under the member's");
    assert_eq!(head_serve.start.u64_field("node"), Some(HEAD));
    assert_eq!(head_serve.start.u64_field("ctx_trace"), Some(TRACE_ID));
    assert!(
        head_serve
            .children
            .iter()
            .any(|&c| stitched.spans[c].name == names::QUERY),
        "overlay query span parents under the head's serve span"
    );
    println!(
        "\nwrote TRACE_node_head.jsonl ({} events) and TRACE_node_member.jsonl ({} events); \
         stitched {} spans under one root",
        head_events.len(),
        member_events.len(),
        stitched.spans.len()
    );
}

/// Poll `ring` until a completed `serve` span shows up (the reply frame
/// races the recorder by a few microseconds).
fn wait_for_serve_end(ring: &RingHandle) -> Vec<Event> {
    for _ in 0..400 {
        let events = ring.events();
        if events
            .iter()
            .any(|e| e.class == EventClass::End && e.name == names::SERVE)
        {
            return events;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("serve span never completed on a node ring");
}
