//! Query forensics: trace one query end-to-end and print its route tree.
//!
//! Builds a small traced network, runs a single query (range by default;
//! pass `knn` or `point` as the first argument or via
//! `HYPERM_TRACE_KIND`), and prints the reconstructed span tree — the
//! per-level `overlay_lookup` spans with their route hops, floods and
//! fetches — plus a per-phase cost breakdown folded over the event
//! stream. Artifacts:
//!
//! * `TRACE_query.jsonl` — every event of the traced query, one JSON
//!   object per line (build-phase events included, before the marker
//!   printed on stdout);
//! * `TRACE_metrics.json` — the metrics registry snapshot, keyed by
//!   `(op kind, wavelet level)`.
//!
//! The bin self-asserts (non-empty stream, per-level lookup spans,
//! populated metrics cells), so CI can use a plain run as a telemetry
//! smoke test.

use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, KnnOptions, QueryBudget};
use hyperm_telemetry::{names, JsonlSink, OpKind, Recorder, RingHandle, TeeSink, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PEERS: usize = 24;
const ITEMS: usize = 30;
const DIM: usize = 16;
const LEVELS: usize = 4;

fn build_peers(seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PEERS)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(DIM);
            let mut row = vec![0.0; DIM];
            for _ in 0..ITEMS {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

fn main() {
    let kind = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("HYPERM_TRACE_KIND").ok())
        .unwrap_or_else(|| "range".to_string());
    assert!(
        matches!(kind.as_str(), "range" | "knn" | "point"),
        "usage: trace_query [range|knn|point]"
    );

    // Ring buffer for offline reconstruction + JSONL file for the raw
    // stream; the recorder tees into both.
    let ring = RingHandle::new(1 << 16);
    let jsonl = JsonlSink::create("TRACE_query.jsonl").expect("create TRACE_query.jsonl");
    let rec = Recorder::with_sink(Box::new(TeeSink::new(ring.sink(), Box::new(jsonl))));

    let peers = build_peers(41);
    let cfg = HypermConfig::new(DIM)
        .with_levels(LEVELS)
        .with_clusters_per_peer(4)
        .with_seed(43)
        .with_parallel_query(false); // serial => deterministic event order
    let (mut net, report) = HypermNetwork::build_traced(peers.clone(), cfg, rec.clone()).unwrap();
    let build_events = ring.drain();
    println!(
        "built: {PEERS} peers x {ITEMS} items, {DIM}-d, {LEVELS} levels — {} clusters published, {} replicas, {} build events",
        report.clusters_published,
        report.replicas,
        build_events.len()
    );
    assert!(
        !build_events.is_empty(),
        "publication must emit trace events"
    );

    // Query point: a stored row, so every query kind has hits.
    let mut rng = StdRng::seed_from_u64(47);
    let p = rng.gen_range(0..peers.len());
    let q = peers[p].row(rng.gen_range(0..peers[p].len())).to_vec();

    let (expect_kind, victim) = match kind.as_str() {
        "range" => {
            let res = net.range_query(0, &q, 0.25, None);
            println!(
                "range query: {} items from {} peers ({} hops, {} messages)",
                res.items.len(),
                res.peers_contacted,
                res.stats.hops,
                res.stats.messages
            );
            let victim = res.ranked.first().map(|s| s.peer);
            (OpKind::RangeQuery, victim)
        }
        "knn" => {
            let res = net.knn_query(0, &q, 5, KnnOptions::default());
            println!(
                "knn query: {} of k=5 items ({} hops, {} messages)",
                res.topk.len(),
                res.stats.hops,
                res.stats.messages
            );
            let victim = res.ranked.first().map(|s| s.peer);
            (OpKind::KnnQuery, victim)
        }
        _ => {
            let res = net.point_query(0, &q);
            println!(
                "point query: {} items ({} hops, {} messages)",
                res.matches.len(),
                res.stats.hops,
                res.stats.messages
            );
            let victim = res.candidates.first().copied();
            (OpKind::PointQuery, victim)
        }
    };
    rec.flush();

    let events = ring.drain();
    assert!(!events.is_empty(), "query must emit trace events");
    let trace = Trace::from_events(&events);
    assert_eq!(
        trace.spans_named(names::OVERLAY_LOOKUP).len(),
        LEVELS,
        "one overlay_lookup span per wavelet level"
    );

    println!("\n== route tree ({} events) ==", events.len());
    print!("{}", trace.render());

    println!("== per-phase cost breakdown ==");
    for phase in trace.phase_totals() {
        let fields: Vec<String> = phase
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        println!(
            "{:>16} x{:<5} {}",
            phase.name,
            phase.count,
            fields.join("  ")
        );
    }

    let snapshot = rec.metrics().expect("recorder enabled").snapshot();
    assert!(
        snapshot.cell(expect_kind, None).is_some(),
        "whole-op metrics cell must exist"
    );
    for l in 0..LEVELS {
        assert!(
            snapshot.cell(expect_kind, Some(l)).is_some(),
            "per-level metrics cell for level {l} must exist"
        );
        assert!(
            snapshot.cell(OpKind::Publish, Some(l)).is_some(),
            "publish metrics cell for level {l} must exist"
        );
    }
    std::fs::write("TRACE_metrics.json", snapshot.to_json()).expect("write TRACE_metrics.json");
    println!(
        "\nwrote TRACE_query.jsonl ({} query events) and TRACE_metrics.json ({} cells)",
        events.len(),
        snapshot.cells.len()
    );

    // Degraded replay: crash the top-scored answering peer and rerun the
    // same query with a failure-tolerance budget. The route tree now
    // carries the data-plane fault events — `fetch_timeout` on the dead
    // peer and (range/knn) `fetch_fallback` where the contact window slid
    // to the next-scored candidate.
    let victim = victim.expect("query found no answering peers");
    net.fail_peer(victim);
    let from = usize::from(victim == 0); // querier must stay alive
    let budget = QueryBudget::default();
    match expect_kind {
        OpKind::RangeQuery => {
            let res = net.range_query_budgeted(from, &q, 0.25, Some(4), budget);
            println!(
                "\ndegraded range query (peer {victim} crashed): {} items from {} peers, truncated={}",
                res.items.len(),
                res.peers_contacted,
                res.truncated
            );
        }
        OpKind::KnnQuery => {
            // A peer budget below the candidate count leaves next-scored
            // peers for the fallback window to slide onto.
            let opts = KnnOptions {
                peer_budget: Some(1),
                ..KnnOptions::default()
            };
            let res = net.knn_query_budgeted(from, &q, 5, opts, budget);
            println!(
                "\ndegraded knn query (peer {victim} crashed): {} of k=5 items, truncated={}",
                res.topk.len(),
                res.truncated
            );
        }
        _ => {
            let res = net.point_query_budgeted(from, &q, budget);
            println!(
                "\ndegraded point query (peer {victim} crashed): {} items, truncated={}",
                res.matches.len(),
                res.truncated
            );
        }
    }
    rec.flush();
    let degraded = ring.drain();
    let dtrace = Trace::from_events(&degraded);
    println!("== degraded route tree ({} events) ==", degraded.len());
    print!("{}", dtrace.render());
    assert!(
        dtrace.event_count(names::FETCH_TIMEOUT) >= 1,
        "crashed peer must surface as a fetch_timeout in the route tree"
    );
    if matches!(expect_kind, OpKind::RangeQuery | OpKind::KnnQuery) {
        assert!(
            dtrace.event_count(names::FETCH_FALLBACK) >= 1,
            "the contact window must slide past the crashed peer"
        );
    }
    let m = rec.metrics().expect("recorder enabled");
    assert!(
        m.counter(names::FETCH_TIMEOUT) >= 1,
        "fetch_timeout must be counted in the metrics registry"
    );
}
