//! Figure 11: clustering performance in different vector spaces.
//!
//! "Figure 11 shows that the clusters created in the first three wavelet
//! vector spaces are tighter and better separated than clusters created by
//! the same algorithm in the original data space … as the level of detail
//! increases, clustering stops performing as well." The y-axis is the
//! cohesion/separation ratio (lower = better clusters).

use hyperm_bench::{f3, print_table, RetrievalWorkload, Scale};
use hyperm_cluster::kmeans::kmeans;
use hyperm_cluster::{quality_ratio, Dataset, KMeansConfig};
use hyperm_wavelet::{decompose, Normalization, Subspace};

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Figure 11 — clustering quality per vector space ({} classes x {} views, scale {scale:?})",
        w.classes, w.views_per_class
    );
    // One big pooled corpus (the paper clusters per peer; pooled data shows
    // the same per-space effect with less noise). Also compute per-peer
    // averages for fidelity.
    let peers = w.build_peers(61);
    let k = 10;

    // Decompose every item once.
    let dim = 64usize;
    let all_subspaces = Subspace::all(dim);
    let mut per_space: Vec<Dataset> = all_subspaces
        .iter()
        .map(|s| Dataset::new(s.dim()))
        .collect();
    let mut original = Dataset::new(dim);
    for peer in &peers {
        for row in peer.rows() {
            original.push_row(row);
            let dec = decompose(row, Normalization::PaperAverage).unwrap();
            for (ds, &s) in per_space.iter_mut().zip(&all_subspaces) {
                ds.push_row(dec.subspace(s).unwrap());
            }
        }
    }

    let mut rows = Vec::new();
    let q_orig = quality_ratio(
        &original,
        &kmeans(&original, &KMeansConfig::new(k).with_seed(1)),
    );
    rows.push(vec![
        "original (64-d)".into(),
        f3(q_orig.cohesion),
        f3(q_orig.separation),
        f3(q_orig.ratio),
    ]);
    for (ds, &s) in per_space.iter().zip(&all_subspaces) {
        let q = quality_ratio(ds, &kmeans(ds, &KMeansConfig::new(k).with_seed(1)));
        let label = match s {
            Subspace::Approx => "A (dim 1)".to_string(),
            Subspace::Detail(d) => format!("D_{d} (dim {})", s.dim()),
        };
        rows.push(vec![label, f3(q.cohesion), f3(q.separation), f3(q.ratio)]);
    }
    print_table(
        "cohesion / separation per vector space (lower ratio = better clusters)",
        &["space", "cohesion", "separation", "ratio"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the first few wavelet spaces (A, D_0, D_1) have a\n\
         lower ratio than the original space; deeper detail spaces degrade — which is\n\
         why Hyper-M uses only four levels."
    );
}
