//! Overlay-independence ablation (the paper's Section-5 claim that Hyper-M
//! "could be implemented on top of BATON, VBI-tree, CAN or any peer-to-peer
//! overlay").
//!
//! Builds the same network on both substrates and compares dissemination
//! cost, query cost, and retrieval quality. Answers are expected to be
//! identical (the substrate only changes routing); costs differ by each
//! overlay's routing geometry (CAN: O(d·n^{1/d}); BATON: O(log n)).

use hyperm_bench::{f1, f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork, KnnOptions, OverlayBackend};

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Overlay ablation: CAN vs BATON vs VBI ({} nodes, scale {scale:?})",
        w.nodes
    );
    let peers = w.build_peers(101);

    let mut rows = Vec::new();
    for (name, backend) in [
        ("CAN (paper)", OverlayBackend::Can),
        ("BATON + Z-order", OverlayBackend::Baton),
        ("VBI-tree", OverlayBackend::Vbi),
    ] {
        let cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(10)
            .with_seed(103)
            .with_backend(backend);
        let (net, report) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let harness = EvalHarness::new(&net);
        let queries = harness.sample_queries(&net, 20, 23);

        let mut range_msgs = 0.0;
        let mut range_recall = 0.0;
        let mut knn_recall = 0.0;
        let mut knn_msgs = 0.0;
        for q in &queries {
            let eps = harness.kth_distance(q, 25);
            let (pr, stats) = harness.eval_range(&net, 0, q, eps, None);
            range_recall += pr.recall;
            range_msgs += stats.messages as f64;
            let e = harness.eval_knn(&net, 0, q, 20, KnnOptions::default());
            knn_recall += e.retrieved.recall;
            knn_msgs += e.stats.messages as f64;
        }
        let n = queries.len() as f64;
        rows.push(vec![
            name.into(),
            f3(report.avg_hops_per_item()),
            report.bootstrap.hops.to_string(),
            f3(range_recall / n),
            f1(range_msgs / n),
            f3(knn_recall / n),
            f1(knn_msgs / n),
        ]);
    }
    print_table(
        "substrate comparison (identical answers; costs differ by routing geometry)",
        &[
            "substrate",
            "insert hops/item",
            "bootstrap hops",
            "range recall",
            "range msgs/q",
            "knn recall",
            "knn msgs/q",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: recall identical across substrates (overlay-independence);\n\
         BATON's O(log n) routing typically undercuts CAN's O(d·n^(1/d)) for the\n\
         low-dimensional subspace overlays at this network size."
    );
}
