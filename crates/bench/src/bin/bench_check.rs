//! Bench artifact guard: validate every `BENCH_*.json` emitted by the
//! experiment bins against its schema and the repo's headline bounds.
//!
//! ```text
//! bench_check [DIR]    # default: current directory
//! ```
//!
//! CI runs this after regenerating the artifacts, so a refactor that
//! silently drops a field, breaks a seed, or regresses a headline
//! number (cache speedup, post-heal recall) fails the build instead of
//! shipping a stale-looking artifact. All workloads behind these files
//! are seeded, so the bounds are deterministic, not flaky.
//!
//! Checked per file:
//!
//! * `BENCH_query.json` — throughput sections present with positive
//!   qps, quantiles ordered, `recall >= 0.99`;
//! * `BENCH_churn.json` — non-empty sweep, recalls in range, perfect
//!   recall at `fail_frac = 0`, `recall_alive >= 0.95` in the repair
//!   arm (the no-repair baseline is allowed to decay — that gap *is*
//!   the result);
//! * `BENCH_faults.json` — non-empty cell grid, `recall_final = 1.0`
//!   after the heal round in every cell;
//! * `BENCH_load.json` — `s12_improvement >= 2.0` (the headline
//!   hot-spot-relief win), relief never worse than no relief, per-cell
//!   `recall >= 0.99` and a sane Gini coefficient;
//! * `BENCH_chaos.json` — non-empty live-cluster chaos scenarios, each
//!   recovering `recall_final = 1.0` with no exhausted retry budgets,
//!   and not a single stale (mis-correlated) reply ever returned.
//!
//! Output is one JSON verdict line per file plus a summary; the process
//! exits non-zero if any check failed.

use hyperm_telemetry::{JsonObj, JsonValue};
use std::process::ExitCode;

/// One artifact checker: schema + bounds, violations accumulated.
type Check = fn(&JsonValue, &mut Errors);

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let checks: [(&str, Check); 5] = [
        ("BENCH_query.json", check_query),
        ("BENCH_churn.json", check_churn),
        ("BENCH_faults.json", check_faults),
        ("BENCH_load.json", check_load),
        ("BENCH_chaos.json", check_chaos),
    ];

    let mut failed = 0usize;
    for (file, check) in checks {
        let mut errors = Errors::default();
        let path = format!("{dir}/{file}");
        match std::fs::read_to_string(&path) {
            Ok(text) => match JsonValue::parse(&text) {
                Ok(v) => check(&v, &mut errors),
                Err(e) => errors.push(format!("unparseable JSON: {e:?}")),
            },
            Err(e) => errors.push(format!("unreadable: {e}")),
        }
        let ok = errors.0.is_empty();
        if !ok {
            failed += 1;
        }
        println!(
            "{}",
            JsonObj::new()
                .s("file", file)
                .b("ok", ok)
                .u("checks_failed", errors.0.len() as u64)
                .arr(
                    "errors",
                    &errors
                        .0
                        .iter()
                        .map(|e| format!("\"{}\"", hyperm_telemetry::json::escape(e)))
                        .collect::<Vec<_>>()
                )
                .render()
        );
    }
    println!(
        "{}",
        JsonObj::new()
            .b("ok", failed == 0)
            .s("kind", "bench_check")
            .u("files", checks.len() as u64)
            .u("failed", failed as u64)
            .render()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Accumulated schema/bound violations for one artifact.
#[derive(Default)]
struct Errors(Vec<String>);

impl Errors {
    fn push(&mut self, msg: String) {
        self.0.push(msg);
    }

    fn require(&mut self, cond: bool, what: &str) {
        if !cond {
            self.push(what.to_string());
        }
    }
}

/// Numeric field lookup: `None` when missing or non-numeric.
fn num(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

/// Require `key` to be a numeric field; report and return 0 otherwise.
fn need(v: &JsonValue, key: &str, ctx: &str, errs: &mut Errors) -> f64 {
    match num(v, key) {
        Some(x) => x,
        None => {
            errs.push(format!("{ctx}: missing numeric field {key:?}"));
            0.0
        }
    }
}

fn check_workload(v: &JsonValue, fields: &[&str], errs: &mut Errors) {
    match v.get("workload") {
        Some(w) => {
            for f in fields {
                errs.require(
                    num(w, f).is_some_and(|x| x > 0.0),
                    &format!("workload.{f} must be a positive number"),
                );
            }
        }
        None => errs.push("missing \"workload\" object".into()),
    }
}

fn check_query(v: &JsonValue, errs: &mut Errors) {
    check_workload(
        v,
        &["peers", "items_per_peer", "dim", "levels", "queries"],
        errs,
    );
    for section in ["serial", "parallel_levels"] {
        match v.get(section) {
            Some(s) => {
                let qps = need(s, "qps", section, errs);
                errs.require(qps > 0.0, &format!("{section}.qps must be positive"));
                let p50 = need(s, "p50_ms", section, errs);
                let p99 = need(s, "p99_ms", section, errs);
                errs.require(
                    p50 > 0.0 && p99 >= p50,
                    &format!("{section} latency quantiles must satisfy 0 < p50 <= p99"),
                );
            }
            None => errs.push(format!("missing {section:?} section")),
        }
    }
    errs.require(
        v.get("batch")
            .and_then(|b| num(b, "qps"))
            .is_some_and(|x| x > 0.0),
        "batch.qps must be positive",
    );
    let recall = need(v, "recall", "top level", errs);
    errs.require(recall >= 0.99, "recall must be >= 0.99");
}

fn check_churn(v: &JsonValue, errs: &mut Errors) {
    check_workload(v, &["nodes", "dim", "levels", "queries"], errs);
    let Some(sweep) = v.get("sweep").and_then(JsonValue::as_arr) else {
        errs.push("missing \"sweep\" array".into());
        return;
    };
    errs.require(!sweep.is_empty(), "sweep must not be empty");
    for (i, row) in sweep.iter().enumerate() {
        let ctx = format!("sweep[{i}]");
        let fail_frac = need(row, "fail_frac", &ctx, errs);
        errs.require(
            (0.0..=1.0).contains(&fail_frac),
            &format!("{ctx}: fail_frac out of [0, 1]"),
        );
        for side in ["repair", "no_repair"] {
            let Some(s) = row.get(side) else {
                errs.push(format!("{ctx}: missing {side:?} object"));
                continue;
            };
            let sctx = format!("{ctx}.{side}");
            let recall_all = need(s, "recall_all", &sctx, errs);
            let recall_alive = need(s, "recall_alive", &sctx, errs);
            errs.require(
                (0.0..=1.0).contains(&recall_all) && (0.0..=1.0).contains(&recall_alive),
                &format!("{sctx}: recalls out of [0, 1]"),
            );
            // Only the repair arm promises resilience — the no_repair
            // baseline is *supposed* to decay; that gap is the result.
            if side == "repair" {
                errs.require(
                    recall_alive >= 0.95,
                    &format!("{sctx}: recall_alive must stay >= 0.95 with repair on"),
                );
            }
            if fail_frac == 0.0 {
                errs.require(
                    recall_all >= 1.0,
                    &format!("{sctx}: recall_all must be perfect with no failures"),
                );
            }
        }
    }
}

fn check_faults(v: &JsonValue, errs: &mut Errors) {
    check_workload(v, &["nodes", "dim", "queries"], errs);
    let Some(cells) = v.get("cells").and_then(JsonValue::as_arr) else {
        errs.push("missing \"cells\" array".into());
        return;
    };
    errs.require(!cells.is_empty(), "cells must not be empty");
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        let drop_prob = need(cell, "drop_prob", &ctx, errs);
        errs.require(
            (0.0..=1.0).contains(&drop_prob),
            &format!("{ctx}: drop_prob out of [0, 1]"),
        );
        let recall_mid = need(cell, "recall_mid", &ctx, errs);
        errs.require(
            (0.0..=1.0).contains(&recall_mid),
            &format!("{ctx}: recall_mid out of [0, 1]"),
        );
        // The fault-tolerance headline: the refresh/heal round always
        // restores perfect recall, partitions and drops included.
        let recall_final = need(cell, "recall_final", &ctx, errs);
        errs.require(
            recall_final >= 1.0,
            &format!("{ctx}: recall_final must be 1.0 after the heal round"),
        );
    }
}

fn check_load(v: &JsonValue, errs: &mut Errors) {
    check_workload(v, &["peers", "items_per_peer", "dim", "levels"], errs);
    let no_relief = need(v, "s12_ratio_no_relief", "top level", errs);
    let full_relief = need(v, "s12_ratio_full_relief", "top level", errs);
    errs.require(
        no_relief >= full_relief,
        "relief must not worsen the s=1.2 max/median ratio",
    );
    // The hot-spot-relief headline bound.
    let improvement = need(v, "s12_improvement", "top level", errs);
    errs.require(improvement >= 2.0, "s12_improvement must be >= 2.0");
    let Some(cells) = v.get("cells").and_then(JsonValue::as_arr) else {
        errs.push("missing \"cells\" array".into());
        return;
    };
    errs.require(!cells.is_empty(), "cells must not be empty");
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        let recall = need(cell, "recall", &ctx, errs);
        errs.require(
            recall >= 0.99,
            &format!("{ctx}: relief must not cost recall (>= 0.99)"),
        );
        match cell.get("load") {
            Some(load) => {
                let gini = need(load, "gini", &ctx, errs);
                errs.require(
                    (0.0..=1.0).contains(&gini),
                    &format!("{ctx}: load.gini out of [0, 1]"),
                );
            }
            None => errs.push(format!("{ctx}: missing \"load\" object")),
        }
    }
}

fn check_chaos(v: &JsonValue, errs: &mut Errors) {
    check_workload(v, &["nodes", "dim", "items_per_peer"], errs);
    let Some(scenarios) = v.get("scenarios").and_then(JsonValue::as_arr) else {
        errs.push("missing \"scenarios\" array".into());
        return;
    };
    errs.require(!scenarios.is_empty(), "scenarios must not be empty");
    for (i, s) in scenarios.iter().enumerate() {
        let ctx = format!("scenarios[{i}]");
        let queries = need(s, "queries", &ctx, errs);
        errs.require(queries > 0.0, &format!("{ctx}: queries must be positive"));
        // The fault-tolerance headline: retry/reconnect/rejoin always
        // recover exact answers, whatever the chaos schedule did.
        let recall_final = need(s, "recall_final", &ctx, errs);
        errs.require(
            recall_final >= 1.0,
            &format!("{ctx}: recall_final must recover to 1.0 under chaos"),
        );
        let gave_up = need(s, "gave_up", &ctx, errs);
        errs.require(
            gave_up == 0.0,
            &format!("{ctx}: no request may exhaust its retry budget"),
        );
    }
    // Correlation-safety headline: a late reply to a timed-out attempt
    // is only ever discarded, never handed to a later request.
    let returned = need(v, "stale_replies_returned", "top level", errs);
    errs.require(
        returned == 0.0,
        "stale_replies_returned must be 0 (mis-correlation)",
    );
}
