//! Query-throughput benchmark: serial vs level-parallel vs batch engine.
//!
//! Runs the same range-query workload through the three execution paths —
//! the serial per-level loop, the level-parallel path
//! (`parallel_query = true`), and the batch [`QueryEngine`] — and emits
//! `BENCH_query.json` with throughput, latency percentiles, the measured
//! speedups, and recall against a flat linear scan. All three paths return
//! bit-identical results (asserted here as well as in the test suite), so
//! the numbers compare pure host wall-clock.
//!
//! Speedup caveat: per-level threads and the engine's query fan-out only
//! buy wall-clock when cores are available; the emitted `cores` field
//! records what the host offered. On a single core expect speedups ≈ 1×
//! (and slightly below for the level-parallel path, which pays thread
//! start-up); the batch engine's radius-translation amortisation is
//! core-independent.

use hyperm_baseline::FlatIndex;
use hyperm_bench::Scale;
use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork, QueryEngine, RangeResult};
use hyperm_sim::LatencyStats;
use hyperm_telemetry::JsonObj;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Workload {
    peers: usize,
    items: usize,
    dim: usize,
    levels: usize,
    queries: usize,
    eps: f64,
}

impl Workload {
    fn at(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                peers: 120,
                items: 60,
                dim: 32,
                levels: 4,
                queries: 200,
                eps: 0.25,
            },
            Scale::Full => Self {
                peers: 200,
                items: 150,
                dim: 32,
                levels: 4,
                queries: 500,
                eps: 0.25,
            },
        }
    }
}

fn build_peers(w: &Workload, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..w.peers)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(w.dim);
            let mut row = vec![0.0; w.dim];
            for _ in 0..w.items {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

struct ModeReport {
    total_s: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl ModeReport {
    fn json(&self) -> JsonObj {
        JsonObj::new()
            .f("total_s", self.total_s, 6)
            .f("qps", self.qps, 2)
            .f("p50_ms", self.p50_ms, 4)
            .f("p99_ms", self.p99_ms, 4)
    }
}

/// Time each query individually through `f`, returning results + a report.
fn run_mode<F>(queries: &[Vec<f64>], f: F) -> (Vec<RangeResult>, ModeReport)
where
    F: Fn(&[f64]) -> RangeResult,
{
    let mut lat = LatencyStats::new();
    let mut results = Vec::with_capacity(queries.len());
    for q in queries {
        let t = Instant::now();
        results.push(f(q));
        lat.record(t.elapsed());
    }
    // One summary = one sort; the percentile fields come out together.
    let s = lat.summary();
    (
        results,
        ModeReport {
            total_s: s.total_s,
            qps: queries.len() as f64 / s.total_s.max(1e-12),
            p50_ms: s.p50_s * 1e3,
            p99_ms: s.p99_s * 1e3,
        },
    )
}

fn assert_identical(a: &[RangeResult], b: &[RangeResult], what: &str) {
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.items, y.items, "{what}: items diverged");
        assert_eq!(x.stats, y.stats, "{what}: stats diverged");
    }
}

fn main() {
    let scale = Scale::from_env();
    let w = Workload::at(scale);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "query throughput — {} peers x {} items, {}-d, {} levels, {} queries, eps {} ({scale:?}, {cores} cores)",
        w.peers, w.items, w.dim, w.levels, w.queries, w.eps
    );

    let peers = build_peers(&w, 71);
    let cfg = HypermConfig::new(w.dim)
        .with_levels(w.levels)
        .with_clusters_per_peer(6)
        .with_seed(73)
        .with_parallel_query(false);
    let (serial_net, report) = HypermNetwork::build(peers.clone(), cfg).unwrap();
    let mut parallel_net = serial_net.clone();
    parallel_net.config.parallel_query = true;
    println!(
        "built: {} clusters published, {} replicas",
        report.clusters_published, report.replicas
    );

    let mut rng = StdRng::seed_from_u64(77);
    let queries: Vec<Vec<f64>> = (0..w.queries)
        .map(|_| {
            let p = rng.gen_range(0..peers.len());
            let i = rng.gen_range(0..peers[p].len());
            peers[p].row(i).to_vec()
        })
        .collect();

    // Warm-up pass (page in the stores and code paths).
    for q in queries.iter().take(10) {
        serial_net.range_query(0, q, w.eps, None);
    }

    let (serial_res, serial) = run_mode(&queries, |q| serial_net.range_query(0, q, w.eps, None));
    let (par_res, parallel) = run_mode(&queries, |q| parallel_net.range_query(0, q, w.eps, None));
    assert_identical(&serial_res, &par_res, "level-parallel");

    let engine = QueryEngine::new(&serial_net);
    let t = Instant::now();
    let batch_res = engine.range_batch(0, &queries, w.eps, None);
    let batch_total = t.elapsed().as_secs_f64();
    assert_identical(&serial_res, &batch_res, "batch engine");

    // Recall against a flat linear scan (full budget → expect 1.0).
    let flat = FlatIndex::from_peers(&peers);
    let mut recall_sum = 0.0;
    let mut graded = 0usize;
    for (q, res) in queries.iter().zip(&serial_res) {
        let truth = flat.range(q, w.eps);
        if truth.is_empty() {
            continue;
        }
        let got: std::collections::HashSet<_> = res.items.iter().copied().collect();
        recall_sum += truth.iter().filter(|t| got.contains(t)).count() as f64 / truth.len() as f64;
        graded += 1;
    }
    let recall = if graded == 0 {
        1.0
    } else {
        recall_sum / graded as f64
    };

    let speedup_levels = serial.total_s / parallel.total_s.max(1e-12);
    let speedup_batch = serial.total_s / batch_total.max(1e-12);
    println!(
        "serial   {:8.3}s  {:8.1} q/s  p50 {:.3}ms  p99 {:.3}ms",
        serial.total_s, serial.qps, serial.p50_ms, serial.p99_ms
    );
    println!(
        "par-lvl  {:8.3}s  {:8.1} q/s  p50 {:.3}ms  p99 {:.3}ms  ({speedup_levels:.2}x)",
        parallel.total_s, parallel.qps, parallel.p50_ms, parallel.p99_ms
    );
    println!(
        "batch    {:8.3}s  {:8.1} q/s  ({speedup_batch:.2}x)",
        batch_total,
        queries.len() as f64 / batch_total.max(1e-12)
    );
    println!("recall vs flat scan: {recall:.4} over {graded} graded queries");

    let json = JsonObj::new()
        .obj(
            "workload",
            JsonObj::new()
                .u("peers", w.peers as u64)
                .u("items_per_peer", w.items as u64)
                .u("dim", w.dim as u64)
                .u("levels", w.levels as u64)
                .u("queries", w.queries as u64)
                .g("eps", w.eps),
        )
        .u("cores", cores as u64)
        .obj("serial", serial.json())
        .obj("parallel_levels", parallel.json())
        .obj(
            "batch",
            JsonObj::new()
                .f("total_s", batch_total, 6)
                .f("qps", queries.len() as f64 / batch_total.max(1e-12), 2)
                .f("speedup_vs_serial", speedup_batch, 3),
        )
        .f("speedup_levels_vs_serial", speedup_levels, 3)
        .f("recall", recall, 6)
        .render_pretty();
    std::fs::write("BENCH_query.json", &json).expect("write BENCH_query.json");
    println!("wrote BENCH_query.json");
}
