//! Figure 10b: k-nn precision and recall vs clusters per peer.
//!
//! "Figure 10b shows that the system performs well, balancing precision and
//! recall at over 50% … using ten clusters instead of five almost doubles
//! the performance, but using twenty instead of ten only increases it
//! slightly."

use hyperm_bench::{f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork, KnnOptions};

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Figure 10b — k-nn effectiveness vs clusters per peer ({} nodes, scale {scale:?})",
        w.nodes
    );
    let peers = w.build_peers(41);
    let ks = [10usize, 20, 40];

    let mut rows = Vec::new();
    for clusters in [5usize, 10, 20] {
        let cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(clusters)
            .with_seed(43);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let harness = EvalHarness::new(&net);
        let queries = harness.sample_queries(&net, 20, 11);

        let mut precisions = Vec::new();
        let mut recalls = Vec::new();
        for q in &queries {
            for &k in &ks {
                let eval = harness.eval_knn(&net, 0, q, k, KnnOptions::default());
                precisions.push(eval.retrieved.precision);
                recalls.push(eval.retrieved.recall);
            }
        }
        let n = precisions.len() as f64;
        rows.push(vec![
            clusters.to_string(),
            f3(precisions.iter().sum::<f64>() / n),
            f3(recalls.iter().sum::<f64>() / n),
            f3(recalls.iter().cloned().fold(f64::INFINITY, f64::min)),
            f3(recalls.iter().cloned().fold(0.0, f64::max)),
        ]);
    }
    print_table(
        "k-nn effectiveness (k in {10,20,40}, retrieved-set metrics)",
        &[
            "clusters/peer",
            "precision",
            "recall mean",
            "recall min",
            "recall max",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): precision and recall balance above ~0.5; the jump\n\
         from 5 to 10 clusters is large, from 10 to 20 marginal."
    );
}
