//! Section 6.1 (text): the `C` precision/recall knob of the k-nn heuristic.
//!
//! "Our experiments show that we obtain a 14.51% increase in recall when C
//! is 1.5 (50% more data items retrieved) but also a drop of 21.05% in
//! precision. Increasing C further to 2 adds an additional 4.23% to recall
//! and subtracts 6.67% from precision."

use hyperm_bench::{f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork, KnnOptions};

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Section 6.1 — the C knob ({} nodes, scale {scale:?})",
        w.nodes
    );
    let peers = w.build_peers(71);
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(73);
    let (net, _) = HypermNetwork::build(peers, cfg).unwrap();
    let harness = EvalHarness::new(&net);
    let queries = harness.sample_queries(&net, 25, 17);
    let k = 20;

    let mut rows = Vec::new();
    let mut prev: Option<(f64, f64)> = None;
    for c in [1.0f64, 1.5, 2.0] {
        let mut precision = 0.0;
        let mut recall = 0.0;
        let mut fetched = 0usize;
        for q in &queries {
            let eval = harness.eval_knn(&net, 0, q, k, KnnOptions::default().with_c(c));
            precision += eval.retrieved.precision;
            recall += eval.retrieved.recall;
            fetched += 1;
        }
        precision /= fetched as f64;
        recall /= fetched as f64;
        let (d_rec, d_prec) = match prev {
            Some((p0, r0)) => (
                format!("{:+.2}%", (recall - r0) / r0 * 100.0),
                format!("{:+.2}%", (precision - p0) / p0 * 100.0),
            ),
            None => ("-".into(), "-".into()),
        };
        rows.push(vec![
            format!("{c}"),
            f3(precision),
            f3(recall),
            d_rec.to_string(),
            d_prec,
        ]);
        prev = Some((precision, recall));
    }
    print_table(
        "k-nn retrieved-set quality vs C (k = 20)",
        &[
            "C",
            "precision",
            "recall",
            "Δrecall vs prev",
            "Δprecision vs prev",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): raising C buys recall (+~15% at 1.5, +~4% more at 2)\n\
         and costs precision (−~21% then −~7%): diminishing returns past C = 1.5."
    );
}
