//! Figure 10a: range-query recall vs number of peers contacted.
//!
//! "Precision is constantly 100% because once we decide which peers to
//! contact, the query is performed directly on those peers … recall
//! reaches as high as 96% if enough peers are contacted." Variation (the
//! paper's error bars) comes from different query radii.

use hyperm_bench::{f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork};

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Figure 10a — range recall vs peers contacted ({} nodes, {} classes x {} views, scale {scale:?})",
        w.nodes, w.classes, w.views_per_class
    );
    let peers = w.build_peers(31);
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(33);
    let (net, _) = HypermNetwork::build(peers, cfg).unwrap();
    let harness = EvalHarness::new(&net);

    let queries = harness.sample_queries(&net, 25, 7);
    // Radii chosen per query as the 10th/25th/50th-NN distance (the paper
    // varies radii to produce its error bars).
    let k_for_radius = [10usize, 25, 50];
    let budgets = [1usize, 2, 3, 5, 8, 12, 20];

    let mut rows = Vec::new();
    for &budget in &budgets {
        let mut recalls = Vec::new();
        let mut precisions = Vec::new();
        for q in &queries {
            for &kr in &k_for_radius {
                let eps = harness.kth_distance(q, kr);
                let (pr, _) = harness.eval_range(&net, 0, q, eps, Some(budget));
                recalls.push(pr.recall);
                precisions.push(pr.precision);
            }
        }
        let n = recalls.len() as f64;
        let mean = recalls.iter().sum::<f64>() / n;
        let min = recalls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = recalls.iter().cloned().fold(0.0, f64::max);
        let prec = precisions.iter().sum::<f64>() / n;
        rows.push(vec![
            budget.to_string(),
            f3(mean),
            f3(min),
            f3(max),
            f3(prec),
        ]);
    }
    // Unbounded contact = guaranteed no false dismissals.
    let mut recalls = Vec::new();
    for q in &queries {
        let eps = harness.kth_distance(q, 25);
        let (pr, _) = harness.eval_range(&net, 0, q, eps, None);
        recalls.push(pr.recall);
    }
    rows.push(vec![
        "all".into(),
        f3(recalls.iter().sum::<f64>() / recalls.len() as f64),
        f3(recalls.iter().cloned().fold(f64::INFINITY, f64::min)),
        f3(recalls.iter().cloned().fold(0.0, f64::max)),
        f3(1.0),
    ]);

    print_table(
        "recall vs peers contacted (radii at 10/25/50-NN distances)",
        &[
            "peers contacted",
            "recall mean",
            "recall min",
            "recall max",
            "precision",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): precision pinned at 1.0; recall climbs with the\n\
         number of contacted peers, into the ≥0.9 range once enough are contacted,\n\
         reaching 1.0 when every positively scored peer is visited (no false\n\
         dismissals — Theorem 4.1)."
    );
}
