//! Load-balancing benchmark: hot-spot relief under Zipf query skew.
//!
//! Sweeps Zipf skew s ∈ {0, 0.8, 1.2} against four relief ladders —
//! no relief, virtual nodes, + load-triggered splits, + the
//! popular-summary cache — and emits `BENCH_load.json` with the
//! [`hyperm_load::LoadSnapshot`] of each cell (max/median per-peer load,
//! Gini coefficient, per-level zone heat, radio-energy estimate).
//!
//! Protocol per cell: build a fresh network (identical seed), install the
//! cell's [`LoadConfig`], run an *adaptation* phase (query batches with a
//! [`LoadBalancer::relieve`] round after each batch, letting the relief
//! mechanisms react to the skew), reset the ledger, then run a *measure*
//! phase over a fresh identically-seeded workload with no further relief —
//! so the snapshot reports steady-state load on the adapted structure.
//!
//! Two invariants are asserted on every cell, not just reported:
//!
//! * **recall 1.0** — every cell returns exactly the flat-scan truth for
//!   every measured query (relief never causes a false dismissal,
//!   Theorem 4.1: candidate sets only grow);
//! * **set-identity** — every cell's result items match the no-relief
//!   cell's on the full measure workload (the cached path replays what
//!   the cold path computes).
//!
//! The headline claim is self-asserted at s = 1.2: full relief must cut
//! the max/median load ratio by ≥ 2× versus no relief.

use hyperm_baseline::FlatIndex;
use hyperm_bench::Scale;
use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork};
use hyperm_datagen::ZipfWorkload;
use hyperm_load::{LoadBalancer, LoadConfig, LoadSnapshot};
use hyperm_telemetry::JsonObj;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct Workload {
    peers: usize,
    items: usize,
    dim: usize,
    levels: usize,
    adapt_batches: usize,
    adapt_batch: usize,
    measure_queries: usize,
    entry_pool: usize,
    eps: f64,
}

impl Workload {
    fn at(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                peers: 60,
                items: 40,
                dim: 16,
                levels: 4,
                adapt_batches: 8,
                adapt_batch: 60,
                measure_queries: 240,
                entry_pool: 8,
                eps: 0.2,
            },
            Scale::Full => Self {
                peers: 120,
                items: 60,
                dim: 16,
                levels: 4,
                adapt_batches: 10,
                adapt_batch: 80,
                measure_queries: 480,
                entry_pool: 12,
                eps: 0.2,
            },
        }
    }
}

fn build_peers(w: &Workload, seed: u64) -> Vec<Dataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..w.peers)
        .map(|_| {
            let centre: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(w.dim);
            let mut row = vec![0.0; w.dim];
            for _ in 0..w.items {
                for x in row.iter_mut() {
                    *x = (centre + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect()
}

fn build_net(peers: &[Dataset], w: &Workload) -> HypermNetwork {
    let cfg = HypermConfig::new(w.dim)
        .with_levels(w.levels)
        .with_clusters_per_peer(5)
        .with_seed(83);
    let (net, _) = HypermNetwork::build(peers.to_vec(), cfg).expect("network build");
    net
}

/// The query pool the Zipf ranks draw from: a couple of rows per peer, so
/// the rank-0 centre pins the hot spot onto one peer's cluster.
fn query_pool(peers: &[Dataset]) -> Vec<Vec<f64>> {
    peers
        .iter()
        .flat_map(|ds| (0..ds.len().min(2)).map(|i| ds.row(i).to_vec()))
        .collect()
}

struct Cell {
    name: &'static str,
    s: f64,
    snapshot: LoadSnapshot,
    migrations: u64,
    splits: u64,
    merges: u64,
    cache_hits: u64,
    cache_misses: u64,
    recall: f64,
    measure_s: f64,
}

/// Run one (skew, relief ladder) cell; `truth` is the no-relief cell's
/// result sets on the same measure workload, asserted identical here.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    name: &'static str,
    s: f64,
    cfg: LoadConfig,
    w: &Workload,
    peers: &[Dataset],
    pool: &[Vec<f64>],
    flat: &FlatIndex,
    truth: Option<&[Vec<(usize, usize)>]>,
) -> (Cell, Vec<Vec<(usize, usize)>>) {
    let mut net = build_net(peers, w);
    let mut balancer = LoadBalancer::install(&mut net, cfg);
    let mut entries = StdRng::seed_from_u64(89);
    let entry_of = |rng: &mut StdRng| rng.gen_range(0..w.entry_pool.min(w.peers));

    // Adaptation: let the relief mechanisms react to the skew.
    let mut migrations = 0u64;
    let mut splits = 0u64;
    let mut merges = 0u64;
    let mut zipf = ZipfWorkload::from_pool(pool.to_vec(), s, 97);
    for _ in 0..w.adapt_batches {
        for _ in 0..w.adapt_batch {
            let q = zipf.next_center();
            let entry = entry_of(&mut entries);
            net.range_query(entry, &q, w.eps, None);
        }
        let report = balancer.relieve(&mut net);
        migrations += report.migrations;
        splits += report.splits;
        merges += report.merges;
        for l in 0..net.levels() {
            net.overlay(l).check_invariants();
        }
    }

    // Measure: identical fresh workload on the adapted structure, no
    // further relief, ledger cleared of the adaptation-phase charges.
    balancer.ledger().reset();
    let mut zipf = ZipfWorkload::from_pool(pool.to_vec(), s, 97);
    let mut entries = StdRng::seed_from_u64(89);
    let mut results: Vec<Vec<(usize, usize)>> = Vec::with_capacity(w.measure_queries);
    let mut recall_sum = 0.0;
    let mut graded = 0usize;
    let t = Instant::now();
    for _ in 0..w.measure_queries {
        let q = zipf.next_center();
        let entry = entry_of(&mut entries);
        let res = net.range_query(entry, &q, w.eps, None);
        let mut items = res.items.clone();
        items.sort_unstable();
        let truth_items = flat.range(&q, w.eps);
        if !truth_items.is_empty() {
            let got: std::collections::HashSet<_> = items.iter().copied().collect();
            recall_sum += truth_items.iter().filter(|t| got.contains(t)).count() as f64
                / truth_items.len() as f64;
            graded += 1;
        }
        results.push(items);
    }
    let measure_s = t.elapsed().as_secs_f64();
    let recall = if graded == 0 {
        1.0
    } else {
        recall_sum / graded as f64
    };
    assert!(
        (recall - 1.0).abs() < 1e-12,
        "{name} s={s}: relief caused false dismissals (recall {recall})"
    );
    if let Some(truth) = truth {
        for (i, (a, b)) in truth.iter().zip(&results).enumerate() {
            assert_eq!(
                a, b,
                "{name} s={s}: query {i} diverged from the no-relief result set"
            );
        }
    }

    let snapshot = balancer.snapshot(&net);
    let (cache_hits, cache_misses) = balancer
        .cache()
        .map(|c| (c.hits(), c.misses()))
        .unwrap_or((0, 0));
    (
        Cell {
            name,
            s,
            snapshot,
            migrations,
            splits,
            merges,
            cache_hits,
            cache_misses,
            recall,
            measure_s,
        },
        results,
    )
}

fn ladder() -> Vec<(&'static str, LoadConfig)> {
    vec![
        ("none", LoadConfig::default()),
        (
            "vnodes",
            LoadConfig::default().with_virtual_nodes(3).with_seed(7),
        ),
        (
            "vnodes_splits",
            LoadConfig::default()
                .with_virtual_nodes(3)
                .with_splits(true)
                .with_split_ratio(1.25)
                .with_seed(7),
        ),
        (
            "vnodes_splits_cache",
            LoadConfig::default()
                .with_virtual_nodes(3)
                .with_splits(true)
                .with_split_ratio(1.25)
                .with_cache(true)
                .with_seed(7),
        ),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let w = Workload::at(scale);
    println!(
        "load balancing — {} peers x {} items, {}-d, {} levels, {} measure queries ({scale:?})",
        w.peers, w.items, w.dim, w.levels, w.measure_queries
    );

    let peers = build_peers(&w, 79);
    let pool = query_pool(&peers);
    let flat = FlatIndex::from_peers(&peers);

    let mut cells: Vec<Cell> = Vec::new();
    let mut headline: Option<(f64, f64)> = None;
    for &s in &[0.0, 0.8, 1.2] {
        let mut baseline: Option<Vec<Vec<(usize, usize)>>> = None;
        let mut ratio_none = 0.0;
        for (name, cfg) in ladder() {
            let (cell, results) =
                run_cell(name, s, cfg, &w, &peers, &pool, &flat, baseline.as_deref());
            println!(
                "s={s:>3} {name:<20} max/median {:7.3}  gini {:.4}  max {:>6}  \
                 mig {} splits {} merges {}  cache {}/{}  ({:.2}s)",
                cell.snapshot.max_median_ratio,
                cell.snapshot.gini,
                cell.snapshot.max,
                cell.migrations,
                cell.splits,
                cell.merges,
                cell.cache_hits,
                cell.cache_hits + cell.cache_misses,
                cell.measure_s,
            );
            if name == "none" {
                ratio_none = cell.snapshot.max_median_ratio;
                baseline = Some(results);
            }
            if s == 1.2 && name == "vnodes_splits_cache" {
                headline = Some((ratio_none, cell.snapshot.max_median_ratio));
            }
            cells.push(cell);
        }
    }

    // Headline self-assertion: at the paper-grade skew, full relief must
    // at least halve the max/median load ratio.
    let (before, after) = headline.expect("s=1.2 full-relief cell ran");
    let improvement = before / after.max(1e-12);
    println!("s=1.2 max/median: {before:.3} -> {after:.3} ({improvement:.2}x improvement)");
    assert!(
        improvement >= 2.0,
        "full relief must cut the s=1.2 max/median ratio by >= 2x, got {improvement:.2}x \
         ({before:.3} -> {after:.3})"
    );

    let cell_objs: Vec<String> = cells
        .iter()
        .map(|c| {
            JsonObj::new()
                .s("relief", c.name)
                .g("zipf_s", c.s)
                .u("migrations", c.migrations)
                .u("splits", c.splits)
                .u("merges", c.merges)
                .u("cache_hits", c.cache_hits)
                .u("cache_misses", c.cache_misses)
                .f("recall", c.recall, 6)
                .f("measure_s", c.measure_s, 4)
                .obj("load", c.snapshot.to_json_obj())
                .render()
        })
        .collect();
    let json = JsonObj::new()
        .obj(
            "workload",
            JsonObj::new()
                .u("peers", w.peers as u64)
                .u("items_per_peer", w.items as u64)
                .u("dim", w.dim as u64)
                .u("levels", w.levels as u64)
                .u("measure_queries", w.measure_queries as u64)
                .u("entry_pool", w.entry_pool as u64)
                .g("eps", w.eps),
        )
        .f("s12_ratio_no_relief", before, 3)
        .f("s12_ratio_full_relief", after, 3)
        .f("s12_improvement", improvement, 3)
        .arr("cells", &cell_objs)
        .render_pretty();
    std::fs::write("BENCH_load.json", &json).expect("write BENCH_load.json");
    println!("wrote BENCH_load.json");
}
