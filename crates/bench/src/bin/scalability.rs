//! Scalability sweep (extension experiment; DESIGN.md).
//!
//! The paper fixes N = 100 (dissemination) and N = 50 (retrieval); this
//! binary sweeps the network size with the per-device load held constant
//! to check that the headline properties are size-stable:
//!
//! * insertion hops/item grow with each overlay's routing diameter
//!   (CAN: `O(d·N^{1/d})` — dominated by the 1-d levels' `O(N)`;
//!   BATON: `O(log N)`);
//! * range recall at full budget stays exactly 1.0 at every size
//!   (no-false-dismissal is size-independent).

use hyperm_bench::{f1, f3, print_table, Scale};
use hyperm_cluster::Dataset;
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork, OverlayBackend};
use hyperm_datagen::{generate_aloi_like, AloiConfig};

fn main() {
    let scale = Scale::from_env();
    let sizes: &[usize] = match scale {
        Scale::Quick => &[25, 50, 100, 200],
        Scale::Full => &[25, 50, 100, 200, 400],
    };
    let per_peer = 24usize;
    println!("Scalability sweep ({per_peer} items/peer, 64-d histograms, scale {scale:?})");

    for backend in [
        OverlayBackend::Can,
        OverlayBackend::Baton,
        OverlayBackend::Vbi,
    ] {
        let mut rows = Vec::new();
        for &n in sizes {
            let corpus = generate_aloi_like(&AloiConfig {
                classes: n, // one subject per peer keeps density constant
                views_per_class: per_peer,
                bins: 64,
                view_jitter: 0.15,
                seed: 5,
            });
            let peers: Vec<Dataset> = (0..n)
                .map(|p| {
                    let ids: Vec<usize> = (p * per_peer..(p + 1) * per_peer).collect();
                    corpus.data.select(&ids)
                })
                .collect();
            let cfg = HypermConfig::new(64)
                .with_levels(4)
                .with_clusters_per_peer(6)
                .with_seed(7)
                .with_backend(backend);
            let (net, report) = HypermNetwork::build(peers, cfg).unwrap();
            let harness = EvalHarness::new(&net);
            let queries = harness.sample_queries(&net, 10, 11);
            let mut recall = 0.0;
            let mut msgs = 0.0;
            for q in &queries {
                let eps = harness.kth_distance(q, 15);
                let (pr, stats) = harness.eval_range(&net, 0, q, eps, None);
                recall += pr.recall;
                msgs += stats.messages as f64;
            }
            rows.push(vec![
                n.to_string(),
                f3(report.avg_hops_per_item()),
                report.makespan_rounds.to_string(),
                f3(recall / queries.len() as f64),
                f1(msgs / queries.len() as f64),
            ]);
        }
        print_table(
            &format!("{backend:?} substrate"),
            &[
                "peers",
                "insert hops/item",
                "makespan rounds",
                "range recall",
                "range msgs/q",
            ],
            &rows,
        );
    }
    println!(
        "\nExpected shape: recall pinned at 1.000 at every size and substrate;\n\
         per-item hops grow sub-linearly on BATON (log N) and faster on CAN\n\
         (its 1-d subspace overlays route in O(N))."
    );
}
