//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. score aggregation policy (min — the paper's — vs avg vs max);
//! 2. wavelet normalisation (paper average vs orthonormal);
//! 3. k-means initialisation (k-means++ vs Forgy) on retrieval quality.
//!
//! Each section reports k-nn retrieved-set precision/recall and the
//! message cost per query.

use hyperm_bench::{f1, f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork, KnnOptions, ScorePolicy};
use hyperm_wavelet::Normalization;

fn eval(net: &HypermNetwork, queries: &[Vec<f64>], k: usize) -> (f64, f64, f64) {
    let harness = EvalHarness::new(net);
    let mut precision = 0.0;
    let mut recall = 0.0;
    let mut msgs = 0.0;
    for q in queries {
        let e = harness.eval_knn(net, 0, q, k, KnnOptions::default());
        precision += e.retrieved.precision;
        recall += e.retrieved.recall;
        msgs += e.stats.messages as f64;
    }
    let n = queries.len() as f64;
    (precision / n, recall / n, msgs / n)
}

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!("Ablations ({} nodes, scale {scale:?})", w.nodes);
    let peers = w.build_peers(91);
    let k = 20;

    // 1. Score policy.
    let mut rows = Vec::new();
    let mut queries = None;
    for (name, policy) in [
        ("min (paper)", ScorePolicy::Min),
        ("avg", ScorePolicy::Avg),
        ("max", ScorePolicy::Max),
    ] {
        let cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(10)
            .with_seed(93)
            .with_score_policy(policy);
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let qs = queries
            .get_or_insert_with(|| EvalHarness::new(&net).sample_queries(&net, 20, 19))
            .clone();
        let (p, r, m) = eval(&net, &qs, k);
        rows.push(vec![name.into(), f3(p), f3(r), f1(m)]);
    }
    print_table(
        "score aggregation policy",
        &["policy", "precision", "recall", "msgs/query"],
        &rows,
    );

    // 2. Wavelet normalisation.
    let mut rows = Vec::new();
    for (name, norm) in [
        ("paper average", Normalization::PaperAverage),
        ("orthonormal", Normalization::Orthonormal),
    ] {
        let mut cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(10)
            .with_seed(95);
        cfg.normalization = norm;
        let (net, report) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let qs = queries.as_ref().unwrap().clone();
        let (p, r, m) = eval(&net, &qs, k);
        rows.push(vec![
            name.into(),
            f3(p),
            f3(r),
            f1(m),
            f3(report.avg_hops_per_item()),
        ]);
    }
    print_table(
        "wavelet normalisation",
        &[
            "convention",
            "precision",
            "recall",
            "msgs/query",
            "insert hops/item",
        ],
        &rows,
    );

    // 3. k-means iteration budget (summarisation quality vs cost).
    let mut rows = Vec::new();
    for iters in [2usize, 10, 50] {
        let mut cfg = HypermConfig::new(64)
            .with_levels(4)
            .with_clusters_per_peer(10)
            .with_seed(97);
        cfg.kmeans_max_iter = iters;
        let (net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let qs = queries.as_ref().unwrap().clone();
        let (p, r, m) = eval(&net, &qs, k);
        rows.push(vec![iters.to_string(), f3(p), f3(r), f1(m)]);
    }
    print_table(
        "k-means iteration budget",
        &["max iterations", "precision", "recall", "msgs/query"],
        &rows,
    );
}
