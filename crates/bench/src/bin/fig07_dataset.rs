//! Figure 7: the synthetic Markov dataset.
//!
//! Prints summary statistics of the generated corpus and a few sample
//! vectors (downsampled coordinate series) so the wavy shapes of the
//! paper's Figure 7b can be eyeballed.

use hyperm_bench::{f3, print_table, DisseminationWorkload, Scale};
use hyperm_datagen::{generate_markov, MarkovConfig};

fn main() {
    let scale = Scale::from_env();
    let w = DisseminationWorkload::at(scale);
    let total = w.nodes * w.items_per_node;
    println!(
        "Figure 7 — synthetic Markov dataset ({total} x {}-d, scale {scale:?})",
        w.dim
    );

    let data = generate_markov(&MarkovConfig {
        count: total,
        dim: w.dim,
        max_step_cap: 0.05,
        seed: 42,
    });

    // Global statistics.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut jumps = 0.0f64;
    let mut jump_count = 0u64;
    for row in data.rows() {
        for &x in row {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        for w2 in row.windows(2) {
            jumps += (w2[1] - w2[0]).abs();
            jump_count += 1;
        }
    }
    let mean = sum / (total * w.dim) as f64;
    print_table(
        "corpus statistics",
        &["vectors", "dim", "min", "max", "mean", "mean |x_{i+1}-x_i|"],
        &[vec![
            total.to_string(),
            w.dim.to_string(),
            f3(min),
            f3(max),
            f3(mean),
            f3(jumps / jump_count as f64),
        ]],
    );

    // Sample series, downsampled to 16 points per vector.
    let step = w.dim / 16;
    let rows: Vec<Vec<String>> = (0..4)
        .map(|v| {
            let mut cells = vec![format!("v{v}")];
            cells.extend((0..16).map(|i| f3(data.row(v * 7)[i * step])));
            cells
        })
        .collect();
    let mut headers = vec!["vector"];
    let labels: Vec<String> = (0..16).map(|i| format!("x{}", i * step)).collect();
    headers.extend(labels.iter().map(String::as_str));
    print_table(
        "sample vectors (downsampled, cf. Figure 7b)",
        &headers,
        &rows,
    );
}
