//! Figure 10c: recall loss from documents inserted after overlay creation.
//!
//! "We have evaluated the impact of inserting documents after the creation
//! of the overlay … even if we insert as much as 45% new documents (3600
//! new data items, versus 8400 existing), the recall loses only up to 33%."
//!
//! New items are stored locally without updating the published summaries
//! ([`hyperm_core::InsertPolicy::StaleSummaries`]); we also print the
//! Republish repair policy as the extension ablation.

use hyperm_bench::{f3, print_table, RetrievalWorkload, Scale};
use hyperm_core::{EvalHarness, HypermConfig, HypermNetwork, InsertPolicy};
use hyperm_datagen::{generate_aloi_like, AloiConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mean_recall(net: &HypermNetwork, harness: &EvalHarness, queries: &[Vec<f64>]) -> f64 {
    let mut total = 0.0;
    for q in queries {
        let eps = harness.kth_distance(q, 25);
        let (pr, _) = harness.eval_range(net, 0, q, eps, None);
        total += pr.recall;
    }
    total / queries.len() as f64
}

fn main() {
    let scale = Scale::from_env();
    let w = RetrievalWorkload::at(scale);
    println!(
        "Figure 10c — recall loss vs post-creation insertions ({} nodes, scale {scale:?})",
        w.nodes
    );
    let peers = w.build_peers(51);
    let existing: usize = peers.iter().map(|p| p.len()).sum();

    // Fresh documents drawn from the same distribution (later views of the
    // same kinds of objects).
    let extra = generate_aloi_like(&AloiConfig {
        classes: w.classes,
        views_per_class: w.views_per_class / 2,
        bins: 64,
        view_jitter: 0.15,
        seed: 777,
    });

    let fractions = [0.0f64, 0.1, 0.2, 0.3, 0.45];
    let mut rows = Vec::new();
    let mut baseline_recall = None;
    for policy in [InsertPolicy::StaleSummaries, InsertPolicy::Republish] {
        for &frac in &fractions {
            let cfg = HypermConfig::new(64)
                .with_levels(4)
                .with_clusters_per_peer(10)
                .with_seed(53);
            let (mut net, _) = HypermNetwork::build(peers.clone(), cfg).unwrap();
            let new_docs = ((existing as f64 * frac) as usize).min(extra.len());
            let mut rng = StdRng::seed_from_u64(55);
            for i in 0..new_docs {
                let peer = rng.gen_range(0..net.len());
                net.insert_item(peer, extra.data.row(i), policy);
            }
            // Ground truth over the *current* contents (old + new docs).
            let harness = EvalHarness::new(&net);
            let queries = harness.sample_queries(&net, 20, 13);
            let recall = mean_recall(&net, &harness, &queries);
            if frac == 0.0 && baseline_recall.is_none() {
                baseline_recall = Some(recall);
            }
            let loss = baseline_recall.map(|b| (b - recall) / b).unwrap_or(0.0);
            rows.push(vec![
                format!("{policy:?}"),
                new_docs.to_string(),
                format!("{:.0}%", frac * 100.0),
                f3(recall),
                f3(loss.max(0.0)),
            ]);
        }
    }
    print_table(
        "recall after post-creation insertions (range queries, all candidates contacted)",
        &["policy", "new docs", "fraction", "recall", "relative loss"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): with stale summaries, recall degrades gracefully —\n\
         ≈1/3 relative loss at 45% new documents. The Republish extension (not in\n\
         the paper) should hold recall near the baseline at extra message cost."
    );
}
