//! Figure 8b: insertion cost vs amount of data disseminated.
//!
//! "Our method not only overcomes this \[replication\] overhead, but provides
//! up to 400% reduction in the number of hops compared with the basic CAN
//! insertion method … Hyper-M sets up the network overlay much faster, even
//! if it incurs some replication overhead."
//!
//! Series: total insertion hops as the corpus grows, for Hyper-M (4
//! levels), per-item CAN in the original 512-d space, and the paper's
//! illustrative 2-d CAN.

use hyperm_baseline::{insert_all_items, PerItemCanConfig};
use hyperm_bench::{f1, f3, print_table, DisseminationWorkload, Scale};
use hyperm_cluster::Dataset;
use hyperm_core::{HypermConfig, HypermNetwork};

fn main() {
    let scale = Scale::from_env();
    let w = DisseminationWorkload::at(scale);
    println!(
        "Figure 8b — hops vs data volume ({} nodes, {}-d, scale {scale:?})",
        w.nodes, w.dim
    );
    let full_peers = w.build_peers(11);

    // Sweep data volume: 20%..100% of the corpus.
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rows = Vec::new();
    for &frac in &fractions {
        let peers: Vec<Dataset> = full_peers
            .iter()
            .map(|p| {
                let keep = ((p.len() as f64 * frac).ceil() as usize).max(1);
                p.select(&(0..keep).collect::<Vec<_>>())
            })
            .collect();
        let items: usize = peers.iter().map(Dataset::len).sum();

        let cfg = HypermConfig::new(w.dim)
            .with_levels(4)
            .with_clusters_per_peer(10)
            .with_seed(5);
        let (_, hyperm) = HypermNetwork::build(peers.clone(), cfg).unwrap();
        let can_full = insert_all_items(&peers, &PerItemCanConfig::full_dim(w.nodes, w.dim, 5));
        let can_2d = insert_all_items(&peers, &PerItemCanConfig::two_dim(w.nodes, 5));

        rows.push(vec![
            items.to_string(),
            f1(hyperm.insertion.hops as f64),
            f1(can_full.totals.hops as f64),
            f1(can_2d.totals.hops as f64),
            f3(can_full.totals.hops as f64 / hyperm.insertion.hops.max(1) as f64),
            f3(can_2d.totals.hops as f64 / hyperm.insertion.hops.max(1) as f64),
        ]);
    }
    print_table(
        "total insertion hops vs items inserted",
        &[
            "items",
            "Hyper-M (4 levels)",
            "CAN 512-d per item",
            "CAN 2-d per item",
            "speedup vs 512-d",
            "speedup vs 2-d",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): Hyper-M's totals stay far below both per-item\n\
         baselines (order-of-magnitude vs 512-d CAN) and grow sub-linearly with\n\
         volume because only cluster summaries are published."
    );
}
