#!/usr/bin/env bash
# Bench artifact guard: validate every BENCH_*.json in the repo root
# against its schema and headline bounds (see crates/bench/src/bin/
# bench_check.rs for the exact rules). CI runs this after regenerating
# the artifacts; run locally from the repo root:
#
#   bash scripts/bench_check.sh [DIR]
set -euo pipefail

BIN=${BIN:-target/release}
DIR=${1:-.}

if [ -x "$BIN/bench_check" ]; then
  "$BIN/bench_check" "$DIR"
else
  cargo run --release -q -p hyperm-bench --bin bench_check -- "$DIR"
fi
