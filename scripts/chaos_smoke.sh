#!/usr/bin/env bash
# Chaos smoke test: boot a 3-node loopback cluster with the real
# binaries, kill -9 a member mid-workload, restart it and verify the
# crash-rejoin path end to end: the reborn member re-Joins through the
# normal join protocol, resolves to the SAME overlay peer id (no
# duplicate admission), forwarded queries recover recall 1.0, the
# member's Stats report `"degraded":false`, and a final SLO-checked
# watch round over every node exits clean.
#
# Requires release binaries (cargo build --release). Run from the repo
# root: bash scripts/chaos_smoke.sh
set -euo pipefail

BIN=${BIN:-target/release}
HEAD=127.0.0.1:7461
M1=127.0.0.1:7462
M2=127.0.0.1:7463
DIM=8
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() { echo "chaos_smoke: FAIL: $1" >&2; exit 1; }

# Poll a log file for a marker line.
await() { # await <file> <pattern> <what>
  for _ in $(seq 1 100); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "--- $1 ---" >&2; cat "$1" >&2 || true
  fail "timed out waiting for $3"
}

# One JSON object per client call; every call must report ok:true.
# Callers capture with $(client ...) and grep the result — never pipe
# this function into `grep -q` (early-exit SIGPIPE + pipefail = flake).
client() { # client <args...>
  local out
  out=$("$BIN/hyperm-client" "$@")
  echo "$out"
  echo "$out" >&2
  case "$out" in *'"ok": true'*) ;; *) fail "client $* -> $out" ;; esac
}

echo "== booting head ($HEAD) and members ($M1, $M2)"
"$BIN/hyperm-node" head --listen "$HEAD" --peers 3 --items 20 --dim $DIM \
  --levels 3 >"$WORK/head.log" 2>&1 &
await "$WORK/head.log" "listening on" "head to bind"

"$BIN/hyperm-node" member --listen "$M1" --head "$HEAD" --id 1 --items 20 \
  --dim $DIM >"$WORK/m1.log" 2>&1 &
M1_PID=$!
await "$WORK/m1.log" "joined as overlay peer" "member 1 to join"
PEER1=$(grep -o 'joined as overlay peer [0-9]*' "$WORK/m1.log" | grep -o '[0-9]*$')

"$BIN/hyperm-node" member --listen "$M2" --head "$HEAD" --id 2 --items 20 \
  --dim $DIM >"$WORK/m2.log" 2>&1 &
await "$WORK/m2.log" "joined as overlay peer" "member 2 to join"

ITEM="0.3,0.3,0.3,0.3,0.3,0.3,0.3,0.3"

echo "== workload: put an item and query it through member 1"
OUT=$(client put --node "$HEAD" --peer 0 --item "$ITEM" --republish)
case "$OUT" in *'"index": 20'*) ;; *) fail "expected the put item at index 20" ;; esac
OUT=$(client query --node "$M1" --centre "$ITEM" --eps 0.05)
case "$OUT" in *'[0,20]'*) ;; *) fail "pre-crash forwarded query missed the item" ;; esac

echo "== chaos: kill -9 member 1 (overlay peer $PEER1) mid-workload"
kill -9 "$M1_PID" 2>/dev/null || fail "could not kill member 1"
wait "$M1_PID" 2>/dev/null || true

echo "== the rest of the cluster keeps answering while it is down"
OUT=$(client query --node "$HEAD" --centre "$ITEM" --eps 0.05)
case "$OUT" in *'[0,20]'*) ;; *) fail "head query failed with a member down" ;; esac

echo "== restart member 1: same id, same listen address, normal join path"
"$BIN/hyperm-node" member --listen "$M1" --head "$HEAD" --id 1 --items 20 \
  --dim $DIM >"$WORK/m1b.log" 2>&1 &
await "$WORK/m1b.log" "joined as overlay peer" "member 1 to rejoin"
PEER1B=$(grep -o 'joined as overlay peer [0-9]*' "$WORK/m1b.log" | grep -o '[0-9]*$')
[ "$PEER1B" = "$PEER1" ] \
  || fail "rejoin changed the overlay peer id ($PEER1 -> $PEER1B)"

echo "== no duplicate admission: the head still reports 5 overlay members"
MON=$("$BIN/hyperm-monitor" --node "$HEAD")
echo "$MON" | grep -q '"members": 5' || fail "monitor members after rejoin: $MON"

echo "== recall 1.0 through the reborn member"
OUT=$(client query --node "$M1" --centre "$ITEM" --eps 0.05)
case "$OUT" in *'[0,20]'*) ;; *) fail "post-rejoin forwarded query missed the item" ;; esac

echo "== the reborn member's liveness verdict is healthy"
STATS=$("$BIN/hyperm-client" stats --node "$M1")
echo "$STATS" >&2
case "$STATS" in *'"degraded":false'*) ;; *) fail "member reports degraded after rejoin: $STATS" ;; esac

echo "== final SLO verdict: one watch round over every node, clean"
"$BIN/hyperm-monitor" --watch --nodes "$HEAD,$M1,$M2" --interval 100 --count 2 \
  --slo "failed_routes == 0, rejected == 0" >"$WORK/watch.log" \
  || { cat "$WORK/watch.log" >&2; fail "post-rejoin watch breached its SLO"; }
grep -q '"down": 0' "$WORK/watch.log" || fail "watch saw a down node after rejoin"
grep -q '"kind": "watch_done"' "$WORK/watch.log" || fail "watch printed no final report"

echo "== clean protocol shutdown, members first"
client shutdown --node "$M2" >/dev/null
client shutdown --node "$M1" >/dev/null
client shutdown --node "$HEAD" >/dev/null
await "$WORK/m2.log" "shut down cleanly" "member 2 shutdown"
await "$WORK/m1b.log" "shut down cleanly" "member 1 shutdown"
await "$WORK/head.log" "shut down cleanly" "head shutdown"
wait

echo "chaos_smoke: PASS"
