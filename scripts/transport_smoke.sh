#!/usr/bin/env bash
# Transport smoke test: boot a 3-node loopback cluster with the real
# binaries (1 head + 2 members), drive put/get/query through both the
# head and a member (exercising request forwarding), check the monitor
# dump, and shut every node down cleanly via the protocol.
#
# Requires release binaries (cargo build --release). Run from the repo
# root: bash scripts/transport_smoke.sh
set -euo pipefail

BIN=${BIN:-target/release}
HEAD=127.0.0.1:7451
M1=127.0.0.1:7452
M2=127.0.0.1:7453
DIM=8
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() { echo "transport_smoke: FAIL: $1" >&2; exit 1; }

# Poll a log file for a marker line.
await() { # await <file> <pattern> <what>
  for _ in $(seq 1 100); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "--- $1 ---" >&2; cat "$1" >&2 || true
  fail "timed out waiting for $3"
}

# One JSON object per client call; every call must report ok:true.
# Callers capture with $(client ...) and grep the result — never pipe
# this function into `grep -q` (early-exit SIGPIPE + pipefail = flake).
client() { # client <args...>
  local out
  out=$("$BIN/hyperm-client" "$@")
  echo "$out"
  echo "$out" >&2
  case "$out" in *'"ok": true'*) ;; *) fail "client $* -> $out" ;; esac
}

echo "== booting head ($HEAD) and members ($M1, $M2)"
"$BIN/hyperm-node" head --listen "$HEAD" --peers 3 --items 20 --dim $DIM \
  --levels 3 >"$WORK/head.log" 2>&1 &
await "$WORK/head.log" "listening on" "head to bind"

"$BIN/hyperm-node" member --listen "$M1" --head "$HEAD" --id 1 --items 20 \
  --dim $DIM >"$WORK/m1.log" 2>&1 &
await "$WORK/m1.log" "joined as overlay peer" "member 1 to join"

"$BIN/hyperm-node" member --listen "$M2" --head "$HEAD" --id 2 --items 20 \
  --dim $DIM >"$WORK/m2.log" 2>&1 &
await "$WORK/m2.log" "joined as overlay peer" "member 2 to join"

ITEM="0.3,0.3,0.3,0.3,0.3,0.3,0.3,0.3"

echo "== put a fresh item on peer 0 (via the head)"
OUT=$(client put --node "$HEAD" --peer 0 --item "$ITEM" --republish)
case "$OUT" in *'"index": 20'*) ;; *) fail "expected the put item at index 20" ;; esac

echo "== query centred on the put item via the head: must retrieve it"
OUT=$(client query --node "$HEAD" --centre "$ITEM" --eps 0.05)
case "$OUT" in *'[0,20]'*) ;; *) fail "head query missed the put item (recall < 1)" ;; esac

echo "== same query forwarded through member 1: identical recall"
OUT=$(client query --node "$M1" --centre "$ITEM" --eps 0.05)
case "$OUT" in *'[0,20]'*) ;; *) fail "member-forwarded query missed the put item" ;; esac

echo "== monitor: head reports all 5 overlay members"
MON=$("$BIN/hyperm-monitor" --node "$HEAD")
echo "$MON" | grep -q '"role": "head"' || fail "monitor role: $MON"
echo "$MON" | grep -q '"members": 5' || fail "monitor members: $MON"

echo "== get: level-0 summary spheres (key in the level's subspace)"
L0DIM=$(echo "$MON" | grep -o '"dim": [0-9]*' | head -1 | grep -o '[0-9]*')
KEY=$(seq $L0DIM | sed 's/.*/0.5/' | paste -sd, -)
client get --node "$HEAD" --level 0 --key "$KEY" >/dev/null

echo "== clean protocol shutdown, members first"
client shutdown --node "$M2" >/dev/null
client shutdown --node "$M1" >/dev/null
client shutdown --node "$HEAD" >/dev/null
await "$WORK/m2.log" "shut down cleanly" "member 2 shutdown"
await "$WORK/m1.log" "shut down cleanly" "member 1 shutdown"
await "$WORK/head.log" "shut down cleanly" "head shutdown"
wait

echo "transport_smoke: PASS"
