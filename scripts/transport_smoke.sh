#!/usr/bin/env bash
# Transport smoke test: boot a 3-node loopback cluster with the real
# binaries (1 head + 2 members), drive put/get/query through both the
# head and a member (exercising request forwarding), check the monitor
# dump and the observability plane (per-node JSONL traces, window
# stats scrapes, `hyperm-monitor --watch` with SLO rules including an
# injected breach), and shut every node down cleanly via the protocol.
#
# Artifacts left in the working directory for CI upload:
#   SMOKE_window.json        head sliding-window snapshot
#   SMOKE_trace_head.jsonl   head telemetry stream (--trace)
#   SMOKE_trace_member.jsonl member 1 telemetry stream (--trace)
#
# Requires release binaries (cargo build --release). Run from the repo
# root: bash scripts/transport_smoke.sh
set -euo pipefail

BIN=${BIN:-target/release}
HEAD=127.0.0.1:7451
M1=127.0.0.1:7452
M2=127.0.0.1:7453
DIM=8
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() { echo "transport_smoke: FAIL: $1" >&2; exit 1; }

# Poll a log file for a marker line.
await() { # await <file> <pattern> <what>
  for _ in $(seq 1 100); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "--- $1 ---" >&2; cat "$1" >&2 || true
  fail "timed out waiting for $3"
}

# One JSON object per client call; every call must report ok:true.
# Callers capture with $(client ...) and grep the result — never pipe
# this function into `grep -q` (early-exit SIGPIPE + pipefail = flake).
client() { # client <args...>
  local out
  out=$("$BIN/hyperm-client" "$@")
  echo "$out"
  echo "$out" >&2
  case "$out" in *'"ok": true'*) ;; *) fail "client $* -> $out" ;; esac
}

echo "== booting head ($HEAD) and members ($M1, $M2)"
"$BIN/hyperm-node" head --listen "$HEAD" --peers 3 --items 20 --dim $DIM \
  --levels 3 --trace "$WORK/trace_head.jsonl" >"$WORK/head.log" 2>&1 &
await "$WORK/head.log" "listening on" "head to bind"

"$BIN/hyperm-node" member --listen "$M1" --head "$HEAD" --id 1 --items 20 \
  --dim $DIM --trace "$WORK/trace_member.jsonl" >"$WORK/m1.log" 2>&1 &
await "$WORK/m1.log" "joined as overlay peer" "member 1 to join"

"$BIN/hyperm-node" member --listen "$M2" --head "$HEAD" --id 2 --items 20 \
  --dim $DIM >"$WORK/m2.log" 2>&1 &
await "$WORK/m2.log" "joined as overlay peer" "member 2 to join"

ITEM="0.3,0.3,0.3,0.3,0.3,0.3,0.3,0.3"

echo "== put a fresh item on peer 0 (via the head)"
OUT=$(client put --node "$HEAD" --peer 0 --item "$ITEM" --republish)
case "$OUT" in *'"index": 20'*) ;; *) fail "expected the put item at index 20" ;; esac

echo "== query centred on the put item via the head: must retrieve it"
OUT=$(client query --node "$HEAD" --centre "$ITEM" --eps 0.05)
case "$OUT" in *'[0,20]'*) ;; *) fail "head query missed the put item (recall < 1)" ;; esac

echo "== same query forwarded through member 1: identical recall"
OUT=$(client query --node "$M1" --centre "$ITEM" --eps 0.05 --trace 3735928559)
case "$OUT" in *'[0,20]'*) ;; *) fail "member-forwarded query missed the put item" ;; esac

echo "== stats: head serves its sliding-window snapshot"
STATS=$("$BIN/hyperm-client" stats --node "$HEAD")
echo "$STATS" >&2
case "$STATS" in *'"ops"'*) ;; *) fail "stats snapshot missing ops: $STATS" ;; esac
case "$STATS" in *'"ops": 0'*) fail "head window saw no ops after queries" ;; *) ;; esac
echo "$STATS" > SMOKE_window.json

echo "== watch: 2 scrape rounds over all 3 nodes, SLO rules holding"
"$BIN/hyperm-monitor" --watch --nodes "$HEAD,$M1,$M2" --interval 100 --count 2 \
  --slo "failed_routes == 0, rejected == 0" >"$WORK/watch.log" \
  || { cat "$WORK/watch.log" >&2; fail "clean watch breached its SLO"; }
grep -q '"kind": "cluster"' "$WORK/watch.log" || fail "watch printed no cluster aggregate"
grep -q '"kind": "watch_done"' "$WORK/watch.log" || fail "watch printed no final report"

echo "== inject an SLO breach: a wrong-dimension query is rejected"
BAD=$("$BIN/hyperm-client" query --node "$HEAD" --centre "0.3,0.3" --eps 0.05)
echo "$BAD" >&2
case "$BAD" in *'"ok": false'*) ;; *) fail "wrong-dimension query was not rejected: $BAD" ;; esac

echo "== watch: the rejected op must now breach 'rejected == 0' (exit non-zero)"
if "$BIN/hyperm-monitor" --watch --nodes "$HEAD" --interval 100 --count 1 \
  --slo "rejected == 0" >"$WORK/breach.log"; then
  cat "$WORK/breach.log" >&2
  fail "watch did not exit non-zero on the injected SLO breach"
fi
grep -q '"ok": false' "$WORK/breach.log" || fail "breach watch printed no structured report"

echo "== monitor: head reports all 5 overlay members"
MON=$("$BIN/hyperm-monitor" --node "$HEAD")
echo "$MON" | grep -q '"role": "head"' || fail "monitor role: $MON"
echo "$MON" | grep -q '"members": 5' || fail "monitor members: $MON"

echo "== get: level-0 summary spheres (key in the level's subspace)"
L0DIM=$(echo "$MON" | grep -o '"dim": [0-9]*' | head -1 | grep -o '[0-9]*')
KEY=$(seq $L0DIM | sed 's/.*/0.5/' | paste -sd, -)
client get --node "$HEAD" --level 0 --key "$KEY" >/dev/null

echo "== clean protocol shutdown, members first"
client shutdown --node "$M2" >/dev/null
client shutdown --node "$M1" >/dev/null
client shutdown --node "$HEAD" >/dev/null
await "$WORK/m2.log" "shut down cleanly" "member 2 shutdown"
await "$WORK/m1.log" "shut down cleanly" "member 1 shutdown"
await "$WORK/head.log" "shut down cleanly" "head shutdown"
wait

echo "== trace artifacts: both node streams carry serve spans"
grep -q '"name": "serve"' "$WORK/trace_head.jsonl" || fail "head trace has no serve spans"
grep -q '"name": "serve"' "$WORK/trace_member.jsonl" || fail "member trace has no serve spans"
grep -q '"ctx_trace": 3735928559' "$WORK/trace_member.jsonl" \
  || fail "member trace missing the client's wire trace context"
cp "$WORK/trace_head.jsonl" SMOKE_trace_head.jsonl
cp "$WORK/trace_member.jsonl" SMOKE_trace_member.jsonl

echo "transport_smoke: PASS"
