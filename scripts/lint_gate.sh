#!/usr/bin/env bash
# Findings-baseline gate: re-run hyperm-lint in check mode against the
# committed LINT_report.json. Fails (exit 3) when any violation survives
# or when the suppression set (file, line, rule, reason) differs from
# the baseline in any direction — growing the suppression list without
# committing the matching report diff is exactly the silent-creep this
# gate exists to stop. Regenerate the baseline with:
#
#   cargo run -p hyperm-lint --release
#
# and commit the LINT_report.json diff alongside the suppression.
set -euo pipefail

BIN=${BIN:-target/release}
BASELINE=${1:-LINT_report.json}

if [ ! -f "$BASELINE" ]; then
  echo "lint_gate: baseline $BASELINE not found (run hyperm-lint once and commit it)" >&2
  exit 2
fi

if [ -x "$BIN/hyperm-lint" ]; then
  "$BIN/hyperm-lint" --check-baseline "$BASELINE"
else
  cargo run --release -q -p hyperm-lint -- --check-baseline "$BASELINE"
fi
