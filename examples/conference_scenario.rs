//! The paper's motivating scenario: a conference session.
//!
//! Fifty researchers sit in a room for ninety minutes. Each carries a
//! device with a few hundred photos (color histograms). They want to search
//! each other's collections *now* — publishing every photo into a DHT would
//! eat the whole session; Hyper-M publishes summaries instead.
//!
//! ```sh
//! cargo run --release --example conference_scenario
//! ```

use hyperm::baseline::{insert_all_items, PerItemCanConfig};
use hyperm::datagen::{distribute_by_clusters, generate_aloi_like, AloiConfig, DistributeConfig};
use hyperm::sim::{Underlay, UnderlayConfig};
use hyperm::{Dataset, EnergyModel, EvalHarness, HypermConfig, HypermNetwork, KnnOptions, OpStats};

fn main() {
    let attendees = 50usize;

    // --- Photo collections: object histograms over 64 hue bins. ---
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 60,
        views_per_class: 80,
        bins: 64,
        view_jitter: 0.15,
        seed: 1,
    });
    println!(
        "conference: {attendees} attendees, {} photos total",
        corpus.len()
    );
    let mut peers: Vec<Dataset> = distribute_by_clusters(
        &corpus.data,
        &DistributeConfig {
            peers: attendees,
            classes: 60,
            peers_per_class: (3, 6),
            minibatch: true,
            seed: 2,
        },
    );
    // Nobody shows up empty-handed.
    for p in peers.iter_mut() {
        if p.is_empty() {
            p.push_row(corpus.data.row(0));
        }
    }

    // --- The room: a 20×20 m hall, Bluetooth-class radios. ---
    let underlay = Underlay::random(UnderlayConfig {
        nodes: attendees,
        arena_side: 20.0,
        radio_range: 10.0,
        seed: 3,
    });
    let stretch = underlay.mean_path_hops();
    let energy = EnergyModel::bluetooth_class2();
    println!("room: mean radio path {stretch:.2} hops\n");

    // --- Option A: publish every photo (conventional CAN). ---
    let per_item = insert_all_items(&peers, &PerItemCanConfig::full_dim(attendees, 64, 4));
    // --- Option B: Hyper-M. ---
    let config = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(10)
        .with_seed(5);
    let (net, report) = HypermNetwork::build(peers, config).expect("build");

    let joules = |s: OpStats| {
        let phys = OpStats {
            hops: (s.hops as f64 * stretch) as u64,
            messages: (s.messages as f64 * stretch) as u64,
            bytes: (s.bytes as f64 * stretch) as u64,
            ..OpStats::zero()
        };
        energy.op_joules(phys)
    };
    println!("setup cost comparison:");
    println!(
        "  per-photo CAN : {:>8} msgs, {:>9.1} KiB, {:>7.2} J, makespan {:>6} hops",
        per_item.totals.messages,
        per_item.totals.bytes as f64 / 1024.0,
        joules(per_item.totals),
        per_item.totals.hops
    );
    println!(
        "  Hyper-M       : {:>8} msgs, {:>9.1} KiB, {:>7.2} J, makespan {:>6} hops",
        report.insertion.messages,
        report.insertion.bytes as f64 / 1024.0,
        joules(report.insertion),
        report.makespan_hops
    );
    println!(
        "  → {:.0}× fewer bytes on air, {:.0}× less energy, {:.0}× shorter makespan\n",
        per_item.totals.bytes as f64 / report.insertion.bytes.max(1) as f64,
        joules(per_item.totals) / joules(report.insertion).max(1e-9),
        per_item.totals.hops as f64 / report.makespan_hops.max(1) as f64
    );

    // --- "Anyone have photos like this one?" ---
    let harness = EvalHarness::new(&net);
    let queries = harness.sample_queries(&net, 10, 6);
    let mut found = 0usize;
    let mut recall_sum = 0.0;
    for q in &queries {
        let res = net.knn_query(0, q, 10, KnnOptions::default());
        found += res.topk.len();
        let truth = harness.knn_truth(q, 10);
        let got: Vec<_> = res.topk.iter().map(|&(id, _)| id).collect();
        recall_sum += hyperm::precision_recall(&got, &truth).recall;
    }
    println!(
        "similar-photo search: 10 queries × k=10 → {} results, mean recall {:.2}",
        found,
        recall_sum / queries.len() as f64
    );
}
