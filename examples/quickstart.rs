//! Quickstart: build a Hyper-M network and run all three query types.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyperm::{Dataset, EvalHarness, HypermConfig, HypermNetwork, KnnOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- 1. Some peers with local collections (8 peers × 50 items, 32-d). ---
    let mut rng = StdRng::seed_from_u64(7);
    let peers: Vec<Dataset> = (0..8)
        .map(|_| {
            // Each peer's items cluster around a couple of "interests".
            let interest: f64 = rng.gen::<f64>() * 0.6;
            let mut ds = Dataset::new(32);
            let mut row = [0.0f64; 32];
            for _ in 0..50 {
                for x in row.iter_mut() {
                    *x = (interest + rng.gen::<f64>() * 0.4).clamp(0.0, 1.0);
                }
                ds.push_row(&row);
            }
            ds
        })
        .collect();

    // --- 2. Build: DWT → per-level k-means → publish cluster spheres. ---
    let config = HypermConfig::new(32) // data dimensionality (power of two)
        .with_levels(4) // overlays for {A, D0, D1, D2}
        .with_clusters_per_peer(5)
        .with_seed(42);
    let (net, report) = HypermNetwork::build(peers, config).expect("build");
    println!("built Hyper-M network:");
    println!("  peers:              {}", net.len());
    println!("  overlays (levels):  {}", net.levels());
    println!("  items summarised:   {}", report.items_total);
    println!("  clusters published: {}", report.clusters_published);
    println!(
        "  insertion hops:     {} ({:.3} per item)",
        report.insertion.hops,
        report.avg_hops_per_item()
    );
    println!("  parallel makespan:  {} hops", report.makespan_hops);

    // --- 3. Range query: everything within ε of a known item. ---
    let q: Vec<f64> = net.peer(2).items.row(0).to_vec();
    let range = net.range_query(
        /*from_peer=*/ 0, &q, /*eps=*/ 0.3, /*peer_budget=*/ None,
    );
    println!(
        "\nrange query (ε = 0.3): {} items from {} peers, {} messages",
        range.items.len(),
        range.peers_contacted,
        range.stats.messages
    );

    // --- 4. k-nn query: the 5 most similar items. ---
    let knn = net.knn_query(0, &q, 5, KnnOptions::default());
    println!(
        "k-nn query (k = 5): contacted {} peers",
        knn.peers_contacted
    );
    for ((peer, idx), d) in &knn.topk {
        println!("  peer {peer} item {idx}: distance {d:.4}");
    }

    // --- 5. Point query: who has this exact item? ---
    let point = net.point_query(0, &q);
    println!("point query: exact copies at {:?}", point.matches);

    // --- 6. Verify against exact ground truth. ---
    let harness = EvalHarness::new(&net);
    let (pr, _) = harness.eval_range(&net, 0, &q, 0.3, None);
    println!(
        "\nrange query vs exact flat scan: precision {:.2}, recall {:.2}",
        pr.precision, pr.recall
    );
    assert_eq!(pr.recall, 1.0, "range queries have no false dismissals");
}
