//! Music sharing on a long-distance train (the paper's "public transport"
//! scenario): passengers share tone-profile features of their music
//! libraries, search for similar tracks, and new tracks keep arriving while
//! the network is live.
//!
//! Demonstrates the `C` precision/recall knob of the k-nn heuristic and the
//! post-creation insertion policies.
//!
//! ```sh
//! cargo run --release --example commuter_music
//! ```

use hyperm::datagen::{generate_markov, MarkovConfig};
use hyperm::{Dataset, EvalHarness, HypermConfig, HypermNetwork, InsertPolicy, KnnOptions};

fn main() {
    let passengers = 30usize;
    let tracks_per_passenger = 120usize;
    let dim = 128usize; // tone/chroma profile, power of two for the DWT

    // Tone profiles are smooth curves — the Markov generator is a good
    // stand-in for the spectral envelopes of [Tzanetakis & Cook 2002].
    let corpus = generate_markov(&MarkovConfig {
        count: passengers * tracks_per_passenger,
        dim,
        max_step_cap: 0.05,
        seed: 11,
    });
    let peers: Vec<Dataset> = (0..passengers)
        .map(|p| {
            let ids: Vec<usize> =
                (p * tracks_per_passenger..(p + 1) * tracks_per_passenger).collect();
            corpus.select(&ids)
        })
        .collect();

    let config = HypermConfig::new(dim)
        .with_levels(4)
        .with_clusters_per_peer(8)
        .with_seed(13);
    let (mut net, report) = HypermNetwork::build(peers, config).expect("build");
    println!(
        "train departs: {} passengers, {} tracks, network up after {} hops (makespan {})",
        passengers, report.items_total, report.insertion.hops, report.makespan_hops
    );

    // --- "Play me things like this" at three bandwidth settings. ---
    let harness = EvalHarness::new(&net);
    let q = harness.sample_queries(&net, 1, 17).remove(0);
    println!("\nk-nn (k = 15) under different C settings:");
    for c in [1.0, 1.5, 2.0] {
        let eval = harness.eval_knn(&net, 0, &q, 15, KnnOptions::default().with_c(c));
        println!(
            "  C = {c:<3}: fetched-set precision {:.2}, recall {:.2}  (messages {})",
            eval.retrieved.precision, eval.retrieved.recall, eval.stats.messages
        );
    }

    // --- Someone downloads new albums mid-journey. ---
    let new_tracks = generate_markov(&MarkovConfig {
        count: 40,
        dim,
        max_step_cap: 0.05,
        seed: 19,
    });
    for (i, row) in new_tracks.rows().enumerate() {
        let policy = if i % 2 == 0 {
            InsertPolicy::StaleSummaries
        } else {
            InsertPolicy::Republish
        };
        net.insert_item(i % passengers, row, policy);
    }
    println!("\n40 new tracks arrived mid-journey (half stale, half republished)");

    // Recheck effectiveness over the grown corpus.
    let harness = EvalHarness::new(&net);
    let queries = harness.sample_queries(&net, 10, 23);
    let mut recall = 0.0;
    for q in &queries {
        let eps = harness.kth_distance(q, 20);
        let (pr, _) = harness.eval_range(&net, 0, q, eps, None);
        recall += pr.recall;
    }
    println!(
        "range recall over the grown corpus: {:.2}",
        recall / queries.len() as f64
    );
}
