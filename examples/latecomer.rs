//! Latecomer join: a device arrives after the session started.
//!
//! The conference talk began ten minutes ago; someone slips into the room,
//! opens their phone and joins the sharing network. Their collection is
//! summarised, the CAN zones split to make room, and their cluster spheres
//! publish — after which everyone can search their data and they can search
//! everyone's.
//!
//! ```sh
//! cargo run --release --example latecomer
//! ```

use hyperm::datagen::{generate_aloi_like, AloiConfig};
use hyperm::{Dataset, HypermConfig, HypermNetwork, KnnOptions};

fn main() {
    // The initial room: 20 attendees with histogram collections.
    let corpus = generate_aloi_like(&AloiConfig {
        classes: 20,
        views_per_class: 40,
        bins: 64,
        view_jitter: 0.15,
        seed: 1,
    });
    let peers: Vec<Dataset> = (0..20)
        .map(|p| {
            corpus
                .data
                .select(&(p * 40..(p + 1) * 40).collect::<Vec<_>>())
        })
        .collect();
    let cfg = HypermConfig::new(64)
        .with_levels(4)
        .with_clusters_per_peer(8)
        .with_seed(2);
    let (mut net, report) = HypermNetwork::build(peers, cfg).expect("build");
    println!(
        "session start: {} peers, network up after {} hops (makespan {} rounds)",
        net.len(),
        report.insertion.hops,
        report.makespan_rounds
    );

    // Ten minutes later, three more devices walk in with fresh collections.
    let late = generate_aloi_like(&AloiConfig {
        classes: 3,
        views_per_class: 50,
        bins: 64,
        view_jitter: 0.15,
        seed: 99,
    });
    for c in 0..3 {
        let collection = late
            .data
            .select(&(c * 50..(c + 1) * 50).collect::<Vec<_>>());
        let probe = collection.row(0).to_vec();
        let join = net.join_peer(collection).expect("join");
        println!(
            "\npeer {} joined: {} zone-split hops + {} publication hops ({} clusters)",
            join.peer, join.join.hops, join.insertion.hops, join.clusters_published
        );
        // Everyone can now find the newcomer's photos…
        let res = net.range_query(0, &probe, 1e-9, None);
        assert!(res.items.contains(&(join.peer, 0)));
        println!("  their first photo is already searchable by peer 0");
        // …and the newcomer can search the room.
        let knn = net.knn_query(join.peer, &probe, 5, KnnOptions::default());
        println!(
            "  and they can run k-nn themselves: {} results from {} peers",
            knn.topk.len(),
            knn.peers_contacted
        );
    }
    println!(
        "\nfinal network size: {} peers — no rebuild, no downtime",
        net.len()
    );
}
