//! The load-balancing side-effect (paper Section 5.3): skewed data that
//! would crush a handful of CAN nodes in the original space gets spread
//! across the network by the orthogonal wavelet subspaces — with no
//! explicit rebalancing mechanism.
//!
//! ```sh
//! cargo run --release --example skewed_load_balance
//! ```

use hyperm::baseline::{insert_all_items, PerItemCanConfig};
use hyperm::datagen::{generate_skewed, SkewedConfig};
use hyperm::{Dataset, HypermConfig, HypermNetwork};

fn spark(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                ' '
            } else {
                BARS[((v * 7) as f64 / max as f64).round() as usize]
            }
        })
        .collect()
}

fn main() {
    let nodes = 64usize;
    let dim = 256usize;
    let corpus = generate_skewed(&SkewedConfig {
        blobs: 3,
        count: 4_000,
        dim,
        spread: 0.02,
        seed: 3,
    });
    println!(
        "skewed corpus: {} items in 3 dense blobs, {dim}-d\n",
        corpus.len()
    );

    // Deal round-robin onto devices.
    let mut peers: Vec<Dataset> = (0..nodes).map(|_| Dataset::new(dim)).collect();
    for (i, row) in corpus.data.rows().enumerate() {
        peers[i % nodes].push_row(row);
    }

    // Conventional per-item CAN in the original space.
    let report = insert_all_items(&peers, &PerItemCanConfig::full_dim(nodes, dim, 7));
    let original = report.overlay.stored_items_per_node();
    println!("original-space CAN, items per node:");
    println!(
        "  [{}]  ({} of {} nodes used)",
        spark(&original),
        original.iter().filter(|&&x| x > 0).count(),
        nodes
    );

    // Hyper-M with four levels.
    let cfg = HypermConfig::new(dim)
        .with_levels(4)
        .with_clusters_per_peer(8)
        .with_seed(9);
    let (net, _) = HypermNetwork::build(peers, cfg).expect("build");
    let mut combined = vec![0u64; nodes];
    println!("\nHyper-M, summarised item mass per node and overlay:");
    for l in 0..net.levels() {
        let occ = net.overlay(l).stored_items_per_node();
        for (c, o) in combined.iter_mut().zip(&occ) {
            *c += o;
        }
        println!("  level {l}: [{}]", spark(&occ));
    }
    println!(
        "  combined: [{}]  ({} of {} devices loaded)",
        spark(&combined),
        combined.iter().filter(|&&x| x > 0).count(),
        nodes
    );
    println!(
        "\nThe per-level stripes light up *different* devices — the orthogonality\n\
         of the wavelet subspaces places the same data independently per level,\n\
         so the combined load is flatter than the original space's, for free."
    );
}
