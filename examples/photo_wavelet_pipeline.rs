//! Full photo-sharing pipeline: raster images → 2-D wavelet features →
//! Hyper-M → "find shots like this one".
//!
//! The paper notes that image codecs (JPEG2000) already wavelet-transform
//! photos on-device; this example takes synthetic photos, derives Hyper-M
//! feature vectors from the 2-D Haar pyramid's coarse LL band, and measures
//! how often a similarity query returns shots of the same subject.
//!
//! ```sh
//! cargo run --release --example photo_wavelet_pipeline
//! ```

use hyperm::datagen::{generate_image_features, ImageConfig};
use hyperm::{Dataset, HypermConfig, HypermNetwork, KnnOptions};

fn main() {
    // 16 subjects × 25 photos, 32×32 px; 2 pyramid levels → 64-d features.
    let photos = generate_image_features(
        &ImageConfig {
            classes: 16,
            images_per_class: 25,
            size: 32,
            jitter: 0.2,
            seed: 42,
        },
        2,
    );
    println!(
        "photo corpus: {} shots of {} subjects → {}-d wavelet features",
        photos.len(),
        16,
        photos.data.dim()
    );

    // Deal photos onto 20 phones: each phone mostly photographs 2 subjects.
    let phones = 16usize; // one per subject, plus cross-postings
    let mut peers: Vec<Dataset> = (0..phones)
        .map(|_| Dataset::new(photos.data.dim()))
        .collect();
    let mut owner_of = Vec::with_capacity(photos.len());
    for (i, row) in photos.data.rows().enumerate() {
        let class = photos.labels[i] as usize;
        // Photos of subject c mostly live on phones c and (7c+3) mod 16.
        let phone = if i % 3 == 0 {
            (class * 7 + 3) % phones
        } else {
            class % phones
        };
        owner_of.push((phone, peers[phone].len()));
        peers[phone].push_row(row);
    }

    let config = HypermConfig::new(photos.data.dim())
        .with_levels(4)
        .with_clusters_per_peer(6)
        .with_seed(7);
    let (net, report) = HypermNetwork::build(peers, config).expect("build");
    println!(
        "network up: {} cluster summaries published in {} hops (makespan {} rounds)\n",
        report.clusters_published, report.insertion.hops, report.makespan_rounds
    );

    // Query with held-in shots: how many of the 10 nearest retrieved shots
    // show the same subject?
    let k = 10;
    let mut same_subject = 0usize;
    let mut total = 0usize;
    for probe in (0..photos.len()).step_by(37) {
        let q = photos.data.row(probe).to_vec();
        let res = net.knn_query(0, &q, k, KnnOptions::default());
        for &((phone, idx), _) in &res.topk {
            // Recover the photo's class via the ownership map.
            let original = owner_of
                .iter()
                .position(|&(p, i)| p == phone && i == idx)
                .expect("retrieved photo exists");
            if photos.labels[original] == photos.labels[probe] {
                same_subject += 1;
            }
            total += 1;
        }
    }
    let ratio = same_subject as f64 / total as f64;
    println!(
        "subject purity of k-nn answers: {:.1}% ({} of {} retrieved shots show the\nsame subject as the query)",
        ratio * 100.0,
        same_subject,
        total
    );
    assert!(ratio > 0.5, "wavelet features should separate subjects");
}
